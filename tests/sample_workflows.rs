//! Every sample `.wrm` file in `workflows/` compiles, simulates, and
//! models cleanly — the repository's own dogfood.

use workflow_roofline::prelude::*;

fn run_sample(name: &str) -> (wrm_lang::Compiled, f64) {
    let path = format!("{}/workflows/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).expect("sample exists");
    let compiled = compile_source(&source).expect("sample compiles");
    let machine = compiled.machine.clone().expect("samples name machines");
    let run =
        simulate(&Scenario::new(machine.clone(), compiled.spec.clone())).expect("sample simulates");
    let mut wf = compiled.characterization().expect("characterizes");
    wf.makespan = Some(Seconds(run.makespan));
    RooflineModel::build_lenient(&machine, &wf).expect("models");
    (compiled, run.makespan)
}

#[test]
fn lcls_cori_sample() {
    let (compiled, makespan) = run_sample("lcls_cori.wrm");
    assert_eq!(compiled.total_tasks, 6.0);
    assert!((makespan - 1000.0).abs() < 25.0, "makespan {makespan}");
}

#[test]
fn bgw_sample_matches_measured_total() {
    let (_, makespan) = run_sample("bgw_si998.wrm");
    // Paper total 4184.86 s; the .wrm efficiencies are calibrated to it.
    assert!(
        (makespan - 4184.86).abs() / 4184.86 < 0.03,
        "makespan {makespan}"
    );
}

#[test]
fn gptune_sample_serializes_to_553s() {
    let (compiled, makespan) = run_sample("gptune_rci.wrm");
    assert_eq!(compiled.parallel_tasks, 1.0, "chain must serialize");
    assert!((makespan - 553.0).abs() < 5.0, "makespan {makespan}");
}

#[test]
fn custom_machine_sample() {
    let (compiled, makespan) = run_sample("custom_machine.wrm");
    assert_eq!(compiled.machine.as_ref().unwrap().name, "dept-cluster");
    // fetch alone: 4 TB over 2 GB/s = 2000 s; the rest adds compute and
    // FS stages. Meets the 8 h target comfortably.
    assert!(
        makespan > 2000.0 && makespan < 8.0 * 3600.0,
        "makespan {makespan}"
    );
}
