//! End-to-end integration tests spanning every crate: language ->
//! simulator -> trace -> characterization -> roofline -> analysis ->
//! rendering.

use workflow_roofline::core::analysis::{classify_bound, classify_zone, BoundKind, Zone};
use workflow_roofline::prelude::*;
use workflow_roofline::workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

/// The full pipeline, starting from source text.
#[test]
fn language_to_figure_pipeline() {
    let source = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
    system_bytes bb 1GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;
    // Compile.
    let compiled = compile_source(source).expect("compiles");
    let machine = compiled.machine.clone().expect("names cori");

    // Simulate.
    let run = simulate(&Scenario::new(machine.clone(), compiled.spec.clone())).expect("simulates");
    assert!(
        (run.makespan - 1000.0).abs() < 25.0,
        "makespan {}",
        run.makespan
    );

    // Characterize from the *trace* (measurement path).
    let structure = Structure::new(
        compiled.total_tasks,
        compiled.parallel_tasks,
        compiled.nodes_per_task,
    )
    .with_targets(compiled.targets);
    let measured = characterize(&run.trace, &structure).expect("characterizes");
    assert!((measured.system_volumes[ids::EXTERNAL].get() - 5e12).abs() < 1.0);

    // Model + classification.
    let model = RooflineModel::build(&machine, &measured).expect("builds");
    assert_eq!(model.parallelism_wall, 74);
    let bound = classify_bound(&model);
    assert_eq!(
        bound.bound,
        BoundKind::System {
            resource: ids::EXTERNAL.to_owned()
        }
    );
    let zone = classify_zone(&measured).expect("measured");
    assert_eq!(zone.zone, Zone::PoorMakespanPoorThroughput);

    // Advice names the system architect.
    let advice = advise(&model);
    assert!(advice.headline.contains("system-bound"));

    // Rendering works end to end.
    let svg = RooflinePlot::new("integration")
        .model(&model)
        .render_svg()
        .expect("renders");
    assert!(svg.contains("System parallelism @ 74 tasks"));
    let ascii = workflow_roofline::plot::ascii::roofline(&model, 72, 20);
    assert!(ascii.contains('O'));
}

/// Plan-time characterization (from the language) and measured
/// characterization (from the trace) agree on volumes.
#[test]
fn plan_and_trace_characterizations_agree() {
    let source = r#"
workflow pipeline on pm-gpu {
  task stage_a[4] { nodes 64 compute 10PFLOPS eff 0.5 system_bytes fs 1TB }
  task stage_b { nodes 16 node_bytes hbm 8TB after stage_a }
}
"#;
    let compiled = compile_source(source).expect("compiles");
    let machine = compiled.machine.clone().expect("names pm-gpu");
    let plan = compiled.characterization().expect("plan charz");

    let run = simulate(&Scenario::new(machine, compiled.spec.clone())).expect("simulates");
    let measured = characterize(
        &run.trace,
        &Structure::new(
            compiled.total_tasks,
            compiled.parallel_tasks,
            compiled.nodes_per_task,
        ),
    )
    .expect("trace charz");

    let a = plan.system_volumes[ids::FILE_SYSTEM].get();
    let b = measured.system_volumes[ids::FILE_SYSTEM].get();
    assert!((a - b).abs() < 1.0, "fs: plan {a} vs measured {b}");
    let a = plan.node_volumes[ids::COMPUTE].magnitude();
    let b = measured.node_volumes[ids::COMPUTE].magnitude();
    assert!(
        (a - b).abs() / a < 1e-9,
        "compute: plan {a} vs measured {b}"
    );
    let a = plan.node_volumes[ids::HBM].magnitude();
    let b = measured.node_volumes[ids::HBM].magnitude();
    assert!((a - b).abs() / a < 1e-9, "hbm: plan {a} vs measured {b}");
}

/// The four case studies reproduce the paper's headline numbers
/// (the golden acceptance test of this reproduction).
#[test]
fn paper_headline_numbers() {
    // LCLS: good/bad day 17/85 min, external-bound, 5x contention.
    let lcls = Lcls::year_2020_on_cori();
    let cori = machines::cori_haswell();
    let good = simulate(&lcls.scenario(cori.clone(), Day::Good)).expect("simulates");
    let bad = simulate(&lcls.scenario(cori.clone(), Day::Bad)).expect("simulates");
    assert!((good.makespan - 1020.0).abs() < 25.0);
    assert!((bad.makespan / good.makespan - 5.0).abs() < 0.1);

    // BGW: 4184.86 s at 64 nodes (42% of peak), 404.74 s at 1024 (27-30%).
    for (bgw, eff_expect) in [(Bgw::si998_64(), 0.42), (Bgw::si998_1024(), 0.273)] {
        let run = simulate(&bgw.scenario()).expect("simulates");
        assert!((run.makespan - bgw.makespan().get()).abs() / run.makespan < 0.02);
        let model = RooflineModel::build(&machines::perlmutter_gpu(), &bgw.characterization(true))
            .expect("builds");
        assert!((model.efficiency().expect("dot") - eff_expect).abs() < 0.02);
    }

    // CosmoFlow: HBM ceiling 4.2 s, PCIe 0.8 s, linear to 12 instances.
    let cf = CosmoFlow::default();
    assert!((cf.hbm_time().get() - 4.2).abs() < 0.1);
    assert!((cf.pcie_time().get() - 0.8).abs() < 0.05);

    // GPTune: 553 vs 228 s, 2.4x; projection 12x.
    let g = GpTune::default();
    let rci = simulate(&g.scenario(Mode::Rci))
        .expect("simulates")
        .makespan;
    let spawn = simulate(&g.scenario(Mode::Spawn))
        .expect("simulates")
        .makespan;
    let proj = simulate(&g.scenario(Mode::Projected))
        .expect("simulates")
        .makespan;
    assert!((rci - 553.0).abs() < 5.0);
    assert!((spawn - 228.0).abs() < 5.0);
    assert!((rci / spawn - 2.4).abs() < 0.1);
    assert!((spawn / proj - 12.0).abs() < 0.5);
}

/// What-if transforms predict what the simulator then confirms:
/// doubling intra-task parallelism with perfect scaling keeps the
/// ensemble makespan while halving the wall.
#[test]
fn whatif_prediction_matches_simulation() {
    use workflow_roofline::core::analysis::scale_intra_task_parallelism;

    let build_spec = |nodes: u64, parallel: usize, flops: f64| {
        let mut wf = WorkflowSpec::new("ensemble");
        for i in 0..parallel {
            wf = wf.task(
                TaskSpec::new(format!("member{i}"), nodes).phase(Phase::Compute {
                    flops,
                    efficiency: 0.5,
                }),
            );
        }
        wf
    };
    let machine = machines::perlmutter_gpu();
    let base_run =
        simulate(&Scenario::new(machine.clone(), build_spec(64, 8, 1e18))).expect("simulates");
    // Double intra-task parallelism, halve the member count per wave:
    // simulate 4 members at 128 nodes each (same total work per slot x2
    // members -> one wave of 4, each member 2x faster, 2x fewer slots
    // but each slot now runs 2 members... the ensemble of 8 on 4 slots).
    let rebalanced_run = simulate(
        &Scenario::new(machine.clone(), {
            // 8 members at 128 nodes, but only 512 usable nodes -> 4 at a
            // time, two waves: same makespan as 8 parallel at 64 nodes
            // under perfect scaling.
            build_spec(128, 8, 1e18)
        })
        .with_options(SimOptions {
            node_limit: Some(512),
            ..SimOptions::default()
        }),
    )
    .expect("simulates");
    assert!(
        (rebalanced_run.makespan - base_run.makespan).abs() / base_run.makespan < 1e-6,
        "base {} vs rebalanced {}",
        base_run.makespan,
        rebalanced_run.makespan
    );

    // And the model-side transform predicts exactly that invariance.
    let wf = WorkflowCharacterization::builder("ensemble")
        .total_tasks(8.0)
        .parallel_tasks(8.0)
        .nodes_per_task(64)
        .makespan(Seconds(base_run.makespan))
        .node_volume(ids::COMPUTE, Work::Flops(Flops(1e18 / 64.0)))
        .build()
        .expect("valid");
    let shifted = scale_intra_task_parallelism(&wf, 2.0, 1.0).expect("valid");
    assert_eq!(shifted.makespan, wf.makespan);
    let m0 = RooflineModel::build(&machine, &wf).expect("builds");
    let m1 = RooflineModel::build(&machine, &shifted).expect("builds");
    assert_eq!(m0.parallelism_wall, 28);
    assert_eq!(m1.parallelism_wall, 14);
}

/// Traces survive the JSONL round trip through a file and still produce
/// the same characterization.
#[test]
fn trace_jsonl_file_round_trip() {
    let g = GpTune::default();
    let run = simulate(&g.scenario(Mode::Rci)).expect("simulates");
    let dir = std::env::temp_dir().join("wrm_it_trace");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("rci.jsonl");
    std::fs::write(&path, run.trace.to_jsonl()).expect("write");
    let text = std::fs::read_to_string(&path).expect("read");
    let back = Trace::from_jsonl(&text).expect("parse");
    assert_eq!(back, run.trace);
    let a = characterize(&back, &Structure::serial(1)).expect("charz");
    let b = characterize(&run.trace, &Structure::serial(1)).expect("charz");
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

/// Gantt charts built from simulated task times match the simulation's
/// makespan.
#[test]
fn gantt_from_simulation() {
    let bgw = Bgw::si998_64();
    let run = simulate(&bgw.scenario()).expect("simulates");
    let mut dag = bgw.dag();
    for id in dag.task_ids().collect::<Vec<_>>() {
        let name = dag.task(id).name.clone();
        dag.task_mut(id).duration = run.trace.task_time(&name).expect("task ran");
    }
    let sched = list_schedule(&dag, 1792, Policy::Fifo).expect("schedules");
    let chart = GanttChart::build(&dag, &sched).expect("builds");
    assert!((chart.makespan - run.makespan).abs() / run.makespan < 1e-9);
    assert!((chart.critical_path_coverage() - 1.0).abs() < 1e-9);
    let svg = workflow_roofline::plot::gantt_plot::render_svg(&[&chart], 800.0);
    assert!(svg.contains("Sigma"));
}

/// The facade's prelude exposes a coherent API surface.
#[test]
fn prelude_compiles_a_full_session() {
    let wf = WorkflowCharacterization::builder("smoke")
        .total_tasks(4.0)
        .parallel_tasks(4.0)
        .nodes_per_task(8)
        .makespan(Seconds::minutes(1.0))
        .system_volume(ids::FILE_SYSTEM, Bytes::tb(1.0))
        .build()
        .expect("valid");
    let model = RooflineModel::build(&machines::perlmutter_gpu(), &wf).expect("builds");
    let advice = advise(&model);
    assert!(!advice.recommendations.is_empty());
}
