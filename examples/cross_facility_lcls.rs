//! Cross-facility, time-sensitive analysis: the LCLS XFEL pipeline
//! (paper §IV-C1) on two machines under varying WAN contention.
//!
//! ```text
//! cargo run --example cross_facility_lcls
//! ```
//!
//! Demonstrates the paper's headline system-architecture insight: when a
//! workflow is bound by the system-external bandwidth, faster compute
//! changes nothing — only network/storage QOS moves the ceiling.

use workflow_roofline::core::analysis::{classify_zone, Zone};
use workflow_roofline::prelude::*;
use workflow_roofline::workflows::{Day, Lcls};

fn main() {
    let cori = machines::cori_haswell();

    println!("== LCLS on Cori Haswell: contention sweep ==");
    println!(
        "{:<12} {:>12} {:>14} {:>8}",
        "ext factor", "makespan (s)", "tasks/s", "zone"
    );
    let lcls = Lcls::year_2020_on_cori();
    for factor in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let mut scenario = lcls.scenario(cori.clone(), Day::Good);
        scenario.options = SimOptions::default().with_contention(ids::EXTERNAL, factor);
        let run = simulate(&scenario).expect("simulates");
        let wf = lcls.characterization(ids::BURST_BUFFER, Some(Seconds(run.makespan)));
        let zone = classify_zone(&wf).expect("measured");
        println!(
            "{factor:<12} {:>12.0} {:>14.5} {:>8}",
            run.makespan,
            wf.throughput().expect("measured").get(),
            zone.zone.color()
        );
    }

    // The paper's two observed operating points.
    let good = simulate(&lcls.scenario(cori.clone(), Day::Good)).expect("simulates");
    let bad = simulate(&lcls.scenario(cori.clone(), Day::Bad)).expect("simulates");
    println!(
        "\ngood day {:.0} s vs bad day {:.0} s: {:.1}x degradation from WAN contention",
        good.makespan,
        bad.makespan,
        bad.makespan / good.makespan
    );

    // Even the good day misses the 2020 target: show it on the model.
    let wf = lcls.characterization(ids::BURST_BUFFER, Some(Seconds(good.makespan)));
    let model = RooflineModel::build(&cori, &wf).expect("valid");
    let target = wf.targets.throughput.expect("target").get();
    let ceiling = model
        .envelope_at(wf.parallel_tasks)
        .expect("inside wall")
        .get();
    println!(
        "external ceiling {ceiling:.4} tasks/s < target {target:.4} tasks/s: \
         the 10-minute goal is unreachable on Cori regardless of compute speed"
    );

    // What would 10x faster nodes buy? Nothing: the binding ceiling is
    // the external link.
    let fast = cori
        .with_scaled_resource(ids::COMPUTE, 10.0)
        .expect("resource exists")
        .with_scaled_resource(ids::DRAM, 10.0)
        .expect("resource exists");
    let fast_model = RooflineModel::build(&fast, &wf).expect("valid");
    println!(
        "10x faster nodes: envelope {:.4} -> {:.4} tasks/s (unchanged; paper's conclusion #1)",
        ceiling,
        fast_model
            .envelope_at(wf.parallel_tasks)
            .expect("inside wall")
            .get()
    );

    // Port to Perlmutter with DTN-attached external storage.
    println!("\n== LCLS on Perlmutter CPU (2024 targets) ==");
    let pm = machines::perlmutter_cpu();
    let lcls24 = Lcls::year_2024_on_pm();
    let run = simulate(&lcls24.scenario(pm.clone(), Day::Good)).expect("simulates");
    let wf = lcls24.characterization(ids::FILE_SYSTEM, Some(Seconds(run.makespan)));
    let zone = classify_zone(&wf).expect("measured");
    println!(
        "makespan {:.0} s against the 300 s target: zone {:?}",
        run.makespan, zone.zone
    );
    if zone.zone == Zone::GoodMakespanGoodThroughput {
        println!("the DTN's 25 GB/s makes the 2024 target feasible -- with QOS guarantees");
    }
    let contended = RooflineModel::build(
        &pm.with_scaled_resource(ids::EXTERNAL, 0.2)
            .expect("resource exists"),
        &wf,
    )
    .expect("valid");
    println!(
        "under 5x contention the ceiling falls to {:.4} tasks/s (target {:.4}): missed again",
        contended
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::EXTERNAL)
            .expect("external ceiling")
            .tps_at_one
            .get(),
        wf.targets.throughput.expect("target").get()
    );

    // Write the Fig. 5a-style SVG next to the binary run.
    let svg = RooflinePlot::new("LCLS on Cori Haswell (good vs bad days)")
        .model(
            &RooflineModel::build(
                &cori,
                &lcls
                    .characterization(ids::BURST_BUFFER, Some(Seconds(good.makespan)))
                    .with_name("Good days"),
            )
            .expect("valid"),
        )
        .model(
            &RooflineModel::build(
                &cori
                    .with_scaled_resource(ids::EXTERNAL, 0.2)
                    .expect("resource exists"),
                &lcls
                    .characterization(ids::BURST_BUFFER, Some(Seconds(bad.makespan)))
                    .with_name("Bad days"),
            )
            .expect("valid"),
        )
        .render_svg()
        .expect("has models");
    std::fs::write("lcls_roofline.svg", svg).expect("writable cwd");
    println!("\nwrote lcls_roofline.svg");
}
