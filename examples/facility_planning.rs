//! Facility planning with the model: project one workflow across
//! machines, ask what bandwidth upgrades its targets require, and sweep
//! the intra-task-parallelism trade-off analytically.
//!
//! ```text
//! cargo run --example facility_planning
//! ```
//!
//! This is the system-architect view the paper's conclusion addresses:
//! for an external-bandwidth-bound workflow, the answer to "would a 10x
//! faster machine help?" is a provable *no* — the required compute peak
//! is infinite, while a modest WAN upgrade is finite and cheap.

use workflow_roofline::core::projection::render_table;
use workflow_roofline::core::scaling::{smallest_k_meeting_deadline, strong_scaling_trajectory};
use workflow_roofline::prelude::*;
use workflow_roofline::workflows::Lcls;

fn main() {
    // The 2020 LCLS characterization with its 10-minute target.
    let lcls = Lcls::year_2020_on_cori();
    let wf = lcls.characterization(ids::BURST_BUFFER, Some(Seconds::minutes(17.0)));

    println!("== Projection across facilities ==\n");
    let machines_all = machines::all();
    let projections = across_machines(&wf, &machines_all).expect("projects");
    print!("{}", render_table(&projections));

    println!("\n== What would each upgrade cost? ==\n");
    for machine in &machines_all {
        for resource in [ids::EXTERNAL, ids::COMPUTE] {
            match required_peak(machine, &wf, resource) {
                Ok(None) => println!("{:<18} {resource:<8} already sufficient", machine.name),
                Ok(Some(peak)) if peak.is_finite() => {
                    let current = machine
                        .system_resource(resource)
                        .map(|r| r.peak.get())
                        .or_else(|| {
                            machine
                                .node_resource(resource)
                                .map(|r| r.peak_per_node.magnitude())
                        })
                        .expect("resource exists");
                    println!(
                        "{:<18} {resource:<8} needs {:.2e} ({}x today's {:.2e})",
                        machine.name,
                        peak,
                        (peak / current).ceil(),
                        current
                    );
                }
                Ok(Some(_)) => println!(
                    "{:<18} {resource:<8} NO finite peak suffices (not the binding path)",
                    machine.name
                ),
                Err(_) => println!("{:<18} {resource:<8} not on this machine", machine.name),
            }
        }
    }

    // The paper's conclusion #1, verified: compute upgrades are useless
    // for LCLS, external bandwidth is the whole story.
    let cori = machines::cori_haswell();
    let mut with_compute = wf.clone();
    with_compute
        .node_volumes
        .insert(ids::COMPUTE.into(), Work::Flops(Flops::pflops(1.0)));
    let compute_peak = required_peak(&cori, &with_compute, ids::COMPUTE)
        .expect("resource exists")
        .expect("target declared");
    assert!(compute_peak.is_infinite());
    println!(
        "\nverified: no finite compute peak meets the LCLS target on Cori -- \
         invest in the network, not the nodes"
    );

    // Intra-task-parallelism sweep for a compute-heavy ensemble (the
    // workflow-user view): where does the deadline become reachable,
    // and what does it cost in throughput headroom?
    println!("\n== Intra-task parallelism sweep (compute-heavy ensemble) ==\n");
    let ensemble = WorkflowCharacterization::builder("ensemble")
        .total_tasks(24.0)
        .parallel_tasks(24.0)
        .nodes_per_task(16)
        .makespan(Seconds::secs(3000.0))
        .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(40.0)))
        .target_makespan(Seconds::secs(3600.0))
        .target_throughput(TasksPerSec(0.01))
        .build()
        .expect("valid");
    let ks = [1.0, 2.0, 4.0, 8.0];
    let trajectory = strong_scaling_trajectory(
        &machines::perlmutter_gpu(),
        &ensemble,
        &ks,
        0.08, // 8% serial fraction
    )
    .expect("sweeps");
    println!(
        "{:>4} {:>8} {:>10} {:>8} {:>16} {:>14}",
        "k", "nodes", "parallel", "wall", "pred. makespan", "envelope"
    );
    for p in &trajectory {
        println!(
            "{:>4} {:>8} {:>10} {:>8} {:>14.0} s {:>14.4e}",
            p.k,
            p.nodes_per_task,
            p.parallel_tasks,
            p.parallelism_wall,
            p.predicted_makespan.expect("base had makespan").get(),
            p.envelope.get(),
        );
    }
    match smallest_k_meeting_deadline(&trajectory) {
        Some(k) => println!("\nsmallest k meeting the deadline: {k}"),
        None => println!("\nno k in the sweep meets the deadline"),
    }
    println!(
        "(the wall shrinks {}x across the sweep: makespan targets get easier, \
         throughput targets harder -- Fig. 2c)",
        trajectory.first().expect("non-empty").parallelism_wall
            / trajectory
                .last()
                .expect("non-empty")
                .parallelism_wall
                .max(1)
    );
}
