//! Quickstart: put one workflow on its roofline in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's BerkeleyGW case study (64 nodes/task), simulates
//! it on the built-in Perlmutter GPU model, constructs the Workflow
//! Roofline, and prints the classification, the advice, and an ASCII
//! rendering of the figure.

use workflow_roofline::prelude::*;
use workflow_roofline::workflows::Bgw;

fn main() {
    // The paper's Si998 problem: Epsilon (1164 PFLOPs) then Sigma
    // (3226 PFLOPs) on the same 64-node allocation.
    let bgw = Bgw::si998_64();
    let machine = machines::perlmutter_gpu();

    // Execute on the simulator (the substitute for a real Perlmutter).
    let run = simulate(&bgw.scenario()).expect("simulation succeeds");
    println!(
        "simulated makespan: {:.1} s (paper measured 4184.86 s)",
        run.makespan
    );
    for (task, time) in &run.task_times {
        println!("  {task:<8} {time:>8.1} s");
    }

    // Build the Workflow Roofline from the analytical characterization.
    let model = RooflineModel::build(&machine, &bgw.characterization(true))
        .expect("characterization matches the machine");
    println!(
        "\nparallelism wall: {} tasks; binding ceiling: {}",
        model.parallelism_wall,
        model.binding_ceiling().expect("has ceilings").label
    );
    println!(
        "achieved {:.0}% of the attainable envelope (paper: 42% of node peak)",
        model.efficiency().expect("has dot") * 100.0
    );

    // Ask the advisor what to do about it.
    let advice = advise(&model);
    println!("\n{}", advice.headline);
    for rec in &advice.recommendations {
        println!("  - [{:?}] {}", rec.audience, rec.rationale);
    }

    // Draw the roofline in the terminal.
    println!(
        "\n{}",
        workflow_roofline::plot::ascii::roofline(&model, 84, 22)
    );
}
