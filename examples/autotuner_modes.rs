//! Control-flow-bound analysis: GPTune's RCI vs Spawn modes (paper
//! §IV-C4, Figs. 9–10).
//!
//! ```text
//! cargo run --example autotuner_modes
//! ```
//!
//! The same 40 tuning iterations, three control flows: per-iteration
//! bash+srun+metadata-I/O (RCI), in-memory metadata via MPI_Comm_spawn
//! (Spawn), and the projected Python-free upper bound. The roofline
//! shows the dots far below every ceiling — the signature of a workflow
//! whose bottleneck is control flow, not hardware.

use workflow_roofline::core::analysis::{advise, remove_overhead, Direction};
use workflow_roofline::prelude::*;
use workflow_roofline::workflows::{GpTune, Mode};

fn main() {
    let g = GpTune::default();
    let machine = machines::perlmutter_cpu();

    println!("== GPTune: 40 SuperLU_DIST tuning iterations on one PM-CPU node ==\n");
    let mut breakdowns = Vec::new();
    let mut makespans = Vec::new();
    for mode in [Mode::Rci, Mode::Spawn, Mode::Projected] {
        let run = simulate(&g.scenario(mode)).expect("simulates");
        println!("{:<10} {:>8.1} s end-to-end", mode.name(), run.makespan);
        makespans.push(run.makespan);
        breakdowns.push(g.breakdown(mode));
    }
    println!(
        "\nRCI -> Spawn: {:.1}x (paper 2.4x); Spawn -> projected: {:.1}x (paper ~12x)",
        makespans[0] / makespans[1],
        makespans[1] / makespans[2]
    );

    println!(
        "\n{}",
        workflow_roofline::plot::ascii::breakdown(&breakdowns, 64)
    );

    // The roofline tells the same story from volumes alone: the two FS
    // ceilings almost coincide (45 vs 40 MB), but the dots differ 2.4x.
    let rci = g.characterization(Mode::Rci, Some(Seconds(makespans[0])));
    let spawn = g.characterization(Mode::Spawn, Some(Seconds(makespans[1])));
    let rci_model = RooflineModel::build(&machine, &rci).expect("valid");
    let spawn_model = RooflineModel::build(&machine, &spawn).expect("valid");
    println!(
        "file-system ceilings: RCI {:.3e} vs Spawn {:.3e} tasks/s (nearly identical: \
         I/O pattern, not volume, is what differs)",
        rci_model
            .system_ceilings()
            .first()
            .expect("has ceilings")
            .tps_at_one
            .get(),
        spawn_model
            .system_ceilings()
            .first()
            .expect("has ceilings")
            .tps_at_one
            .get(),
    );
    println!(
        "RCI reaches {:.3}% of its envelope: control-flow bound",
        rci_model.efficiency().expect("has dot") * 100.0
    );

    // The advisor spots the overhead pattern.
    let advice = advise(&rci_model);
    let overhead_rec = advice
        .recommendations
        .iter()
        .find(|r| r.direction == Direction::ReduceControlFlowOverhead)
        .expect("control-flow advice");
    println!("\nadvisor: {}", overhead_rec.rationale);

    // Project the Python-free mode with the model's own transform.
    let projected = remove_overhead(&spawn, Seconds(g.python_per_iter.get() * g.samples as f64))
        .expect("python overhead below makespan");
    println!(
        "\nmodel projection without Python: {:.0} s ({:.1}x over Spawn) -- consider \
         containers to amortize library loading (paper's conclusion #2)",
        projected.makespan.expect("set").get(),
        makespans[1] / projected.makespan.expect("set").get()
    );

    let svg = RooflinePlot::new("GPTune on PM-CPU: RCI vs Spawn vs projected")
        .model(&rci_model)
        .model(&spawn_model)
        .dot(ExtraDot {
            label: "projected (no python)".into(),
            x: 1.0,
            tps: TasksPerSec(1.0 / projected.makespan.expect("set").get()),
            color: "#2e7d32".into(),
            hollow: true,
            whisker: None,
        })
        .render_svg()
        .expect("has models");
    std::fs::write("gptune_roofline.svg", svg).expect("writable cwd");
    println!("wrote gptune_roofline.svg");
}
