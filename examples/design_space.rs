//! Designing a new workflow with the model: describe it in the workflow
//! language, simulate, classify, and explore the design space before
//! ever touching a real machine.
//!
//! ```text
//! cargo run --example design_space
//! ```
//!
//! The scenario: a genomics-style ensemble — 16 assembly tasks feeding a
//! cross-comparison step — being sized for Perlmutter GPU. How many
//! nodes per task? Is the file system going to bind? Does it meet a
//! 30-minute deadline?

use workflow_roofline::core::analysis::{classify_bound, BoundKind};
use workflow_roofline::prelude::*;

fn source(nodes_per_task: u64) -> String {
    format!(
        r#"
workflow assembly_ensemble on pm-gpu {{
  targets {{ makespan 30min  throughput 17 per 1800s }}
  task assemble[16] {{
    nodes {nodes_per_task}
    system_bytes fs 3TB
    compute 250PFLOPS eff 0.35
    node_bytes hbm 40TB
    system_bytes fs 500GB
  }}
  task compare {{
    nodes 4
    system_bytes fs 8TB
    compute 5PFLOPS eff 0.5
    after assemble
  }}
}}
"#
    )
}

fn main() {
    println!("== Sizing an assembly ensemble on PM-GPU ==\n");
    println!(
        "{:>6} {:>6} {:>14} {:>12} {:>10} {:>18}",
        "nodes", "wall", "makespan (s)", "tasks/s", "deadline", "binding"
    );

    let mut best: Option<(u64, f64)> = None;
    for nodes in [16u64, 32, 64, 128, 256] {
        let compiled = compile_source(&source(nodes)).expect("valid program");
        let machine = compiled.machine.clone().expect("names a machine");
        let run =
            simulate(&Scenario::new(machine.clone(), compiled.spec.clone())).expect("simulates");

        let mut wf = compiled.characterization().expect("valid");
        wf.makespan = Some(Seconds(run.makespan));
        let model = RooflineModel::build(&machine, &wf).expect("valid");
        let bound = classify_bound(&model);
        let binding = match &bound.bound {
            BoundKind::Node { resource } => format!("node:{resource}"),
            BoundKind::System { resource } => format!("system:{resource}"),
            BoundKind::Parallelism => "parallelism".to_owned(),
            BoundKind::Unbounded => "-".to_owned(),
        };
        let meets = run.makespan <= 1800.0;
        println!(
            "{nodes:>6} {:>6} {:>14.0} {:>12.5} {:>10} {:>18}",
            model.parallelism_wall,
            run.makespan,
            wf.throughput().expect("measured").get(),
            if meets { "yes" } else { "NO" },
            binding
        );
        if meets && best.is_none_or(|(_, m)| run.makespan < m) {
            best = Some((nodes, run.makespan));
        }
    }

    match best {
        Some((nodes, makespan)) => {
            println!(
                "\npick {nodes} nodes/task: meets the 30-minute deadline at {makespan:.0} s \
                 with the most throughput headroom"
            );
        }
        None => println!("\nno configuration meets the deadline -- revisit the pipeline"),
    }

    // Zoom into the chosen configuration: full report + figure.
    let nodes = best.map_or(64, |(n, _)| n);
    let compiled = compile_source(&source(nodes)).expect("valid program");
    let machine = compiled.machine.clone().expect("names a machine");
    let run = simulate(&Scenario::new(machine.clone(), compiled.spec.clone())).expect("simulates");
    let mut wf = compiled.characterization().expect("valid");
    wf.makespan = Some(Seconds(run.makespan));
    let model = RooflineModel::build(&machine, &wf).expect("valid");

    println!("\ntime breakdown at {nodes} nodes/task:");
    for (cat, secs) in &run.trace.breakdown().categories {
        println!("  {cat:<16} {secs:>10.1} s");
    }
    println!(
        "\n{}",
        workflow_roofline::plot::ascii::roofline(&model, 84, 22)
    );

    let svg = RooflinePlot::new(format!("assembly ensemble @ {nodes} nodes/task"))
        .model(&model)
        .render_svg()
        .expect("has model");
    std::fs::write("design_space.svg", svg).expect("writable cwd");
    println!("wrote design_space.svg");
}
