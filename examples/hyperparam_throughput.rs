//! Throughput-sensitive analysis: the CosmoFlow hyperparameter-tuning
//! proxy (paper §IV-C3) swept over instance counts, in parallel.
//!
//! ```text
//! cargo run --example hyperparam_throughput
//! ```
//!
//! Reproduces the Fig. 8 series — aggregate epochs/s grows linearly with
//! concurrent training instances until the 12-instance parallelism wall
//! — and shows the intra-task-parallelism trade-off of Fig. 2c.

use workflow_roofline::core::analysis::scale_intra_task_parallelism;
use workflow_roofline::prelude::*;
use workflow_roofline::sim::sweep;
use workflow_roofline::workflows::CosmoFlow;

fn main() {
    // Sweep 1..=12 concurrent instances across worker threads.
    let instance_counts: Vec<usize> = (1..=12).collect();
    let results = sweep(&instance_counts, 4, |&n| {
        let mut cf = CosmoFlow::throughput_benchmark(n);
        cf.epochs_per_instance = 5; // shorter runs, identical rates
        cf.scenario()
    });

    println!("== CosmoFlow throughput sweep (128 PM-GPU nodes per instance) ==");
    println!("{:>10} {:>14} {:>12}", "instances", "epochs/s", "linearity");
    let mut single = 0.0;
    for (n, result) in instance_counts.iter().zip(&results) {
        let result = result.as_ref().expect("simulates");
        let cf = CosmoFlow::throughput_benchmark(*n);
        let epochs = (*n * 5) as f64;
        let tps = epochs / result.makespan;
        if *n == 1 {
            single = tps;
        }
        println!(
            "{n:>10} {tps:>14.4} {:>11.0}%",
            tps / (single * *n as f64) * 100.0
        );
        let _ = cf;
    }

    // The model view at full width: which ceiling binds?
    let cf = CosmoFlow::throughput_benchmark(12);
    let model =
        RooflineModel::build(&machines::perlmutter_gpu(), &cf.characterization()).expect("valid");
    println!(
        "\nper-epoch ceilings: PCIe {:.2} s, HBM {:.2} s (paper: 0.8 s / 4.2 s)",
        cf.pcie_time().get(),
        cf.hbm_time().get()
    );
    println!(
        "binding node ceiling: {} (paper: HBM is ultimately the limitation)",
        model.node_ceilings()[0].resource
    );
    println!("regular GPU pool 1536 nodes / 128 per instance = 12-instance wall");

    // Fig. 2c: what if each instance used 256 nodes instead?
    let wider =
        scale_intra_task_parallelism(&cf.characterization(), 2.0, 0.85).expect("valid transform");
    let wide_model = RooflineModel::build(&machines::perlmutter_gpu(), &wider).expect("valid");
    println!(
        "\n2x intra-task parallelism at 85% scalability: wall {} -> {}, HBM ceiling at x=6: \
         {:.3} -> {:.3} epochs/s",
        model.parallelism_wall,
        wide_model.parallelism_wall,
        model.node_ceilings()[0].tps_at(6.0).get(),
        wide_model.node_ceilings()[0].tps_at(6.0).get(),
    );
    println!("(easier makespan targets, harder throughput targets -- Fig. 2c)");
}
