//! # workflow-roofline
//!
//! An end-to-end implementation of the **Workflow Roofline Model** from
//! *“A Workflow Roofline Model for End-to-End Workflow Performance
//! Analysis”* (Ding et al., SC'24), together with everything needed to
//! exercise it without a supercomputer:
//!
//! * [`core`] (re-export of `wrm-core`) — machines, ceilings, walls,
//!   characterizations, bound/zone classification, what-if transforms,
//!   and the optimization advisor;
//! * [`dag`] — workflow skeletons, critical paths, schedules, Gantt
//!   charts;
//! * [`sim`] — a discrete-event simulator with max–min fair shared
//!   bandwidth and a Slurm-like scheduler (the measurement substrate);
//! * [`trace`] — lightweight execution traces and their conversion into
//!   roofline characterizations;
//! * [`workflows`] — the paper's four case studies (LCLS, BerkeleyGW,
//!   CosmoFlow, GPTune) as executable models;
//! * [`lang`] — a small workflow-description language;
//! * [`plot`] — SVG/ASCII rendering of every figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use workflow_roofline::prelude::*;
//!
//! // 1. Describe a workflow (or load one of the paper's case studies).
//! let bgw = workflow_roofline::workflows::Bgw::si998_64();
//!
//! // 2. Simulate it on the built-in Perlmutter model.
//! let run = simulate(&bgw.scenario()).unwrap();
//!
//! // 3. Put the measured run on its roofline.
//! let model = RooflineModel::build(
//!     &machines::perlmutter_gpu(),
//!     &bgw.characterization(true),
//! ).unwrap();
//!
//! // 4. Interpret: BGW is node-bound at ~42% of the FLOPS ceiling.
//! assert!((model.efficiency().unwrap() - 0.42).abs() < 0.01);
//! assert!((run.makespan - 4184.86).abs() / 4184.86 < 0.02);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wrm_core as core;
pub use wrm_dag as dag;
pub use wrm_lang as lang;
pub use wrm_plot as plot;
pub use wrm_sim as sim;
pub use wrm_trace as trace;
pub use wrm_workflows as workflows;

/// One-stop imports for applications.
pub mod prelude {
    pub use wrm_core::prelude::*;
    pub use wrm_dag::{list_schedule, Dag, GanttChart, Policy};
    pub use wrm_lang::compile_source;
    pub use wrm_plot::{ExtraDot, RooflinePlot};
    pub use wrm_sim::{
        simulate, Phase, Scenario, SchedulerPolicy, SimOptions, TaskSpec, WorkflowSpec,
    };
    pub use wrm_trace::{characterize, Structure, Trace};
}
