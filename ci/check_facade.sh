#!/usr/bin/env bash
# Facade enforcement: the concurrency substrate must import its
# primitives from the wrm_mc facade (wrm_mc::sync / wrm_mc::thread),
# never from std directly — otherwise the model checker cannot see the
# operations and the model-check suites silently stop covering them.
#
# Covered paths: the serve substrate, the sweep column claimer, and the
# vendored crossbeam channel. Allowed std escapes: std::sync::Arc,
# std::sync::mpsc (no blocking protocol of ours to model), and
# non-spawning std::thread items (available_parallelism, scope,
# ScopedJoinHandle). crates/mc itself is exempt: it IS the facade.
#
# See docs/CONCURRENCY.md.
set -euo pipefail
cd "$(dirname "$0")/.."

paths=(crates/serve/src crates/sim/src/sweep.rs vendor/crossbeam/src)
pattern='std::sync::(Mutex|Condvar|atomic)'
pattern+='|std::thread::(spawn|Builder|JoinHandle)'
pattern+='|use std::sync::\{[^}]*(Mutex|Condvar)'
pattern+='|use std::thread::\{[^}]*(spawn|Builder|JoinHandle)'

if grep -rnE "$pattern" "${paths[@]}"; then
  echo >&2
  echo "facade lint: direct std concurrency primitive(s) found above." >&2
  echo "Import Mutex/Condvar/atomics from wrm_mc::sync and spawn via" >&2
  echo "wrm_mc::thread so the model checker covers them (docs/CONCURRENCY.md)." >&2
  exit 1
fi

echo "facade lint: OK (${paths[*]})"
