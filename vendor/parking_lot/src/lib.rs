//! Offline stand-in for `parking_lot`.
//!
//! [`Mutex`] keeps parking_lot's poison-free API (`lock()` returns the
//! guard directly) over a `std::sync::Mutex`.

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }
}
