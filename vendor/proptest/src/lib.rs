//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the API shape this workspace uses — `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert*!`, [`Strategy`],
//! [`strategy::Just`], `any::<T>()`, numeric ranges, simple
//! `[class]{m,n}` string patterns, `prop::collection::vec`, and
//! `proptest::option::of` — over a deterministic generator. Failing
//! inputs are not shrunk; the failing case's debug representation is
//! printed instead.

pub mod test_runner {
    use std::fmt;

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with a formatted message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name so distinct tests explore
        /// distinct inputs while every run stays reproducible.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` of this strategy's values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Wraps a generation closure (used by `prop_compose!`).
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<F> FnStrategy<F> {
        /// A strategy calling `f` for each value.
        pub fn new(f: F) -> Self {
            Self { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(width) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let width = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(width) as i64)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    /// String patterns: supports `[class]{m,n}` / `[class]{n}` /
    /// `[class]` sequences with `a-z`-style ranges; any other characters
    /// are emitted literally.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or(chars.len());
                let class = expand_class(&chars[i + 1..close.min(chars.len())]);
                i = close + 1;
                let (lo, hi) = parse_repeat(&chars, &mut i);
                let n = if lo == hi {
                    lo
                } else {
                    lo + rng.below((hi - lo + 1) as u64) as usize
                };
                for _ in 0..n {
                    if !class.is_empty() {
                        out.push(class[rng.below(class.len() as u64) as usize]);
                    }
                }
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    /// Expands a character class body (`a-z0-9_`) into its members.
    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        set.push(c);
                    }
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        set
    }

    /// Parses `{m,n}` / `{n}` at `*i`, defaulting to one repetition.
    fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
        if chars.get(*i) != Some(&'{') {
            return (1, 1);
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| *i + p)
            .unwrap_or(chars.len());
        let body: String = chars[*i + 1..close.min(chars.len())].iter().collect();
        *i = close + 1;
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().unwrap_or(1),
                hi.trim().parse().unwrap_or(1),
            ),
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly finite magnitudes across many scales, occasionally
            // special values.
            match rng.below(16) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => {
                    let exp = rng.below(80) as i32 - 40;
                    let mantissa = rng.unit_f64() * 2.0 - 1.0;
                    mantissa * 10f64.powi(exp)
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII, plus the occasional non-ASCII scalar.
            if rng.below(8) == 0 {
                char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¤')
            } else {
                (0x20 + rng.below(0x5F) as u8) as char
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.below(24) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` (`proptest::option::of`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop::...` paths (`prop::collection::vec` and friends).
pub mod prop {
    pub use crate::{collection, option, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Runs each `#[test] fn name(arg in strategy, ...)` body over many
/// generated cases; the body may `return Ok(())` early and use the
/// `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(unreachable_code)]
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property `{}` failed at case {}/{}: {}", stringify!($name), case + 1, cases, e);
                    }
                }
            }
        )*
    };
}

/// Builds a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// `assert!` that fails the current generated case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
