//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no `syn`/`quote`). Supports the shapes this workspace
//! uses:
//!
//! * structs with named fields (field attrs `#[serde(skip)]`,
//!   `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]`),
//! * newtype/tuple structs with one field (incl. `#[serde(transparent)]`),
//! * enums with unit, newtype, and struct variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`,
//! * `#[serde(rename_all = "snake_case")]` on containers.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Container- or field-level `#[serde(...)]` configuration.
#[derive(Default, Clone)]
struct Attrs {
    transparent: bool,
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    NewtypeStruct {
        name: String,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Parsed {
    attrs: Attrs,
    item: Item,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Strips the surrounding quotes from a string-literal token.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_owned()
}

/// Parses one `#[serde(...)]` bracket group body into `attrs`.
fn apply_serde_attr(group: &proc_macro::Group, attrs: &mut Attrs) {
    let mut tokens = group.stream().into_iter();
    // Expect: Ident("serde") Group(Paren, ...)
    let Some(TokenTree::Ident(head)) = tokens.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return;
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        let mut value = None;
        if matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            inner.next();
            if let Some(TokenTree::Literal(lit)) = inner.next() {
                value = Some(unquote(&lit.to_string()));
            }
        }
        match (key.as_str(), value) {
            ("transparent", _) => attrs.transparent = true,
            ("skip", _) => attrs.skip = true,
            ("default", _) => attrs.default = true,
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all_snake = v == "snake_case",
            _ => {}
        }
    }
}

/// Consumes leading attributes, folding `#[serde(...)]` into `attrs`.
fn take_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Attrs {
    let mut attrs = Attrs::default();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    apply_serde_attr(&g, &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

/// Consumes an optional `pub` / `pub(crate)` visibility.
fn skip_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Parses `name: Type` named fields from a brace-group body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let attrs = take_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return Ok(fields),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Consume the type: everything up to a comma at angle-depth 0.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
}

/// Counts top-level comma-separated entries of a paren-group body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_any = false;
    for tt in body {
        saw_any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return Ok(variants);
        }
        let _attrs = take_attrs(&mut tokens); // skips #[doc], #[default], ...
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return Ok(variants),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantShape::Struct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                tokens.next();
                if arity != 1 {
                    return Err(format!(
                        "variant `{name}`: only 1-field tuple variants are supported"
                    ));
                }
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        // Optional discriminant (`= expr`) is not supported; skip to comma.
        while let Some(tt) = tokens.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    let attrs = take_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic types are not supported"));
    }
    let item = match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            match tuple_arity(g.stream()) {
                1 => Item::NewtypeStruct { name },
                n => {
                    return Err(format!(
                        "`{name}`: {n}-field tuple structs are not supported"
                    ))
                }
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Item::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream())?,
        },
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };
    Ok(Parsed { attrs, item })
}

/// CamelCase -> snake_case (the `rename_all = "snake_case"` rule).
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(attrs: &Attrs, name: &str) -> String {
    if attrs.rename_all_snake {
        snake(name)
    } else {
        name.to_owned()
    }
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let body = match &p.item {
        Item::NewtypeStruct { .. } => "::serde::ser::Serialize::to_value(&self.0)".to_owned(),
        Item::UnitStruct { .. } => "::serde::value::Value::Null".to_owned(),
        Item::NamedStruct { fields, .. } => {
            let mut s = String::from("let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let push = format!(
                    "obj.push((\"{n}\".to_string(), ::serde::ser::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_serializing_if {
                    Some(pred) => {
                        s.push_str(&format!("if !{pred}(&self.{n}) {{\n{push}}}\n", n = f.name))
                    }
                    None => s.push_str(&push),
                }
            }
            s.push_str("::serde::value::Value::Object(obj)");
            s
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(&p.attrs, &v.name);
                match (&v.shape, &p.attrs.tag) {
                    (VariantShape::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::value::Value::String(\"{key}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::value::Value::Object(vec![(\"{tag}\".to_string(), ::serde::value::Value::String(\"{key}\".to_string()))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Newtype, None) => {
                        arms.push_str(&format!(
                            "{name}::{v}(x0) => ::serde::value::Value::Object(vec![(\"{key}\".to_string(), ::serde::ser::Serialize::to_value(x0))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Newtype, Some(_)) => {
                        // Internally tagged newtype variants are not used
                        // in this workspace.
                        arms.push_str(&format!(
                            "{name}::{v}(_) => ::serde::value::Value::Null,\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Struct(fields), tag) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{v} {{ {pat} }} => {{\nlet mut obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                            v = v.name,
                            pat = pat.join(", ")
                        );
                        if let Some(tag) = tag {
                            arm.push_str(&format!(
                                "obj.push((\"{tag}\".to_string(), ::serde::value::Value::String(\"{key}\".to_string())));\n"
                            ));
                        }
                        for f in fields.iter().filter(|f| !f.skip) {
                            let push = format!(
                                "obj.push((\"{n}\".to_string(), ::serde::ser::Serialize::to_value({n})));\n",
                                n = f.name
                            );
                            match &f.skip_serializing_if {
                                Some(pred) => arm.push_str(&format!(
                                    "if !{pred}({n}) {{\n{push}}}\n",
                                    n = f.name
                                )),
                                None => arm.push_str(&push),
                            }
                        }
                        if tag.is_some() {
                            arm.push_str("::serde::value::Value::Object(obj)\n}\n");
                        } else {
                            arm.push_str(&format!(
                                "::serde::value::Value::Object(vec![(\"{key}\".to_string(), ::serde::value::Value::Object(obj))])\n}}\n"
                            ));
                        }
                        arms.push_str(&arm);
                        arms.push(',');
                        arms.push('\n');
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = match &p.item {
        Item::NamedStruct { name, .. }
        | Item::NewtypeStruct { name }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::ser::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn gen_named_fields_init(fields: &[Field], entries_expr: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
        } else {
            let absent = if f.default {
                "::std::default::Default::default()".to_owned()
            } else {
                format!("::serde::de::Deserialize::absent(\"{n}\")?", n = f.name)
            };
            s.push_str(&format!(
                "{n}: match ::serde::de::field({e}, \"{n}\") {{\n\
                 ::std::option::Option::Some(v) => ::serde::de::Deserialize::from_value(v)?,\n\
                 ::std::option::Option::None => {absent},\n\
                 }},\n",
                n = f.name,
                e = entries_expr
            ));
        }
    }
    s
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = match &p.item {
        Item::NamedStruct { name, .. }
        | Item::NewtypeStruct { name }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name.clone(),
    };
    let body = match &p.item {
        Item::NewtypeStruct { .. } => {
            format!(
                "::std::result::Result::Ok({name}(::serde::de::Deserialize::from_value(value)?))"
            )
        }
        Item::UnitStruct { .. } => format!("::std::result::Result::Ok({name})"),
        Item::NamedStruct { fields, .. } => {
            format!(
                "let entries = value.as_object().ok_or_else(|| ::serde::de::Error::expected(\"struct {name}\", value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{init}}})",
                init = gen_named_fields_init(fields, "entries")
            )
        }
        Item::Enum { variants, .. } => match &p.attrs.tag {
            Some(tag) => {
                // Internally tagged: read the tag field, then the other
                // fields from the same object.
                let mut arms = String::new();
                for v in variants {
                    let key = variant_key(&p.attrs, &v.name);
                    match &v.shape {
                        VariantShape::Unit => arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantShape::Struct(fields) => arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v} {{\n{init}}}),\n",
                            v = v.name,
                            init = gen_named_fields_init(fields, "entries")
                        )),
                        VariantShape::Newtype => arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Err(::serde::de::Error::custom(\"internally tagged newtype variants are unsupported\")),\n"
                        )),
                    }
                }
                format!(
                    "let entries = value.as_object().ok_or_else(|| ::serde::de::Error::expected(\"enum {name}\", value))?;\n\
                     let tag = ::serde::de::field(entries, \"{tag}\")\
                         .and_then(::serde::value::Value::as_str)\
                         .ok_or_else(|| ::serde::de::Error::custom(\"missing `{tag}` tag for enum {name}\"))?;\n\
                     match tag {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::de::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}}"
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let key = variant_key(&p.attrs, &v.name);
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantShape::Newtype => keyed_arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}(::serde::de::Deserialize::from_value(inner)?)),\n",
                            v = v.name
                        )),
                        VariantShape::Struct(fields) => keyed_arms.push_str(&format!(
                            "\"{key}\" => {{\nlet entries = inner.as_object().ok_or_else(|| ::serde::de::Error::expected(\"variant {name}::{v}\", inner))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{init}}})\n}},\n",
                            v = v.name,
                            init = gen_named_fields_init(fields, "entries")
                        )),
                    }
                }
                format!(
                    "match value {{\n\
                     ::serde::value::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                     other => ::std::result::Result::Err(::serde::de::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                     ::serde::value::Value::Object(entries) if entries.len() == 1 => {{\n\
                     let (k, inner) = &entries[0];\n\
                     match k.as_str() {{\n{keyed_arms}\
                     other => ::std::result::Result::Err(::serde::de::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                     other => ::std::result::Result::Err(::serde::de::Error::expected(\"enum {name}\", other)),\n}}"
                )
            }
        },
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::de::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(p) => gen_serialize(&p).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(p) => gen_deserialize(&p).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
