//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] — on a
//! deterministic xoshiro256++ generator seeded via SplitMix64. Not
//! cryptographic; statistical quality is fine for jitter and test-data
//! generation.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Uniform `f64` in `[0, 1)` built from the top 53 bits.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut impl RngCore) -> usize {
        assert!(self.start < self.end, "cannot sample an empty range");
        let width = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % width) as usize
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample(self, rng: &mut impl RngCore) -> u64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let width = self.end - self.start;
        self.start + rng.next_u64() % width
    }
}

/// Convenience sampling methods (the `rand::Rng` extension surface).
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(-1.0..=1.0).to_bits(),
                b.random_range(-1.0..=1.0).to_bits()
            );
        }
    }

    #[test]
    fn range_is_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }
}
