//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset of the real API this workspace uses: the
//! [`json!`] macro, [`to_string`] / [`to_string_pretty`], [`from_str`],
//! [`Value`], and an [`Error`] type. Text is parsed into / printed from
//! the [`Value`] tree shared with the vendored `serde`.

mod parse;

pub use serde::value::{Number, Value};

/// A JSON error (parse failure or data-model mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
///
/// The `Result` mirrors the real crate's signature; the vendored
/// data model cannot fail to serialize.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports `null`, arrays of expressions, one level of object literal
/// with expression values, and bare serializable expressions. Nest
/// objects by building the inner value first.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}
