//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::value::{Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid).
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b < 0xE0 => 2,
                        _ if b < 0xF0 => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let rest = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::U64(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::I64(n)
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}
