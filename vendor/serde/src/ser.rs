//! Serialization: any `Serialize` type renders itself into a
//! [`Value`] tree; `serde_json` then prints the tree.

use crate::value::{Number, Value};
use std::collections::{BTreeMap, HashMap};

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
    )*};
}

ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Renders a map key: string-like keys keep their text, everything else
/// falls back to its compact JSON rendering.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
