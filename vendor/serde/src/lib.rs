//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment, so this
//! crate provides the subset the workspace uses: `Serialize` /
//! `Deserialize` traits (via a tree-walking [`value::Value`] data model
//! rather than serde's visitor machinery) and derive macros supporting
//! the container attributes used in-tree: `transparent`, `skip`,
//! `tag = "..."`, and `rename_all = "snake_case"`.
//!
//! The public surface mirrors `serde` closely enough that switching back
//! to the real crate is a `Cargo.toml` change.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
