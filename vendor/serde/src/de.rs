//! Deserialization: rebuild `Deserialize` types from a [`Value`] tree.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The standard "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }

    /// The standard type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Self::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called for a field absent from its object. `Option` fields decode
    /// as `None`; everything else reports a missing field.
    #[doc(hidden)]
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), value))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), value)),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null; accept the
            // round-trip back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Deserializing into a `'static` borrow has no owner to hand the data
/// to, so the string is leaked. Fine for small config/test data, which
/// is the only place `&'static str` fields appear.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-element array", value)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::expected("3-element array", value)),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        let mut map = BTreeMap::new();
        for (k, v) in entries {
            let key = K::from_value(&Value::String(k.clone()))?;
            map.insert(key, V::from_value(v)?);
        }
        Ok(map)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        let mut map = HashMap::with_capacity(entries.len());
        for (k, v) in entries {
            let key = K::from_value(&Value::String(k.clone()))?;
            map.insert(key, V::from_value(v)?);
        }
        Ok(map)
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Looks up `key` in an object's entry list (derive-macro helper).
#[doc(hidden)]
pub fn field<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
