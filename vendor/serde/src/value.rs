//! The JSON data model shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (always finite; non-finite values serialize as `null`).
    F64(f64),
}

impl Number {
    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as a `u64` when it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as an `i64` when it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) =>
            {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(n) if n.is_finite() => {
                // Rust's shortest round-trip formatting; force a fractional
                // or exponent marker so the token re-parses as a float.
                let s = format!("{n}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Number::F64(_) => f.write_str("null"),
        }
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// The shared `null` returned by [`Value::index`] lookups that miss.
pub const NULL: Value = Value::Null;

impl Value {
    /// Borrows the string content when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the object entries when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The number as `f64` when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64` when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Writes `s` as a JSON string literal (with escapes) into `out`.
pub fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_compact(out: &mut impl fmt::Write, v: &Value) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write!(out, "{n}"),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(out, item)?;
            }
            out.write_char(']')
        }
        Value::Object(entries) => {
            out.write_char('{')?;
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(out, k)?;
                out.write_char(':')?;
                write_compact(out, item)?;
            }
            out.write_char('}')
        }
    }
}

fn write_pretty(out: &mut impl fmt::Write, v: &Value, indent: usize) -> fmt::Result {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                write!(out, "{:width$}", "", width = indent + STEP)?;
                write_pretty(out, item, indent + STEP)?;
            }
            write!(out, "\n{:width$}]", "", width = indent)
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.write_str("{\n")?;
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                write!(out, "{:width$}", "", width = indent + STEP)?;
                write_escaped(out, k)?;
                out.write_str(": ")?;
                write_pretty(out, item, indent + STEP)?;
            }
            write!(out, "\n{:width$}}}", "", width = indent)
        }
        other => write_compact(out, other),
    }
}

impl Value {
    /// Renders with two-space indentation (the `to_string_pretty` format).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        let _ = write_pretty(&mut s, self, 0);
        s
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(f, self)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(Number::F64(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::U64(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(Number::U64(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::U64(n as u64))
        } else {
            Value::Number(Number::I64(n))
        }
    }
}
