//! Mutation test: prove the model checker actually catches the PR-8
//! lost wakeup by re-introducing it behind the
//! `crossbeam_notify_without_lock` fault flag and asserting the
//! channel suite's key scenario now fails — with a replay seed that
//! reproduces the failure deterministically.
//!
//! The fault flag is process-global, so this file must stay a single
//! test in its own binary (sibling tests in the same binary would race
//! the flag).
#![cfg(wrm_mc)]

use crossbeam::channel::{unbounded, RecvError};
use wrm_mc::{check, fault, replay, thread, Config, FailureKind};

const FAULT: &str = "crossbeam_notify_without_lock";

fn disconnect_scenario() {
    let (tx, rx) = unbounded::<()>();
    let receiver = thread::spawn(move || rx.recv());
    drop(tx);
    assert_eq!(receiver.join().unwrap(), Err(RecvError));
}

#[test]
fn checker_catches_the_reintroduced_lost_wakeup() {
    // Armed: the last sender notifies without the lock round-trip, the
    // wakeup can land between the receiver's `senders` check and its
    // `wait`, and the checker must find the resulting deadlock.
    fault::set(FAULT, true);
    let failure = check(Config::default(), disconnect_scenario)
        .expect_err("with the bug re-introduced the model check must fail");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(failure.seed.starts_with("mc1:"), "{failure}");

    // The printed seed reproduces exactly the failing schedule.
    let again = replay(&failure.seed, disconnect_scenario)
        .expect_err("the replay seed must reproduce the deadlock");
    assert_eq!(again.kind, FailureKind::Deadlock, "{again}");

    // Disarmed (the shipped code, with the d12f58b lock round-trip):
    // the same scenario passes exhaustively, and the once-failing
    // schedule no longer fails.
    fault::set(FAULT, false);
    check(Config::default(), disconnect_scenario)
        .expect("with the fix in place the model check must pass");
    replay(&failure.seed, disconnect_scenario)
        .expect("the fixed code must survive the previously failing schedule");
}
