//! Model-check suite 1: the MPMC channel.
//!
//! Exhaustively explores the channel's interleavings under
//! `RUSTFLAGS="--cfg wrm_mc"`: the PR-8 lost wakeup (last sender
//! dropping against a receiver entering its wait) must be absent, and
//! send/recv/disconnect must never lose or duplicate a message.
#![cfg(wrm_mc)]

use crossbeam::channel::{unbounded, RecvError};
use wrm_mc::{model, thread};

/// The exact PR-8 race, explored exhaustively instead of stress-raced:
/// the last sender drops while a receiver is between its `senders`
/// check and its `wait`. Every interleaving must end in a clean
/// disconnect — a lost wakeup would deadlock and fail the model.
#[test]
fn sender_drop_never_loses_wakeup() {
    model(|| {
        let (tx, rx) = unbounded::<()>();
        let receiver = thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(receiver.join().unwrap(), Err(RecvError));
    });
}

/// Messages sent before the disconnect are drained, in order, before
/// the receiver observes `RecvError`.
#[test]
fn disconnect_drains_pending_messages() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let receiver = thread::spawn(move || {
            let a = rx.recv();
            let b = rx.recv();
            let end = rx.recv();
            (a, b, end)
        });
        drop(tx);
        let (a, b, end) = receiver.join().unwrap();
        assert_eq!(a, Ok(1));
        assert_eq!(b, Ok(2));
        assert_eq!(end, Err(RecvError));
    });
}

/// Two senders and two receivers: across every interleaving each
/// message is delivered exactly once (no loss, no duplication), and
/// both receivers terminate.
#[test]
fn mpmc_no_loss_no_duplication() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let rx2 = rx.clone();

        let s1 = thread::spawn(move || tx.send(1).unwrap());
        let s2 = thread::spawn(move || tx2.send(2).unwrap());
        let r1 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let r2 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });

        s1.join().unwrap();
        s2.join().unwrap();
        let mut all = r1.join().unwrap();
        all.extend(r2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, vec![1, 2], "every message delivered exactly once");
    });
}

/// `send` after the last receiver is gone fails and hands the value
/// back, in every interleaving of the receiver drops.
#[test]
fn send_fails_once_receivers_are_gone() {
    model(|| {
        let (tx, rx) = unbounded::<u8>();
        let dropper = thread::spawn(move || drop(rx));
        dropper.join().unwrap();
        assert!(tx.send(9).is_err());
    });
}
