//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`scope`] with crossbeam's signature (spawn closures take a
//! scope argument; the scope call returns `Err` with the panic payload
//! if any worker panicked), implemented on `std::thread::scope`, and
//! [`channel`] with the `unbounded` MPMC subset of `crossbeam-channel`
//! (clonable senders *and* receivers, disconnect on last-sender drop),
//! implemented on `Mutex` + `Condvar`.

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to [`scope`]'s closure for spawning workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker thread.
    ///
    /// Crossbeam hands the closure a nested scope handle; this stand-in
    /// passes `()` — the workspace's workers ignore the argument.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope handle, joining all spawned threads before
/// returning. A panic in any worker surfaces as `Err(payload)`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use wrm_mc::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let count = AtomicUsize::new(0);
        let r = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(r.is_ok());
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_reported() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("worker failure"));
        });
        assert!(r.is_err());
    }
}
