//! The `unbounded` MPMC channel subset of `crossbeam-channel`.
//!
//! Semantics match the real crate where the workspace relies on them:
//!
//! * any number of [`Sender`]s and [`Receiver`]s, each clonable;
//! * [`Receiver::recv`] blocks until a message arrives or every sender
//!   is gone (then drains the queue before reporting [`RecvError`]);
//! * [`Sender::send`] fails only when every receiver is gone.
//!
//! Built on the `wrm_mc` facade's `Mutex`/`Condvar` (plain `std` in a
//! normal build, model-checked under `--cfg wrm_mc`) — adequate for job
//! queues whose items are orders of magnitude more expensive than a
//! lock.

use std::collections::VecDeque;
use std::sync::Arc;
use wrm_mc::sync::atomic::{AtomicUsize, Ordering};
use wrm_mc::sync::{Condvar, Mutex};

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped; carries the unsent message back like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an [`unbounded`] channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an [`unbounded`] channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one blocked receiver. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(value);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Mutation hook: re-introduce the pre-fix notify-without-lock
            // bug so the model-check mutation suite can prove the checker
            // catches it (see vendor/crossbeam/tests/mc_mutation.rs).
            #[cfg(wrm_mc)]
            if wrm_mc::fault::armed("crossbeam_notify_without_lock") {
                self.shared.ready.notify_all();
                return;
            }
            // Last sender gone: wake every blocked receiver so each can
            // observe the disconnect. The lock round-trip is required —
            // a receiver holds the mutex from its `senders` check until
            // `wait` releases it, so acquiring the mutex here orders
            // this notification after that check. Without it, the
            // decrement+notify can land between the receiver's check
            // and its wait(), and the wakeup is lost forever.
            drop(self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()));
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty
    /// and at least one sender is alive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues without blocking; `None` when the queue is currently
    /// empty (whether or not senders remain).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

// An iterator draining the channel until disconnect, like the real
// crate's `Receiver::into_iter`/`iter`.
impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Blocking iterator over received messages; ends at disconnect.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drains_queue_after_disconnect() {
        let (tx, rx) = unbounded();
        tx.send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    /// Regression: the last sender dropping must not lose its wakeup
    /// against a receiver that has checked `senders` but not yet parked
    /// in `wait`. With the unsynchronized notify this hung within a few
    /// hundred iterations; with the lock round-trip in `Sender::drop`
    /// every receiver observes the disconnect.
    #[test]
    fn disconnect_race_wakes_blocked_receiver() {
        for _ in 0..500 {
            let (tx, rx) = unbounded::<()>();
            let receiver = wrm_mc::thread::spawn(move || rx.recv());
            // Race the drop against the receiver entering its wait.
            wrm_mc::thread::yield_now();
            drop(tx);
            assert_eq!(receiver.join().unwrap(), Err(RecvError));
        }
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let n_producers = 4;
        let per_producer = 100;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let tx = tx.clone();
            handles.push(wrm_mc::thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send(p * per_producer + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(wrm_mc::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<usize> = (0..n_producers * per_producer).collect();
        assert_eq!(all, want);
    }
}
