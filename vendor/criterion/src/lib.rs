//! Offline stand-in for the `criterion` crate.
//!
//! Keeps criterion's bench-authoring API (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`]) over a simple
//! wall-clock sampler that prints per-benchmark mean times. Under
//! `cargo test` (cargo passes `--test` to `harness = false` targets)
//! each benchmark body runs exactly once as a smoke test.

use std::fmt::Write as _;
use std::time::Instant;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            name: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), param),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// measured routine.
pub struct Bencher {
    samples: u64,
    smoke_test: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.smoke_test {
            std::hint::black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // One warmup call, then timed samples.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 32,
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            smoke_test: self.smoke_test,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(name, b.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn report(&self, name: &str, mean_ns: f64, throughput: Option<Throughput>) {
        if self.smoke_test {
            println!("bench {name}: ok (smoke test)");
            return;
        }
        let mut line = format!("bench {name}: {}", human_time(mean_ns));
        if let Some(t) = throughput {
            let per_sec = match t {
                Throughput::Elements(n) => format!("{:.3e} elem/s", n as f64 / (mean_ns / 1e9)),
                Throughput::Bytes(n) => format!("{:.3e} B/s", n as f64 / (mean_ns / 1e9)),
            };
            let _ = write!(line, " ({per_sec})");
        }
        println!("{line}");
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for the next benchmarks' reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = (n as u64).max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            smoke_test: self.criterion.smoke_test,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.report(&full, b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            smoke_test: self.criterion.smoke_test,
            mean_ns: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        self.criterion.report(&full, b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
