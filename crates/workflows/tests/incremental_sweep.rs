//! Grid-level oracle tests: the incremental sweep engine
//! (`wrm_sim::sweep_grid` — shared base index + overlays, analytic fast
//! path, checkpoint/replay) reproduces per-point simulation *and* the
//! reference engine bit for bit on all four paper workflows.

use wrm_core::{ids, machines};
use wrm_sim::reference::simulate_reference;
use wrm_sim::{simulate, sweep_grid, Scenario, SchedulerPolicy, SimResult, SweepGrid};
use wrm_workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

/// Sorts trace spans by a stable key. The evaluation paths agree on the
/// span *set* exactly but may order simultaneous completions
/// differently (the `Trace` contract leaves that order unspecified);
/// every scalar stays under exact comparison.
fn canonical(mut r: SimResult) -> SimResult {
    r.trace.spans.sort_by(|a, b| {
        a.task
            .cmp(&b.task)
            .then(a.start.total_cmp(&b.start))
            .then(a.end.total_cmp(&b.end))
    });
    r
}

/// Runs the grid incrementally and checks every point against cold
/// `simulate` and `simulate_reference`.
fn assert_grid_oracle(scenario: &Scenario, grid: &SweepGrid, label: &str) {
    let outcome = sweep_grid(scenario, grid, 2);
    assert_eq!(outcome.results.len(), grid.len(), "{label}");
    for fi in 0..grid.factors.len() {
        for ni in 0..grid.node_limits.len() {
            for pi in 0..grid.policies.len() {
                let ix = grid.index_of(fi, ni, pi);
                let point = scenario.clone().with_options(grid.point_options(
                    &scenario.options,
                    fi,
                    ni,
                    pi,
                ));
                let cold = simulate(&point);
                let reference = simulate_reference(&point);
                match (&outcome.results[ix], cold, reference) {
                    (Ok(got), Ok(want), Ok(want_ref)) => {
                        assert_eq!(
                            canonical(got.clone()),
                            canonical(want),
                            "{label} point {ix} vs cold simulate"
                        );
                        assert_eq!(
                            canonical(got.clone()),
                            canonical(want_ref),
                            "{label} point {ix} vs reference"
                        );
                    }
                    (Err(got), Err(want), Err(want_ref)) => {
                        assert_eq!(got, &want, "{label} point {ix} error vs cold");
                        assert_eq!(got, &want_ref, "{label} point {ix} error vs reference");
                    }
                    (got, want, want_ref) => panic!(
                        "{label} point {ix} disagreement: {got:?} vs {want:?} / {want_ref:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn lcls_grid_matches_cold_and_reference() {
    // LCLS's swept knob is the external link — the paper's bad days.
    let scenario = Lcls::year_2020_on_cori().scenario(machines::cori_haswell(), Day::Good);
    let grid = SweepGrid {
        resource: Some(ids::EXTERNAL.into()),
        factors: vec![0.2, 0.5, 1.0],
        node_limits: vec![None, Some(96)],
        policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
    };
    assert_grid_oracle(&scenario, &grid, "LCLS");
}

#[test]
fn bgw_grid_matches_cold_and_reference() {
    let scenario = Bgw::si998_64().scenario();
    let grid = SweepGrid {
        resource: Some(ids::FILE_SYSTEM.into()),
        factors: vec![0.25, 1.0, 1.5],
        node_limits: vec![None, Some(128)],
        policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
    };
    assert_grid_oracle(&scenario, &grid, "BerkeleyGW");
}

#[test]
fn cosmoflow_grid_matches_cold_and_reference() {
    let scenario = CosmoFlow::default().scenario();
    let grid = SweepGrid {
        resource: Some(ids::FILE_SYSTEM.into()),
        factors: vec![0.5, 1.0],
        node_limits: vec![None, Some(64)],
        policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
    };
    assert_grid_oracle(&scenario, &grid, "CosmoFlow");
}

#[test]
fn gptune_grids_match_cold_and_reference() {
    for (mode, label) in [(Mode::Rci, "GPTune/RCI"), (Mode::Spawn, "GPTune/Spawn")] {
        let scenario = GpTune::default().scenario(mode);
        let grid = SweepGrid {
            resource: Some(ids::FILE_SYSTEM.into()),
            factors: vec![0.5, 1.0],
            node_limits: vec![None, Some(32)],
            policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
        };
        assert_grid_oracle(&scenario, &grid, label);
    }
}
