//! Bracketing oracle over the paper's workflows.
//!
//! For each workflow the paper characterizes — LCLS (good and bad
//! beamtime days, both facility generations), BerkeleyGW SI-998 at 64
//! and 1024 nodes, CosmoFlow, and GPTune in all orchestration modes —
//! the certificate must bracket the discrete-event makespan:
//! `lo * (1 - 1e-6) <= makespan <= hi`, with `hi` finite. This is the
//! end-to-end check that the certified intervals printed next to the
//! paper's Table 1 numbers are actually proofs about the simulator.

use wrm_core::machines;
use wrm_sim::{certify_scenario, simulate_makespan, Scenario};
use wrm_workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

fn assert_bracketed(scenario: &Scenario, what: &str) {
    let cert = certify_scenario(scenario).unwrap_or_else(|e| panic!("{what}: certify: {e}"));
    let makespan = simulate_makespan(scenario).unwrap_or_else(|e| panic!("{what}: sim: {e}"));
    assert!(cert.hi.is_finite(), "{what}: hi is not finite");
    assert!(
        cert.lo * (1.0 - 1e-6) <= makespan && makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
        "{what}: bracket {} <= {} <= {} violated",
        cert.lo,
        makespan,
        cert.hi
    );
}

#[test]
fn lcls_brackets_both_generations_and_both_days() {
    for day in [Day::Good, Day::Bad] {
        assert_bracketed(
            &Lcls::year_2020_on_cori().scenario(machines::cori_haswell(), day),
            &format!("LCLS 2020 {day:?}"),
        );
        assert_bracketed(
            &Lcls::year_2024_on_pm().scenario(machines::perlmutter_cpu(), day),
            &format!("LCLS 2024 {day:?}"),
        );
    }
}

#[test]
fn berkeleygw_brackets_both_scales() {
    assert_bracketed(&Bgw::si998_64().scenario(), "BerkeleyGW 64");
    assert_bracketed(&Bgw::si998_1024().scenario(), "BerkeleyGW 1024");
}

#[test]
fn cosmoflow_brackets() {
    assert_bracketed(&CosmoFlow::default().scenario(), "CosmoFlow");
}

#[test]
fn gptune_brackets_all_modes() {
    for mode in [Mode::Rci, Mode::Spawn, Mode::Projected] {
        assert_bracketed(
            &GpTune::default().scenario(mode),
            &format!("GPTune {mode:?}"),
        );
    }
}
