//! Exact-match tests: the optimized engine reproduces the reference
//! engine bit for bit on the four paper workflows (LCLS, BerkeleyGW,
//! CosmoFlow, GPTune), including jittered and scheduler-ablated runs.

use wrm_core::machines;
use wrm_sim::reference::simulate_reference;
use wrm_sim::{simulate, Jitter, Scenario, SchedulerPolicy, SimOptions};
use wrm_workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

/// Both engines must agree on the entire result: trace spans in order,
/// makespan, task times/starts/nodes, pool size.
fn assert_bit_identical(scenario: &Scenario, label: &str) {
    let optimized = simulate(scenario);
    let reference = simulate_reference(scenario);
    assert_eq!(optimized, reference, "engines diverge on {label}");
    let r = optimized.expect("paper workflows simulate cleanly");
    assert!(r.makespan > 0.0, "{label} has a non-trivial makespan");
}

#[test]
fn lcls_good_and_bad_day_match() {
    let lcls = Lcls::year_2020_on_cori();
    for day in [Day::Good, Day::Bad] {
        let scenario = lcls.scenario(machines::cori_haswell(), day);
        assert_bit_identical(&scenario, "LCLS on Cori");
    }
    let scenario = Lcls::year_2024_on_pm().scenario(machines::perlmutter_cpu(), Day::Good);
    assert_bit_identical(&scenario, "LCLS on PM-CPU");
}

#[test]
fn bgw_matches() {
    assert_bit_identical(&Bgw::si998_64().scenario(), "BerkeleyGW");
}

#[test]
fn cosmoflow_matches() {
    assert_bit_identical(&CosmoFlow::default().scenario(), "CosmoFlow");
}

#[test]
fn gptune_both_modes_match() {
    for mode in [Mode::Rci, Mode::Spawn] {
        assert_bit_identical(&GpTune::default().scenario(mode), "GPTune");
    }
}

#[test]
fn paper_workflows_match_under_jitter_and_backfill() {
    // The equivalence must also hold with the RNG engaged and under the
    // backfill scheduler, where start order is policy-dependent.
    let base = Lcls::year_2020_on_cori().scenario(machines::cori_haswell(), Day::Good);
    for seed in 0..8u64 {
        let mut opts = base.options.clone();
        opts.jitter = Some(Jitter {
            seed,
            amplitude: 0.3,
        });
        opts.scheduler = if seed % 2 == 0 {
            SchedulerPolicy::Fifo
        } else {
            SchedulerPolicy::Backfill
        };
        let scenario = base.clone().with_options(opts);
        assert_bit_identical(&scenario, "LCLS with jitter");
    }

    let bgw = Bgw::si998_64().scenario();
    let opts = SimOptions {
        jitter: Some(Jitter {
            seed: 7,
            amplitude: 0.25,
        }),
        scheduler: SchedulerPolicy::Backfill,
        ..bgw.options.clone()
    };
    let scenario = bgw.with_options(opts);
    assert_bit_identical(&scenario, "BGW with jitter + backfill");
}
