//! CosmoFlow: the MLPerf-HPC training-throughput workflow (paper
//! §IV-C3, Fig. 8), a proxy for hyperparameter tuning.
//!
//! Up to 12 concurrent training instances of 128 PM-GPU nodes each (the
//! 1536 regular GPU nodes / 128). Every epoch reads the single 2 TB
//! dataset copy from the file system, decompresses it to 10 TB, pushes
//! ~80 GB per node over PCIe (0.8 s at peak), and moves 6.4 GB of HBM
//! per sample x 2^19 samples (4.2 s at peak across 128 nodes). The
//! throughput unit is *epochs per second*; it grows linearly with the
//! number of instances up to the parallelism wall, with HBM the binding
//! node ceiling.

use serde::{Deserialize, Serialize};
use wrm_core::{ids, Bytes, Seconds, Work, WorkflowCharacterization};
use wrm_sim::{Phase, Scenario, SimOptions, TaskSpec, WorkflowSpec};

/// CosmoFlow model inputs (defaults = the artifact appendix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosmoFlow {
    /// Concurrent training instances (x axis of Fig. 8; max 12).
    pub instances: usize,
    /// Nodes per instance.
    pub nodes_per_instance: u64,
    /// Epochs per instance (average 25 in the throughput benchmark).
    pub epochs_per_instance: usize,
    /// Compressed dataset size read from the file system per epoch.
    pub dataset: Bytes,
    /// Decompressed volume crossing PCIe per epoch (whole instance).
    pub decompressed: Bytes,
    /// HBM traffic per sample.
    pub hbm_per_sample: Bytes,
    /// Samples per epoch (2^19).
    pub samples: u64,
    /// Measured wall-clock per epoch per instance (the empirical input
    /// the paper reads from the benchmark logs; ~45 s keeps the dots in
    /// the measured range while staying well under the ceilings).
    pub epoch_time: Seconds,
}

impl Default for CosmoFlow {
    fn default() -> Self {
        Self::throughput_benchmark(12)
    }
}

impl CosmoFlow {
    /// The PM-GPU throughput-benchmark configuration with `instances`
    /// concurrent models.
    pub fn throughput_benchmark(instances: usize) -> Self {
        CosmoFlow {
            instances,
            nodes_per_instance: 128,
            epochs_per_instance: 25,
            dataset: Bytes::tb(2.0),
            decompressed: Bytes::tb(10.0),
            hbm_per_sample: Bytes::gb(6.4),
            samples: 1 << 19,
            epoch_time: Seconds::secs(45.0),
        }
    }

    /// PCIe bytes per node per epoch: 10 TB / 128 nodes = ~80 GB.
    pub fn pcie_per_node(&self) -> Bytes {
        self.decompressed / self.nodes_per_instance as f64
    }

    /// The PCIe makespan ceiling per epoch (0.8 s at 100 GB/s/node).
    pub fn pcie_time(&self) -> Seconds {
        Seconds(self.pcie_per_node().get() / 100e9)
    }

    /// HBM bytes per epoch for a whole instance.
    pub fn hbm_per_epoch(&self) -> Bytes {
        self.hbm_per_sample * self.samples as f64
    }

    /// The HBM makespan ceiling per epoch: 4.2 s at 4 x 1555 GB/s x 128
    /// nodes.
    pub fn hbm_time(&self) -> Seconds {
        Seconds(self.hbm_per_epoch().get() / (4.0 * 1555e9 * self.nodes_per_instance as f64))
    }

    /// Total epochs retired by the workflow.
    pub fn total_epochs(&self) -> f64 {
        (self.instances * self.epochs_per_instance) as f64
    }

    /// Simulation spec: per instance a chain of epoch tasks, each
    /// reading the shared dataset, decompressing over PCIe, and training
    /// (HBM traffic at the efficiency implied by the measured epoch
    /// time).
    pub fn spec(&self) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("CosmoFlow");
        // The epoch's node-local budget after the shared FS read at the
        // uncontended rate (contention then stretches the FS phase).
        let fs_alone = self.dataset.get() / 5.6e12;
        let budget = (self.epoch_time.get() - fs_alone - self.pcie_time().get()).max(1e-3);
        let hbm_eff = (self.hbm_time().get() / budget).clamp(1e-6, 1.0);
        for inst in 0..self.instances {
            let mut prev: Option<String> = None;
            for ep in 0..self.epochs_per_instance {
                let name = format!("train[{inst}.{ep}]");
                let mut t = TaskSpec::new(name.clone(), self.nodes_per_instance)
                    .phase(Phase::system_data(ids::FILE_SYSTEM, self.dataset.get()))
                    .phase(Phase::node_data(ids::PCIE, self.decompressed.get()))
                    .phase(Phase::NodeData {
                        resource: ids::HBM.into(),
                        bytes: self.hbm_per_epoch().get(),
                        efficiency: hbm_eff,
                    });
                if let Some(p) = prev {
                    t = t.after(p);
                }
                prev = Some(name);
                wf = wf.task(t);
            }
        }
        wf
    }

    /// Ready-to-run scenario on PM-GPU. The regular GPU pool is 1536
    /// nodes (256 of the 1792 are large-memory), capping concurrency at
    /// 12 instances.
    pub fn scenario(&self) -> Scenario {
        Scenario::new(wrm_core::machines::perlmutter_gpu(), self.spec()).with_options(SimOptions {
            node_limit: Some(1536),
            ..SimOptions::default()
        })
    }

    /// Characterization in epoch units, with the measured throughput
    /// implied by `epoch_time` (`makespan = epochs_per_instance x
    /// epoch_time` when instances run concurrently).
    pub fn characterization(&self) -> WorkflowCharacterization {
        WorkflowCharacterization::builder("CosmoFlow")
            .total_tasks(self.total_epochs())
            .parallel_tasks(self.instances as f64)
            .nodes_per_task(self.nodes_per_instance)
            .makespan(Seconds(
                self.epochs_per_instance as f64 * self.epoch_time.get(),
            ))
            .node_volume(
                ids::PCIE,
                Work::Bytes(self.pcie_per_node() * self.epochs_per_instance as f64),
            )
            .node_volume(
                ids::HBM,
                Work::Bytes(
                    self.hbm_per_epoch() / self.nodes_per_instance as f64
                        * self.epochs_per_instance as f64,
                ),
            )
            .system_volume(ids::FILE_SYSTEM, self.dataset * self.total_epochs())
            .build()
            .expect("CosmoFlow characterization is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{machines, CeilingKind, RooflineModel};
    use wrm_sim::simulate;

    #[test]
    fn ceiling_times_match_fig8() {
        let c = CosmoFlow::default();
        assert!(
            (c.pcie_time().get() - 0.78).abs() < 0.03,
            "pcie {}",
            c.pcie_time()
        );
        assert!(
            (c.hbm_time().get() - 4.21).abs() < 0.05,
            "hbm {}",
            c.hbm_time()
        );
        assert!((c.pcie_per_node().get() - 78.1e9).abs() < 2e9);
    }

    #[test]
    fn wall_is_12_instances() {
        let c = CosmoFlow::default();
        let model =
            RooflineModel::build(&machines::perlmutter_gpu(), &c.characterization()).unwrap();
        // With the 1536-node regular pool: floor(1536/128) = 12. The full
        // 1792-node machine would allow 14; the scenario caps the pool.
        let pool_wall = 1536 / c.nodes_per_instance;
        assert_eq!(pool_wall, 12);
        assert!(model.parallelism_wall >= 12);
    }

    #[test]
    fn hbm_is_the_binding_node_ceiling() {
        let c = CosmoFlow::default();
        let model =
            RooflineModel::build(&machines::perlmutter_gpu(), &c.characterization()).unwrap();
        let node = model.node_ceilings();
        assert_eq!(node[0].resource.as_str(), ids::HBM);
        assert_eq!(node[0].kind, CeilingKind::Node);
        // HBM ceiling sits below PCIe (4.2 s vs 0.8 s per epoch).
        let pcie = node
            .iter()
            .find(|c| c.resource.as_str() == ids::PCIE)
            .unwrap();
        assert!(node[0].tps_at_one.get() < pcie.tps_at_one.get());
    }

    #[test]
    fn throughput_scales_linearly_with_instances() {
        // Simulated aggregate epochs/s for 1, 2, 4 instances (few epochs
        // to keep the test fast).
        let mut rates = Vec::new();
        for n in [1usize, 2, 4] {
            let mut c = CosmoFlow::throughput_benchmark(n);
            c.epochs_per_instance = 3;
            let r = simulate(&c.scenario()).unwrap();
            rates.push(c.total_epochs() / r.makespan);
        }
        let r2 = rates[1] / rates[0];
        let r4 = rates[2] / rates[0];
        assert!((r2 - 2.0).abs() < 0.1, "2 instances scaled {r2}");
        assert!((r4 - 4.0).abs() < 0.2, "4 instances scaled {r4}");
    }

    #[test]
    fn simulated_epoch_time_matches_configured() {
        let mut c = CosmoFlow::throughput_benchmark(1);
        c.epochs_per_instance = 2;
        let r = simulate(&c.scenario()).unwrap();
        let per_epoch = r.makespan / 2.0;
        assert!(
            (per_epoch - c.epoch_time.get()).abs() < 1.0,
            "epoch time {per_epoch}"
        );
    }

    #[test]
    fn dot_is_well_below_the_envelope() {
        // Training does not run at HBM peak: the dot sits far below.
        let c = CosmoFlow::default();
        let model =
            RooflineModel::build(&machines::perlmutter_gpu(), &c.characterization()).unwrap();
        let eff = model.efficiency().unwrap();
        assert!(eff > 0.02 && eff < 0.2, "efficiency {eff}");
    }
}
