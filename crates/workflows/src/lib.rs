//! # wrm-workflows — the paper's four case studies
//!
//! Executable models of the workflows evaluated in the paper (§IV),
//! each exposing:
//!
//! * a simulation spec (`wrm_sim::WorkflowSpec`) built from the artifact
//!   appendix's analytical inputs,
//! * a ready-to-run `wrm_sim::Scenario` on the right machine preset,
//! * the `wrm_core::WorkflowCharacterization` that puts it on the
//!   roofline,
//! * the workflow skeleton as a `wrm_dag::Dag`.
//!
//! | workflow | bound by | paper figures |
//! |---|---|---|
//! | [`lcls::Lcls`] | system-external bandwidth | Figs. 4–6 |
//! | [`bgw::Bgw`] | node FLOPS | Fig. 7 |
//! | [`cosmoflow::CosmoFlow`] | node HBM | Fig. 8 |
//! | [`gptune::GpTune`] | control flow | Figs. 9–10 |
//!
//! [`table1`] reproduces Table I (characterization sources),
//! [`example::fig1_characterization`] the illustrative Fig. 1 model, and
//! [`archetypes`] offers generic builders (ensemble, pipeline,
//! MapReduce, cross-facility, training) for sketching new workflows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archetypes;
pub mod bgw;
pub mod cosmoflow;
pub mod example;
pub mod gptune;
pub mod lcls;
pub mod table1;

pub use bgw::Bgw;
pub use cosmoflow::CosmoFlow;
pub use gptune::{GpTune, Mode};
pub use lcls::{Day, Lcls};
