//! Generic workflow archetypes (the patterns the paper's introduction
//! surveys: bags of tasks, MapReduce chains, simulation+analysis
//! pipelines, AI training/inference, cross-facility analysis). Each
//! builder produces a ready-to-simulate `WorkflowSpec` parameterized by
//! volumes, so new workflows can be sketched onto the roofline in a few
//! lines.

use wrm_core::ids;
use wrm_sim::{Phase, TaskSpec, WorkflowSpec};

/// Parameters shared by the archetype builders.
#[derive(Debug, Clone, Copy)]
pub struct TaskShape {
    /// Nodes per task.
    pub nodes: u64,
    /// FLOPs per task.
    pub flops: f64,
    /// Achieved fraction of peak compute.
    pub efficiency: f64,
    /// File-system bytes read per task.
    pub fs_in: f64,
    /// File-system bytes written per task.
    pub fs_out: f64,
}

impl Default for TaskShape {
    fn default() -> Self {
        TaskShape {
            nodes: 1,
            flops: 0.0,
            efficiency: 0.5,
            fs_in: 0.0,
            fs_out: 0.0,
        }
    }
}

fn shaped_task(name: String, shape: &TaskShape) -> TaskSpec {
    let mut t = TaskSpec::new(name, shape.nodes);
    if shape.fs_in > 0.0 {
        t = t.phase(Phase::system_data(ids::FILE_SYSTEM, shape.fs_in));
    }
    if shape.flops > 0.0 {
        t = t.phase(Phase::Compute {
            flops: shape.flops,
            efficiency: shape.efficiency,
        });
    }
    if shape.fs_out > 0.0 {
        t = t.phase(Phase::system_data(ids::FILE_SYSTEM, shape.fs_out));
    }
    t
}

/// An ensemble (bag of tasks): `width` independent members.
pub fn ensemble(width: usize, shape: TaskShape) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new(format!("ensemble[{width}]"));
    for i in 0..width {
        wf = wf.task(shaped_task(format!("member[{i}]"), &shape));
    }
    wf
}

/// A simulation + in-situ-style analysis pipeline: `stages` serial steps
/// where each stage's output feeds the next stage's input.
pub fn pipeline(stages: usize, shape: TaskShape) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new(format!("pipeline[{stages}]"));
    let mut prev: Option<String> = None;
    for i in 0..stages {
        let name = format!("stage[{i}]");
        let mut t = shaped_task(name.clone(), &shape);
        if let Some(p) = prev {
            t = t.after(p);
        }
        prev = Some(name);
        wf = wf.task(t);
    }
    wf
}

/// An iterative MapReduce: `iters` rounds of `width` mappers feeding one
/// reducer, each round gated on the previous reducer (Pregel-style).
pub fn map_reduce(
    iters: usize,
    width: usize,
    map_shape: TaskShape,
    reduce_shape: TaskShape,
) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new(format!("mapreduce[{iters}x{width}]"));
    let mut prev_reduce: Option<String> = None;
    for round in 0..iters {
        let mut mappers = Vec::with_capacity(width);
        for i in 0..width {
            let name = format!("map[{round}.{i}]");
            let mut t = shaped_task(name.clone(), &map_shape);
            if let Some(p) = &prev_reduce {
                t = t.after(p.clone());
            }
            mappers.push(name);
            wf = wf.task(t);
        }
        let rname = format!("reduce[{round}]");
        let mut r = shaped_task(rname.clone(), &reduce_shape);
        for m in mappers {
            r = r.after(m);
        }
        prev_reduce = Some(rname);
        wf = wf.task(r);
    }
    wf
}

/// A cross-facility analysis (the LCLS pattern): `streams` parallel
/// tasks that each pull `external_in` bytes over a capped WAN stream,
/// process, and write, followed by one merge.
pub fn cross_facility(
    streams: usize,
    external_in: f64,
    stream_cap: f64,
    shape: TaskShape,
) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new(format!("cross-facility[{streams}]"));
    for i in 0..streams {
        let mut t = TaskSpec::new(format!("analyze[{i}]"), shape.nodes).phase(Phase::SystemData {
            resource: ids::EXTERNAL.into(),
            bytes: external_in,
            stream_cap: Some(stream_cap),
        });
        if shape.flops > 0.0 {
            t = t.phase(Phase::Compute {
                flops: shape.flops,
                efficiency: shape.efficiency,
            });
        }
        if shape.fs_out > 0.0 {
            t = t.phase(Phase::system_data(ids::FILE_SYSTEM, shape.fs_out));
        }
        wf = wf.task(t);
    }
    let mut merge = TaskSpec::new("merge", 1);
    if shape.fs_out > 0.0 {
        merge = merge.phase(Phase::system_data(ids::FILE_SYSTEM, shape.fs_out));
    }
    for i in 0..streams {
        merge = merge.after(format!("analyze[{i}]"));
    }
    wf.task(merge)
}

/// An AI training throughput run (the CosmoFlow pattern): `instances`
/// concurrent chains of `epochs` epoch-tasks, each reading the shared
/// dataset and moving `node_bytes` through a node-local resource.
pub fn training_throughput(
    instances: usize,
    epochs: usize,
    nodes: u64,
    dataset: f64,
    node_resource: &str,
    node_bytes: f64,
    node_efficiency: f64,
) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new(format!("training[{instances}x{epochs}]"));
    for inst in 0..instances {
        let mut prev: Option<String> = None;
        for ep in 0..epochs {
            let name = format!("epoch[{inst}.{ep}]");
            let mut t = TaskSpec::new(name.clone(), nodes)
                .phase(Phase::system_data(ids::FILE_SYSTEM, dataset))
                .phase(Phase::NodeData {
                    resource: node_resource.into(),
                    bytes: node_bytes,
                    efficiency: node_efficiency,
                });
            if let Some(p) = prev {
                t = t.after(p);
            }
            prev = Some(name);
            wf = wf.task(t);
        }
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::machines;
    use wrm_sim::{simulate, Scenario};

    fn compute_shape(nodes: u64, flops: f64) -> TaskShape {
        TaskShape {
            nodes,
            flops,
            efficiency: 0.5,
            fs_in: 1e9,
            fs_out: 1e9,
        }
    }

    #[test]
    fn ensemble_is_flat() {
        let wf = ensemble(8, compute_shape(4, 1e15));
        let dag = wf.to_dag(&machines::perlmutter_gpu()).unwrap();
        assert_eq!(dag.max_width().unwrap(), 8);
        assert_eq!(dag.critical_path_length().unwrap(), 1);
        simulate(&Scenario::new(machines::perlmutter_gpu(), wf)).unwrap();
    }

    #[test]
    fn pipeline_is_serial() {
        let wf = pipeline(6, compute_shape(4, 1e15));
        let dag = wf.to_dag(&machines::perlmutter_gpu()).unwrap();
        assert_eq!(dag.max_width().unwrap(), 1);
        assert_eq!(dag.critical_path_length().unwrap(), 6);
    }

    #[test]
    fn map_reduce_rounds_are_gated() {
        let wf = map_reduce(3, 4, compute_shape(2, 1e14), compute_shape(1, 1e12));
        let dag = wf.to_dag(&machines::perlmutter_gpu()).unwrap();
        assert_eq!(dag.len(), 15);
        assert_eq!(dag.critical_path_length().unwrap(), 6);
        let r = simulate(&Scenario::new(machines::perlmutter_gpu(), wf)).unwrap();
        assert_eq!(r.task_times.len(), 15);
    }

    #[test]
    fn cross_facility_matches_lcls_shape() {
        // Cori has no parallel file system in our model (burst buffer
        // instead), so the shape moves no FS bytes.
        let shape = TaskShape {
            nodes: 32,
            ..TaskShape::default()
        };
        let wf = cross_facility(5, 1e12, 1e9, shape);
        let dag = wf.to_dag(&machines::cori_haswell()).unwrap();
        assert_eq!(dag.max_width().unwrap(), 5);
        assert_eq!(dag.critical_path_length().unwrap(), 2);
        let r = simulate(&Scenario::new(machines::cori_haswell(), wf)).unwrap();
        assert!((r.makespan - 1000.0).abs() < 5.0, "makespan {}", r.makespan);
    }

    #[test]
    fn training_chains_per_instance() {
        let wf = training_throughput(3, 4, 2, 1e9, wrm_core::ids::HBM, 1e12, 0.5);
        let dag = wf.to_dag(&machines::perlmutter_gpu()).unwrap();
        assert_eq!(dag.len(), 12);
        assert_eq!(dag.max_width().unwrap(), 3);
        assert_eq!(dag.critical_path_length().unwrap(), 4);
    }

    #[test]
    fn empty_shapes_make_zero_phase_tasks() {
        let wf = ensemble(2, TaskShape::default());
        assert!(wf.tasks.iter().all(|t| t.phases.is_empty()));
        let r = simulate(&Scenario::new(machines::perlmutter_gpu(), wf)).unwrap();
        assert_eq!(r.makespan, 0.0);
    }
}
