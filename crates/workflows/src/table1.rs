//! Table I of the paper: how each node- and system-performance metric was
//! obtained for each workflow (measured, reported, or an analytical
//! model) — machine-readable, so reports and the benches can print the
//! same matrix.

use serde::{Deserialize, Serialize};

/// How a metric was characterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Measured directly in this work.
    Measured,
    /// Taken from a published report.
    Reported,
    /// Derived from an analytical model with domain knowledge.
    AnalyticalModel,
    /// Not applicable / not needed for this workflow.
    NotApplicable,
}

impl Source {
    /// Short display form, as in the paper's table.
    pub fn short(self) -> &'static str {
        match self {
            Source::Measured => "Measured",
            Source::Reported => "Reported",
            Source::AnalyticalModel => "Analytical model",
            Source::NotApplicable => "NA",
        }
    }
}

/// The metrics of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// End-to-end wall clock time.
    WallClockTime,
    /// FLOPs at node level.
    NodeFlops,
    /// CPU/GPU memory bytes.
    CpuGpuBytes,
    /// Host-device PCIe bytes.
    NodePcieBytes,
    /// MPI traffic through the system network.
    SystemNetworkBytes,
    /// File-system bytes.
    FileSystemBytes,
}

impl Metric {
    /// All metrics in the table's row order.
    pub const ALL: [Metric; 6] = [
        Metric::WallClockTime,
        Metric::NodeFlops,
        Metric::CpuGpuBytes,
        Metric::NodePcieBytes,
        Metric::SystemNetworkBytes,
        Metric::FileSystemBytes,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::WallClockTime => "Wall clock time",
            Metric::NodeFlops => "Node FLOPs",
            Metric::CpuGpuBytes => "CPU/GPU Bytes",
            Metric::NodePcieBytes => "Node PCIe Bytes",
            Metric::SystemNetworkBytes => "System Network Bytes",
            Metric::FileSystemBytes => "File System Bytes",
        }
    }
}

/// One workflow column of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSources {
    /// Workflow name.
    pub workflow: &'static str,
    /// Sources in [`Metric::ALL`] order.
    pub sources: [Source; 6],
}

impl WorkflowSources {
    /// The source for one metric.
    pub fn get(&self, metric: Metric) -> Source {
        let idx = Metric::ALL
            .iter()
            .position(|&m| m == metric)
            .expect("known metric");
        self.sources[idx]
    }
}

/// The full Table I.
pub fn table1() -> Vec<WorkflowSources> {
    use Source::*;
    vec![
        WorkflowSources {
            workflow: "LCLS",
            sources: [
                Reported,        // wall clock (from the XFEL trial-run report)
                NotApplicable,   // node FLOPs
                AnalyticalModel, // CPU/GPU bytes
                NotApplicable,   // PCIe
                NotApplicable,   // network
                AnalyticalModel, // file system
            ],
        },
        WorkflowSources {
            workflow: "BerkeleyGW",
            sources: [
                Measured,
                Reported,
                Reported,
                NotApplicable,
                Reported,
                Reported,
            ],
        },
        WorkflowSources {
            workflow: "CosmoFlow",
            sources: [
                Measured,
                NotApplicable,
                Measured,
                AnalyticalModel,
                NotApplicable,
                AnalyticalModel,
            ],
        },
        WorkflowSources {
            workflow: "GPTune",
            sources: [
                Measured,
                NotApplicable,
                Measured,
                NotApplicable,
                NotApplicable,
                Measured,
            ],
        },
    ]
}

/// Renders the table as aligned plain text (the benches print this).
pub fn render_table1() -> String {
    let cols = table1();
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "Metric"));
    for c in &cols {
        out.push_str(&format!("{:<18}", c.workflow));
    }
    out.push('\n');
    for metric in Metric::ALL {
        out.push_str(&format!("{:<22}", metric.label()));
        for c in &cols {
            out.push_str(&format!("{:<18}", c.get(metric).short()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let lcls = &t[0];
        assert_eq!(lcls.get(Metric::WallClockTime), Source::Reported);
        assert_eq!(lcls.get(Metric::CpuGpuBytes), Source::AnalyticalModel);
        assert_eq!(lcls.get(Metric::NodeFlops), Source::NotApplicable);
        let bgw = &t[1];
        assert_eq!(bgw.get(Metric::WallClockTime), Source::Measured);
        assert_eq!(bgw.get(Metric::SystemNetworkBytes), Source::Reported);
        let cosmo = &t[2];
        assert_eq!(cosmo.get(Metric::NodePcieBytes), Source::AnalyticalModel);
        assert_eq!(cosmo.get(Metric::CpuGpuBytes), Source::Measured);
        let gptune = &t[3];
        assert_eq!(gptune.get(Metric::FileSystemBytes), Source::Measured);
    }

    #[test]
    fn rendered_table_contains_all_rows_and_columns() {
        let text = render_table1();
        for m in Metric::ALL {
            assert!(text.contains(m.label()), "missing {}", m.label());
        }
        for w in ["LCLS", "BerkeleyGW", "CosmoFlow", "GPTune"] {
            assert!(text.contains(w), "missing {w}");
        }
        assert_eq!(text.lines().count(), 7);
    }
}
