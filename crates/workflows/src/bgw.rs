//! BerkeleyGW (BGW): the traditional node-bound HPC workflow (paper
//! §IV-C2, Fig. 7).
//!
//! Two tasks — Epsilon then Sigma — run serially on the same allocation
//! (Si998 problem): 1164 + 3226 PFLOPs, 70 GB from the file system, and
//! a strong-scaling-constant ~171 TB of MPI traffic (256 batches). At 64
//! nodes/task the workflow reaches ~42 % of the node FLOPS ceiling with
//! a 28-task parallelism wall; at 1024 nodes the wall collapses to 1 and
//! efficiency drops to ~30 %.

use serde::{Deserialize, Serialize};
use wrm_core::{ids, Bytes, Flops, Seconds, TaskCharacterization, Work, WorkflowCharacterization};
use wrm_dag::Dag;
use wrm_sim::{Phase, Scenario, TaskSpec, WorkflowSpec};

/// BGW model inputs (defaults = the Si998 case from the appendix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bgw {
    /// Nodes per task (64 or 1024 in the paper).
    pub nodes: u64,
    /// Epsilon's total FLOPs.
    pub flops_epsilon: Flops,
    /// Sigma's total FLOPs.
    pub flops_sigma: Flops,
    /// Bytes loaded from the file system (whole workflow).
    pub fs_bytes: Bytes,
    /// Total MPI volume (constant in strong scaling: 256 batches).
    pub network_bytes: Bytes,
    /// Measured wall-clock of Epsilon.
    pub measured_epsilon: Seconds,
    /// Measured wall-clock of Sigma.
    pub measured_sigma: Seconds,
}

impl Bgw {
    /// The 64-node configuration. The paper reports only the 4184.86 s
    /// total; the per-task split is synthetic but consistent with that
    /// total and with the per-task efficiencies at 1024 nodes.
    pub fn si998_64() -> Self {
        Bgw {
            nodes: 64,
            flops_epsilon: Flops::pflops(1164.0),
            flops_sigma: Flops::pflops(3226.0),
            fs_bytes: Bytes::gb(70.0),
            network_bytes: Bytes::gb(2676.0 * 64.0),
            measured_epsilon: Seconds::secs(1240.0),
            measured_sigma: Seconds::secs(2944.86),
        }
    }

    /// The 1024-node configuration (paper Fig. 7d: 180 s + 225 s).
    pub fn si998_1024() -> Self {
        Bgw {
            nodes: 1024,
            flops_epsilon: Flops::pflops(1164.0),
            flops_sigma: Flops::pflops(3226.0),
            fs_bytes: Bytes::gb(70.0),
            network_bytes: Bytes::gb(2676.0 * 64.0),
            measured_epsilon: Seconds::secs(180.0),
            measured_sigma: Seconds::secs(224.74),
        }
    }

    /// Measured end-to-end makespan (the tasks are serial).
    pub fn makespan(&self) -> Seconds {
        self.measured_epsilon + self.measured_sigma
    }

    /// Ideal compute time of one task on this allocation at the A100
    /// FP64 peak (4 x 9.7 TFLOPS per node).
    fn ideal_compute(&self, flops: Flops) -> Seconds {
        let node_peak = 4.0 * 9.7e12;
        Seconds(flops.get() / (node_peak * self.nodes as f64))
    }

    /// Compute efficiency of Epsilon (measured vs ideal).
    pub fn efficiency_epsilon(&self) -> f64 {
        self.ideal_compute(self.flops_epsilon).get() / self.measured_epsilon.get()
    }

    /// Compute efficiency of Sigma.
    pub fn efficiency_sigma(&self) -> f64 {
        self.ideal_compute(self.flops_sigma).get() / self.measured_sigma.get()
    }

    /// The two-task skeleton with measured durations.
    pub fn dag(&self) -> Dag {
        let mut d = Dag::new("BerkeleyGW");
        let e = d
            .add_task("Epsilon", self.nodes, self.measured_epsilon.get())
            .expect("valid task");
        let s = d
            .add_task("Sigma", self.nodes, self.measured_sigma.get())
            .expect("valid task");
        d.add_dep(e, s).expect("valid edge");
        d
    }

    /// Simulation spec: each task reads its inputs, computes at the
    /// efficiency implied by the measured times, and exchanges its share
    /// of the MPI volume (Epsilon ~27 %, Sigma ~73 %, proportional to
    /// FLOPs).
    pub fn spec(&self) -> WorkflowSpec {
        let total_flops = self.flops_epsilon.get() + self.flops_sigma.get();
        let net_e = self.network_bytes.get() * self.flops_epsilon.get() / total_flops;
        let net_s = self.network_bytes.get() * self.flops_sigma.get() / total_flops;
        // The compute phase absorbs the remaining measured time after
        // the network/FS phases (both tiny at these scales).
        WorkflowSpec::new("BerkeleyGW")
            .task(
                TaskSpec::new("Epsilon", self.nodes)
                    .phase(Phase::system_data(
                        ids::FILE_SYSTEM,
                        self.fs_bytes.get() * 0.3,
                    ))
                    .phase(Phase::Compute {
                        flops: self.flops_epsilon.get(),
                        efficiency: self.compute_efficiency(
                            self.flops_epsilon,
                            self.measured_epsilon,
                            net_e,
                        ),
                    })
                    .phase(Phase::system_data(ids::NETWORK, net_e)),
            )
            .task(
                TaskSpec::new("Sigma", self.nodes)
                    .phase(Phase::system_data(
                        ids::FILE_SYSTEM,
                        self.fs_bytes.get() * 0.7,
                    ))
                    .phase(Phase::Compute {
                        flops: self.flops_sigma.get(),
                        efficiency: self.compute_efficiency(
                            self.flops_sigma,
                            self.measured_sigma,
                            net_s,
                        ),
                    })
                    .phase(Phase::system_data(ids::NETWORK, net_s))
                    .after("Epsilon"),
            )
    }

    /// Efficiency that makes compute + network land on the measured time.
    fn compute_efficiency(&self, flops: Flops, measured: Seconds, net_bytes: f64) -> f64 {
        let net_time = net_bytes / (100e9 * self.nodes as f64);
        let compute_budget = (measured.get() - net_time).max(1e-6);
        (self.ideal_compute(flops).get() / compute_budget).clamp(1e-6, 1.0)
    }

    /// Ready-to-run scenario on PM-GPU.
    pub fn scenario(&self) -> Scenario {
        Scenario::new(wrm_core::machines::perlmutter_gpu(), self.spec())
    }

    /// The workflow characterization (Fig. 7a/7b inputs).
    pub fn characterization(&self, measured: bool) -> WorkflowCharacterization {
        let per_node =
            Flops((self.flops_epsilon.get() + self.flops_sigma.get()) / self.nodes as f64);
        let mut b = WorkflowCharacterization::builder("BerkeleyGW")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(self.nodes)
            .node_volume(ids::COMPUTE, Work::Flops(per_node))
            .system_volume(ids::FILE_SYSTEM, self.fs_bytes)
            .system_volume(ids::NETWORK, self.network_bytes);
        if measured {
            b = b.makespan(self.makespan());
        }
        b.build().expect("BGW characterization is valid")
    }

    /// Per-task characterizations for the task view (Fig. 7c).
    pub fn task_characterizations(&self) -> Vec<TaskCharacterization> {
        vec![
            TaskCharacterization::new("Epsilon", self.nodes)
                .with_measured(self.measured_epsilon)
                .with_node_volume(
                    ids::COMPUTE,
                    Work::Flops(self.flops_epsilon / self.nodes as f64),
                ),
            TaskCharacterization::new("Sigma", self.nodes)
                .with_measured(self.measured_sigma)
                .with_node_volume(
                    ids::COMPUTE,
                    Work::Flops(self.flops_sigma / self.nodes as f64),
                ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{machines, RooflineModel, TaskView};
    use wrm_sim::simulate;

    #[test]
    fn makespans_match_the_paper() {
        assert!((Bgw::si998_64().makespan().get() - 4184.86).abs() < 1e-9);
        assert!((Bgw::si998_1024().makespan().get() - 404.74).abs() < 1e-9);
    }

    #[test]
    fn efficiency_42_percent_at_64_nodes() {
        let model = RooflineModel::build(
            &machines::perlmutter_gpu(),
            &Bgw::si998_64().characterization(true),
        )
        .unwrap();
        let eff = model.efficiency().unwrap();
        assert!((eff - 0.42).abs() < 0.01, "eff {eff}");
        assert_eq!(model.parallelism_wall, 28);
        assert_eq!(
            model.binding_ceiling().unwrap().resource.as_str(),
            ids::COMPUTE
        );
    }

    #[test]
    fn efficiency_30_percent_at_1024_nodes_and_wall_1() {
        let model = RooflineModel::build(
            &machines::perlmutter_gpu(),
            &Bgw::si998_1024().characterization(true),
        )
        .unwrap();
        let eff = model.efficiency().unwrap();
        assert!((eff - 0.273).abs() < 0.02, "eff {eff}");
        assert_eq!(model.parallelism_wall, 1);
    }

    #[test]
    fn network_volume_is_scale_invariant() {
        // 64 x 2676 GB == 1024 x 168 GB within rounding (paper appendix).
        let b = Bgw::si998_64();
        let per_node_64 = b.network_bytes.get() / 64.0;
        let per_node_1024 = b.network_bytes.get() / 1024.0;
        assert!((per_node_64 - 2676e9).abs() < 1e6);
        assert!((per_node_1024 - 167.25e9).abs() < 1e9); // paper: 168 GB
    }

    #[test]
    fn simulation_reproduces_measured_makespans() {
        for cfg in [Bgw::si998_64(), Bgw::si998_1024()] {
            let r = simulate(&cfg.scenario()).unwrap();
            let expected = cfg.makespan().get();
            assert!(
                (r.makespan - expected).abs() / expected < 0.02,
                "nodes {}: simulated {} vs measured {expected}",
                cfg.nodes,
                r.makespan
            );
            assert!(r.task_times["Sigma"] > r.task_times["Epsilon"]);
        }
    }

    #[test]
    fn task_view_matches_fig7c() {
        let m = machines::perlmutter_gpu();
        let view = TaskView::build(&m, &Bgw::si998_1024().task_characterizations()).unwrap();
        // Sigma dominates the makespan; Epsilon has the most headroom.
        assert_eq!(view.dominant_task().unwrap().name, "Sigma");
        assert_eq!(view.best_optimization_candidate().unwrap().name, "Epsilon");
        // Ceiling times ~29 s and ~81 s.
        let eps = &view.points[0];
        let t = eps.ceiling_times.get(ids::COMPUTE).unwrap().get();
        assert!((t - 29.3).abs() < 0.5, "epsilon ceiling {t}");
    }

    #[test]
    fn implied_efficiencies_are_physical() {
        for cfg in [Bgw::si998_64(), Bgw::si998_1024()] {
            for e in [cfg.efficiency_epsilon(), cfg.efficiency_sigma()] {
                assert!(e > 0.0 && e < 1.0, "efficiency {e}");
            }
        }
        // At 1024 nodes Epsilon scales worse than Sigma (paper: 16% vs 36%).
        let b = Bgw::si998_1024();
        assert!(b.efficiency_epsilon() < b.efficiency_sigma());
        assert!((b.efficiency_epsilon() - 0.163).abs() < 0.01);
        assert!((b.efficiency_sigma() - 0.361).abs() < 0.01);
    }

    #[test]
    fn dag_structure() {
        let d = Bgw::si998_64().dag();
        assert_eq!(d.max_width().unwrap(), 1);
        assert_eq!(d.critical_path_length().unwrap(), 2);
        let (_, total) = d.critical_path().unwrap();
        assert!((total - 4184.86).abs() < 1e-9);
    }
}
