//! GPTune: the control-flow-bound autotuning workflow (paper §IV-C4,
//! Figs. 9–10).
//!
//! Forty serialized tuning iterations of SuperLU_DIST (4960x4960
//! matrix) on one PM-CPU node. Two control-flow modes:
//!
//! * **RCI** — bash drives every iteration: an `srun` launch, Python
//!   re-processing, and the metadata loaded from the file system each
//!   time (45 MB total, ~30 s of I/O): 553 s end-to-end.
//! * **Spawn** — one `srun`, iterations via `MPI_Comm_spawn`, metadata
//!   kept in memory (40 MB once, ~0.02 s): 228 s.
//!
//! Removing the per-iteration Python overhead projects a further ~12x
//! (the open dot of Fig. 10a). The two file-system ceilings nearly
//! coincide — I/O *pattern and concurrency*, not volume, make the
//! difference.

use serde::{Deserialize, Serialize};
use wrm_core::{ids, Bytes, Seconds, Work, WorkflowCharacterization};
use wrm_sim::{Phase, Scenario, TaskSpec, WorkflowSpec};
use wrm_trace::TimeBreakdown;

/// GPTune control-flow mode (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Bash-driven iterations with per-iteration srun + file-system
    /// metadata.
    Rci,
    /// MPI_Comm_spawn-driven iterations with in-memory metadata.
    Spawn,
    /// The paper's projection: Spawn with the Python overhead removed.
    Projected,
}

impl Mode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Rci => "RCI",
            Mode::Spawn => "Spawn",
            Mode::Projected => "Projected",
        }
    }
}

/// GPTune model inputs (defaults = the appendix: 40 samples, one CPU
/// node, overheads calibrated to the paper's 553 s / 228 s / ~12x).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpTune {
    /// Tuning iterations (samples).
    pub samples: usize,
    /// Per-iteration Python library/model overhead (both modes).
    pub python_per_iter: Seconds,
    /// Per-iteration bash + srun overhead (RCI only).
    pub bash_per_iter: Seconds,
    /// One SuperLU_DIST run (small benchmark matrix).
    pub app_per_iter: Seconds,
    /// Per-iteration surrogate-model search time.
    pub model_per_iter: Seconds,
    /// Total metadata volume read from the file system in RCI mode.
    pub rci_metadata: Bytes,
    /// Metadata volume loaded once in Spawn mode.
    pub spawn_metadata: Bytes,
    /// Effective per-read metadata bandwidth in RCI (small, seeky reads).
    pub rci_metadata_rate: f64,
    /// Effective bandwidth of the single Spawn metadata load.
    pub spawn_metadata_rate: f64,
    /// DRAM bytes per CPU socket (the paper's measured 3344 MB).
    pub cpu_bytes_per_socket: Bytes,
}

impl Default for GpTune {
    fn default() -> Self {
        GpTune {
            samples: 40,
            python_per_iter: Seconds::secs(5.225),
            bash_per_iter: Seconds::secs(7.375),
            app_per_iter: Seconds::secs(0.35),
            model_per_iter: Seconds::secs(0.125),
            rci_metadata: Bytes::mb(45.0),
            spawn_metadata: Bytes::mb(40.0),
            rci_metadata_rate: 1.5e6,
            spawn_metadata_rate: 2e9,
            cpu_bytes_per_socket: Bytes::mb(3344.0),
        }
    }
}

impl GpTune {
    /// Expected end-to-end time of a mode (analytical; the simulator
    /// reproduces it).
    pub fn expected_makespan(&self, mode: Mode) -> Seconds {
        let n = self.samples as f64;
        let core = (self.app_per_iter + self.model_per_iter) * n;
        match mode {
            Mode::Rci => {
                let io = Seconds(self.rci_metadata.get() / self.rci_metadata_rate);
                core + (self.python_per_iter + self.bash_per_iter) * n + io
            }
            Mode::Spawn => {
                let io = Seconds(self.spawn_metadata.get() / self.spawn_metadata_rate);
                core + self.python_per_iter * n + io
            }
            Mode::Projected => core,
        }
    }

    /// The simulation spec for a mode: a serialized iteration chain.
    pub fn spec(&self, mode: Mode) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new(format!("GPTune-{}", mode.name()));
        let mut prev: Option<String> = None;
        for i in 0..self.samples {
            let name = format!("iter[{i}]");
            let mut t = TaskSpec::new(name.clone(), 1);
            match mode {
                Mode::Rci => {
                    t = t
                        .phase(Phase::overhead("bash", self.bash_per_iter.get()))
                        .phase(Phase::overhead("python", self.python_per_iter.get()))
                        .phase(Phase::SystemData {
                            resource: ids::FILE_SYSTEM.into(),
                            bytes: self.rci_metadata.get() / self.samples as f64,
                            stream_cap: Some(self.rci_metadata_rate),
                        });
                }
                Mode::Spawn => {
                    t = t.phase(Phase::overhead("python", self.python_per_iter.get()));
                    if i == 0 {
                        t = t.phase(Phase::SystemData {
                            resource: ids::FILE_SYSTEM.into(),
                            bytes: self.spawn_metadata.get(),
                            stream_cap: Some(self.spawn_metadata_rate),
                        });
                    }
                }
                Mode::Projected => {}
            }
            t = t
                .phase(Phase::overhead("application", self.app_per_iter.get()))
                .phase(Phase::overhead("model_search", self.model_per_iter.get()));
            if let Some(p) = prev {
                t = t.after(p);
            }
            prev = Some(name);
            wf = wf.task(t);
        }
        wf
    }

    /// Ready-to-run scenario on PM-CPU.
    pub fn scenario(&self, mode: Mode) -> Scenario {
        Scenario::new(wrm_core::machines::perlmutter_cpu(), self.spec(mode))
    }

    /// The characterization of a mode (Fig. 10a): one serialized task,
    /// per-node DRAM volume of 2 sockets x 3344 MB, and the mode's
    /// metadata volume through the file system.
    pub fn characterization(
        &self,
        mode: Mode,
        makespan: Option<Seconds>,
    ) -> WorkflowCharacterization {
        let meta = match mode {
            Mode::Rci => self.rci_metadata,
            Mode::Spawn | Mode::Projected => self.spawn_metadata,
        };
        let mut b = WorkflowCharacterization::builder(format!("GPTune-{}", mode.name()))
            .total_tasks(1.0)
            .parallel_tasks(1.0)
            .nodes_per_task(1)
            .node_volume(ids::DRAM, Work::Bytes(self.cpu_bytes_per_socket * 2.0))
            .system_volume(ids::FILE_SYSTEM, meta);
        b = match makespan {
            Some(m) => b.makespan(m),
            None => b.makespan(self.expected_makespan(mode)),
        };
        b.build().expect("GPTune characterization is valid")
    }

    /// The Fig. 10b time breakdown of a mode (analytical).
    pub fn breakdown(&self, mode: Mode) -> TimeBreakdown {
        let n = self.samples as f64;
        let mut cats: Vec<(String, f64)> = Vec::new();
        if mode == Mode::Rci {
            cats.push(("bash".into(), self.bash_per_iter.get() * n));
        }
        if mode != Mode::Projected {
            cats.push(("python".into(), self.python_per_iter.get() * n));
        }
        let io = match mode {
            Mode::Rci => self.rci_metadata.get() / self.rci_metadata_rate,
            Mode::Spawn => self.spawn_metadata.get() / self.spawn_metadata_rate,
            Mode::Projected => 0.0,
        };
        cats.push(("load_data".into(), io));
        cats.push(("application".into(), self.app_per_iter.get() * n));
        cats.push(("model_and_search".into(), self.model_per_iter.get() * n));
        TimeBreakdown {
            label: mode.name().to_owned(),
            categories: cats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{machines, RooflineModel};
    use wrm_sim::simulate;

    #[test]
    fn expected_makespans_match_paper() {
        let g = GpTune::default();
        assert!((g.expected_makespan(Mode::Rci).get() - 553.0).abs() < 1.0);
        assert!((g.expected_makespan(Mode::Spawn).get() - 228.0).abs() < 1.0);
        let speedup = g.expected_makespan(Mode::Rci).get() / g.expected_makespan(Mode::Spawn).get();
        assert!((speedup - 2.4).abs() < 0.05, "RCI->Spawn {speedup}");
        let proj =
            g.expected_makespan(Mode::Spawn).get() / g.expected_makespan(Mode::Projected).get();
        assert!((proj - 12.0).abs() < 0.2, "Spawn->Projected {proj}");
    }

    #[test]
    fn simulation_matches_expectation() {
        let g = GpTune::default();
        for mode in [Mode::Rci, Mode::Spawn, Mode::Projected] {
            let r = simulate(&g.scenario(mode)).unwrap();
            let expected = g.expected_makespan(mode).get();
            assert!(
                (r.makespan - expected).abs() / expected < 0.01,
                "{}: simulated {} expected {expected}",
                mode.name(),
                r.makespan
            );
        }
    }

    #[test]
    fn io_time_differs_400x_but_volumes_do_not() {
        // The paper's point: 45 MB vs 40 MB (nearly identical ceilings)
        // yet 30 s vs 0.02 s of I/O time.
        let g = GpTune::default();
        let rci_io = g.rci_metadata.get() / g.rci_metadata_rate;
        let spawn_io = g.spawn_metadata.get() / g.spawn_metadata_rate;
        assert!((rci_io - 30.0).abs() < 0.1);
        assert!((spawn_io - 0.02).abs() < 0.001);
        let c_rci = g.characterization(Mode::Rci, None);
        let c_spawn = g.characterization(Mode::Spawn, None);
        let v_rci = c_rci.system_volumes[ids::FILE_SYSTEM].get();
        let v_spawn = c_spawn.system_volumes[ids::FILE_SYSTEM].get();
        assert!(v_rci / v_spawn < 1.2);
    }

    #[test]
    fn spawn_dot_is_above_rci_dot() {
        let g = GpTune::default();
        let m = machines::perlmutter_cpu();
        let rci = RooflineModel::build(&m, &g.characterization(Mode::Rci, None)).unwrap();
        let spawn = RooflineModel::build(&m, &g.characterization(Mode::Spawn, None)).unwrap();
        let proj = RooflineModel::build(&m, &g.characterization(Mode::Projected, None)).unwrap();
        let y_rci = rci.dot.as_ref().unwrap().tps.get();
        let y_spawn = spawn.dot.as_ref().unwrap().tps.get();
        let y_proj = proj.dot.as_ref().unwrap().tps.get();
        assert!(y_spawn > y_rci);
        assert!(y_proj > y_spawn);
        assert!((y_spawn / y_rci - 2.4).abs() < 0.05);
        assert!((y_proj / y_spawn - 12.0).abs() < 0.3);
    }

    #[test]
    fn gptune_is_far_below_every_ceiling() {
        // Control-flow bound: the dot reaches <1% of the envelope.
        let g = GpTune::default();
        let model = RooflineModel::build(
            &machines::perlmutter_cpu(),
            &g.characterization(Mode::Rci, None),
        )
        .unwrap();
        assert!(model.efficiency().unwrap() < 0.01);
        // DRAM ceiling time: 6688 MB / 409.6 GB/s = 0.0163 s.
        let dram = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::DRAM)
            .unwrap();
        assert!((dram.time.get() - 0.01633).abs() < 1e-4);
    }

    #[test]
    fn breakdown_totals_match_makespans() {
        let g = GpTune::default();
        for mode in [Mode::Rci, Mode::Spawn, Mode::Projected] {
            let b = g.breakdown(mode);
            assert!(
                (b.total() - g.expected_makespan(mode).get()).abs() < 1e-6,
                "{}",
                mode.name()
            );
        }
        // Bash+python dominate RCI (the paper's ~500 s observation).
        let b = g.breakdown(Mode::Rci);
        assert!(b.get("bash") + b.get("python") > 500.0);
    }

    #[test]
    fn simulated_breakdown_matches_analytical() {
        let g = GpTune::default();
        let r = simulate(&g.scenario(Mode::Rci)).unwrap();
        let sim_b = r.trace.breakdown();
        let ana_b = g.breakdown(Mode::Rci);
        assert!((sim_b.get("bash") - ana_b.get("bash")).abs() < 1e-6);
        assert!((sim_b.get("python") - ana_b.get("python")).abs() < 1e-6);
        assert!((sim_b.get("io:fs") - ana_b.get("load_data")).abs() < 0.01);
    }
}
