//! LCLS: the time-sensitive XFEL data-analysis workflow (paper §IV-C1,
//! Figs. 4–6).
//!
//! Five parallel analysis tasks (A–E), each a large MPI application that
//! loads 1 TB from *external* storage, followed by a merge task (F). The
//! workflow is bound by the system-external bandwidth: on Cori "good
//! days" each stream sustains 1 GB/s (17-minute end-to-end), on "bad
//! days" contention cuts that 5x (85 minutes). Even the good-day ceiling
//! misses the 2020 target of 6 tasks in 10 minutes.

use serde::{Deserialize, Serialize};
use wrm_core::{
    ids, Bytes, Machine, Seconds, TargetSpec, TasksPerSec, Work, WorkflowCharacterization,
};
use wrm_dag::Dag;
use wrm_sim::{Phase, Scenario, SimOptions, TaskSpec, WorkflowSpec};

/// Which external-bandwidth regime to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Day {
    /// 1 GB/s per stream (the paper's average).
    Good,
    /// 0.2 GB/s per stream: 5x contention.
    Bad,
}

impl Day {
    /// The contention factor applied to the external channel.
    pub fn contention_factor(self) -> f64 {
        match self {
            Day::Good => 1.0,
            Day::Bad => 0.2,
        }
    }
}

/// LCLS model inputs (defaults = the artifact appendix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lcls {
    /// Parallel analysis tasks (level 0 of the skeleton).
    pub analysis_tasks: usize,
    /// Bytes loaded from external storage per analysis task.
    pub input_per_task: Bytes,
    /// Good-day per-stream external bandwidth (bytes/s).
    pub stream_rate: f64,
    /// Nodes per analysis task.
    pub nodes_per_task: u64,
    /// DRAM bytes per node per analysis task.
    pub cpu_bytes_per_node: Bytes,
    /// Output bytes per analysis task (merged by task F).
    pub output_per_task: Bytes,
    /// Target makespan.
    pub target_makespan: Seconds,
}

impl Default for Lcls {
    fn default() -> Self {
        Self::year_2020_on_cori()
    }
}

impl Lcls {
    /// The 2020 configuration on Cori: 32-node tasks (1024 ranks), a
    /// 10-minute target.
    pub fn year_2020_on_cori() -> Self {
        Lcls {
            analysis_tasks: 5,
            input_per_task: Bytes::tb(1.0),
            stream_rate: 1e9,
            nodes_per_task: 32,
            cpu_bytes_per_node: Bytes::gb(32.0),
            output_per_task: Bytes::gb(1.0),
            target_makespan: Seconds::secs(600.0),
        }
    }

    /// The 2024 configuration on PM-CPU: 8-node tasks (1024 ranks at 128
    /// ranks/node), a 5-minute target, 25 GB/s DTN external bandwidth
    /// shared by the streams.
    pub fn year_2024_on_pm() -> Self {
        Lcls {
            analysis_tasks: 5,
            input_per_task: Bytes::tb(1.0),
            stream_rate: 5e9, // five streams share the 25 GB/s DTN
            nodes_per_task: 8,
            cpu_bytes_per_node: Bytes::gb(32.0),
            output_per_task: Bytes::gb(1.0),
            target_makespan: Seconds::secs(300.0),
        }
    }

    /// Total tasks including the merge.
    pub fn total_tasks(&self) -> f64 {
        self.analysis_tasks as f64 + 1.0
    }

    /// The target throughput: all tasks inside the target makespan.
    pub fn target_throughput(&self) -> TasksPerSec {
        TasksPerSec(self.total_tasks() / self.target_makespan.get())
    }

    /// Targets as a [`TargetSpec`].
    pub fn targets(&self) -> TargetSpec {
        TargetSpec::new(self.target_makespan, self.target_throughput())
    }

    /// The workflow skeleton of Fig. 4 (durations = good-day estimates).
    pub fn dag(&self) -> Dag {
        let mut d = Dag::new("LCLS");
        let load = self.input_per_task.get() / self.stream_rate;
        let merge = d.add_task("merge", 1, 20.0).expect("merge task is valid");
        for i in 0..self.analysis_tasks {
            let a = d
                .add_task(format!("analyze[{i}]"), self.nodes_per_task, load)
                .expect("analysis task is valid");
            d.add_dep(a, merge).expect("edge is valid");
        }
        d
    }

    /// The simulation spec: per analysis task an external load (capped
    /// per stream), node-local processing, and an output write; the merge
    /// reads the five outputs from the internal storage tier.
    pub fn spec(&self, internal_storage: &str) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("LCLS");
        for i in 0..self.analysis_tasks {
            wf = wf.task(
                TaskSpec::new(format!("analyze[{i}]"), self.nodes_per_task)
                    .phase(Phase::SystemData {
                        resource: ids::EXTERNAL.into(),
                        bytes: self.input_per_task.get(),
                        stream_cap: Some(self.stream_rate),
                    })
                    .phase(Phase::node_data(
                        ids::DRAM,
                        self.cpu_bytes_per_node.get() * self.nodes_per_task as f64,
                    ))
                    .phase(Phase::system_data(
                        internal_storage,
                        self.output_per_task.get(),
                    )),
            );
        }
        let mut merge = TaskSpec::new("merge", 1).phase(Phase::system_data(
            internal_storage,
            self.output_per_task.get() * self.analysis_tasks as f64,
        ));
        for i in 0..self.analysis_tasks {
            merge = merge.after(format!("analyze[{i}]"));
        }
        wf.task(merge)
    }

    /// A ready-to-run scenario on `machine` for the given day. The
    /// internal tier is the burst buffer when the machine defines one,
    /// otherwise the file system.
    pub fn scenario(&self, machine: Machine, day: Day) -> Scenario {
        let internal = if machine.system_resource(ids::BURST_BUFFER).is_some() {
            ids::BURST_BUFFER
        } else {
            ids::FILE_SYSTEM
        };
        let opts = SimOptions::default().with_contention(ids::EXTERNAL, day.contention_factor());
        Scenario::new(machine, self.spec(internal)).with_options(opts)
    }

    /// The analytical characterization (appendix inputs) with an optional
    /// measured makespan. `internal_storage` is `ids::BURST_BUFFER` on
    /// Cori and `ids::FILE_SYSTEM` on Perlmutter.
    pub fn characterization(
        &self,
        internal_storage: &str,
        makespan: Option<Seconds>,
    ) -> WorkflowCharacterization {
        let total_input = self.input_per_task * self.analysis_tasks as f64;
        let mut b = WorkflowCharacterization::builder("LCLS")
            .total_tasks(self.total_tasks())
            .parallel_tasks(self.analysis_tasks as f64)
            .nodes_per_task(self.nodes_per_task)
            .node_volume(ids::DRAM, Work::Bytes(self.cpu_bytes_per_node))
            .system_volume(ids::EXTERNAL, total_input)
            .system_volume(internal_storage, total_input)
            .targets(self.targets());
        if let Some(m) = makespan {
            b = b.makespan(m);
        }
        b.build().expect("LCLS characterization is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{machines, RooflineModel};
    use wrm_sim::simulate;

    #[test]
    fn skeleton_matches_fig4() {
        let d = Lcls::default().dag();
        assert_eq!(d.len(), 6);
        assert_eq!(d.max_width().unwrap(), 5);
        assert_eq!(d.critical_path_length().unwrap(), 2);
    }

    #[test]
    fn good_day_simulates_to_about_17_minutes() {
        let lcls = Lcls::year_2020_on_cori();
        let r = simulate(&lcls.scenario(machines::cori_haswell(), Day::Good)).unwrap();
        // 1 TB at 1 GB/s plus processing/write tails: ~1000-1030 s
        // (the paper reports 17 min = 1020 s).
        assert!(
            (1000.0..1040.0).contains(&r.makespan),
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn bad_day_is_5x_worse() {
        let lcls = Lcls::year_2020_on_cori();
        let good = simulate(&lcls.scenario(machines::cori_haswell(), Day::Good))
            .unwrap()
            .makespan;
        let bad = simulate(&lcls.scenario(machines::cori_haswell(), Day::Bad))
            .unwrap()
            .makespan;
        let ratio = bad / good;
        assert!((ratio - 5.0).abs() < 0.2, "ratio {ratio}");
        // The paper's 85 minutes = 5100 s.
        assert!((bad - 5100.0).abs() < 150.0, "bad {bad}");
    }

    #[test]
    fn roofline_dot_sits_on_external_ceiling() {
        let lcls = Lcls::year_2020_on_cori();
        let wf = lcls.characterization(ids::BURST_BUFFER, Some(Seconds::minutes(17.0)));
        let model = RooflineModel::build(&machines::cori_haswell(), &wf).unwrap();
        let binding = model.binding_ceiling().unwrap();
        assert_eq!(binding.resource.as_str(), ids::EXTERNAL);
        assert!(model.efficiency().unwrap() > 0.95);
        // Wall at 74 tasks: floor(2388/32).
        assert_eq!(model.parallelism_wall, 74);
        // Even at the ceiling the 2020 target is unreachable.
        let target = wf.targets.throughput.unwrap();
        assert!(model.envelope_at(5.0).unwrap().get() < target.get());
    }

    #[test]
    fn pm_wall_is_384_and_ceiling_slightly_above_target() {
        let lcls = Lcls::year_2024_on_pm();
        let wf = lcls.characterization(ids::FILE_SYSTEM, None);
        let model = RooflineModel::build(&machines::perlmutter_cpu(), &wf).unwrap();
        assert_eq!(model.parallelism_wall, 384);
        // External ceiling: 6 tasks / (5 TB / 25 GB/s) = 0.03, slightly
        // above the 2024 target of 6/300 = 0.02 (Fig. 6).
        let ext = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::EXTERNAL)
            .unwrap();
        assert!((ext.tps_at_one.get() - 0.03).abs() < 1e-9);
        let target = wf.targets.throughput.unwrap().get();
        assert!(ext.tps_at_one.get() > target && ext.tps_at_one.get() < 2.0 * target);
    }

    #[test]
    fn targets_match_appendix() {
        let l2020 = Lcls::year_2020_on_cori();
        assert!((l2020.target_throughput().get() - 0.01).abs() < 1e-12);
        let l2024 = Lcls::year_2024_on_pm();
        assert!((l2024.target_throughput().get() - 0.02).abs() < 1e-12);
    }
}
