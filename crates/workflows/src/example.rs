//! The illustrative workflow of the paper's Fig. 1: a synthetic 64-node
//! task on PM-GPU with one ceiling of every kind, used to draw the model
//! itself (artifact script `example.py`).

use wrm_core::{ids, Bytes, Flops, Work, WorkflowCharacterization};

/// The Fig. 1 inputs: 1 TB loaded via the file system at 5.6 TB/s, 1 TB
/// per node via the NICs at 100 GB/s, 4 GB over PCIe, 100 GFLOPs of
/// compute, 64 nodes per task (parallelism wall at 28).
pub fn fig1_characterization() -> WorkflowCharacterization {
    WorkflowCharacterization::builder("example")
        .total_tasks(1.0)
        .parallel_tasks(1.0)
        .nodes_per_task(64)
        .node_volume(ids::PCIE, Work::Bytes(Bytes::gb(4.0)))
        .node_volume(ids::COMPUTE, Work::Flops(Flops::gflops(100.0)))
        .system_volume(ids::FILE_SYSTEM, Bytes::tb(1.0))
        .system_volume(ids::NETWORK, Bytes::tb(1.0) * 64.0)
        .build()
        .expect("fig1 example is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{machines, CeilingKind, RooflineModel};

    #[test]
    fn fig1_model_shape() {
        let model =
            RooflineModel::build(&machines::perlmutter_gpu(), &fig1_characterization()).unwrap();
        assert_eq!(model.parallelism_wall, 28);
        assert!(model.dot.is_none()); // no measured makespan in Fig. 1

        // File system ceiling: 1 TB @ 5.6 TB/s.
        let fs = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::FILE_SYSTEM)
            .unwrap();
        assert!((fs.time.get() - 1.0 / 5.6).abs() < 1e-9);

        // Network: 1 TB/node over the allocation's 100 GB/s/node = 10 s.
        let net = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::NETWORK)
            .unwrap();
        assert!((net.time.get() - 10.0).abs() < 1e-9);
        assert_eq!(net.kind, CeilingKind::System);
        // The network ceiling sits below the file-system ceiling, as in
        // the figure (lower horizontal).
        assert!(net.tps_at_one.get() < fs.tps_at_one.get());

        // PCIe: 4 GB @ 100 GB/s = 0.04 s; compute: 100 GFLOPs @ 38.8
        // TFLOPS = ~2.58 ms.
        let pcie = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::PCIE)
            .unwrap();
        assert!((pcie.time.get() - 0.04).abs() < 1e-12);
        let comp = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        assert!((comp.time.get() - 100.0 / 38800.0).abs() < 1e-9);
        assert_eq!(model.ceilings.len(), 4);
    }
}
