//! In-process server tests: spawn on a free port, drive real sockets
//! through [`wrm_serve::client`], and check endpoint behavior, response
//! stability across cache states and concurrent clients, LRU eviction,
//! and graceful shutdown.

use wrm_serve::client::{self, Client};
use wrm_serve::{spawn, ServerConfig, ServerHandle};

const LCLS_WRM: &str = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;

fn server(cache_capacity: usize) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity,
        quiet: true,
    })
    .expect("server spawns")
}

/// JSON body with the `.wrm` source under `workflow` plus extra
/// pre-encoded fields (e.g. `,"format":"csv"`).
fn source_body(source: &str, extra: &str) -> String {
    let escaped = serde_json::Value::String(source.to_owned()).to_string();
    format!("{{\"workflow\":{escaped}{extra}}}")
}

#[test]
fn healthz_metrics_and_routing() {
    let server = server(4);
    let addr = server.addr().to_string();

    let r = client::request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!((r.status, r.text().as_str()), (200, "ok\n"));

    let r = client::request(&addr, "GET", "/nope", None).expect("404");
    assert_eq!(r.status, 404);
    let r = client::request(&addr, "GET", "/v1/sweep", None).expect("405");
    assert_eq!(r.status, 405);
    assert!(r.text().contains("use POST"), "{}", r.text());

    let r = client::request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(r.status, 200);
    let text = r.text();
    assert!(
        text.contains("wrm_requests_total{endpoint=\"healthz\"} 1"),
        "{text}"
    );
    assert!(text.contains("wrm_cache_entries 0"), "{text}");

    let report = server.shutdown();
    assert_eq!(report.abandoned, 0);
    assert!(report.served >= 4, "served {}", report.served);
}

#[test]
fn sweep_is_byte_stable_across_cache_states_and_clients() {
    let server = server(4);
    let addr = server.addr().to_string();
    let body = source_body(
        LCLS_WRM,
        ",\"resource\":\"ext\",\"factors\":[1.0,0.5],\
         \"policies\":[\"backfill\",\"fifo\"],\"format\":\"csv\"",
    );

    // Cold cache, then warm cache, on one keep-alive connection.
    let mut conn = Client::connect(&addr).expect("connect");
    let cold = conn
        .request("POST", "/v1/sweep", Some(&body))
        .expect("cold");
    let warm = conn
        .request("POST", "/v1/sweep", Some(&body))
        .expect("warm");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.body, warm.body, "cache hit changed the bytes");
    let text = cold.text();
    assert!(
        text.starts_with("workflow,machine,resource,factor,node_limit,policy"),
        "{text}"
    );
    // 2 factors x 2 policies, canonical order: fifo before backfill,
    // factors ascending.
    assert_eq!(text.lines().count(), 5, "{text}");
    let rows: Vec<&str> = text.lines().skip(1).collect();
    assert!(rows[0].contains(",0.5,,fifo,"), "{text}");
    assert!(rows[1].contains(",0.5,,backfill,"), "{text}");
    assert!(rows[2].contains(",1,,fifo,"), "{text}");

    // Four concurrent clients see the same bytes.
    let answers: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    client::request(&addr, "POST", "/v1/sweep", Some(&body))
                        .expect("concurrent sweep")
                        .body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for answer in &answers {
        assert_eq!(answer, &cold.body, "concurrent client diverged");
    }

    // json and jsonl agree on content.
    let json_body = source_body(LCLS_WRM, ",\"format\":\"json\"");
    let r = client::request(&addr, "POST", "/v1/sweep", Some(&json_body)).expect("json");
    assert_eq!(r.status, 200);
    assert!(r.text().trim_start().starts_with('['), "{}", r.text());
    let jsonl_body = source_body(LCLS_WRM, ",\"format\":\"jsonl\"");
    let r = client::request(&addr, "POST", "/v1/sweep", Some(&jsonl_body)).expect("jsonl");
    assert_eq!(r.status, 200);
    assert!(r.text().trim_start().starts_with('{'), "{}", r.text());

    server.shutdown();
}

#[test]
fn simulate_certify_and_lint_endpoints() {
    let server = server(4);
    let addr = server.addr().to_string();

    let r = client::request(
        &addr,
        "POST",
        "/v1/simulate",
        Some(&source_body(LCLS_WRM, "")),
    )
    .expect("simulate");
    assert_eq!(r.status, 200, "{}", r.text());
    let text = r.text();
    assert!(text.contains("makespan"), "{text}");
    assert!(text.contains("time breakdown:"), "{text}");

    let r = client::request(
        &addr,
        "POST",
        "/v1/simulate",
        Some(&source_body(LCLS_WRM, ",\"summary\":true")),
    )
    .expect("summary");
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("critical-path tail"), "{}", r.text());

    let r = client::request(
        &addr,
        "POST",
        "/v1/certify",
        Some(&source_body(LCLS_WRM, "")),
    )
    .expect("certify");
    assert_eq!(r.status, 200, "{}", r.text());
    let cert: serde_json::Value = serde_json::from_str(&r.text()).expect("cert json");
    assert!(
        cert.get("lo").is_some() && cert.get("hi").is_some(),
        "{cert:?}"
    );

    let r = client::request(
        &addr,
        "POST",
        "/v1/lint",
        Some(&source_body(LCLS_WRM, ",\"path\":\"lcls.wrm\"")),
    )
    .expect("lint");
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("lcls.wrm:"), "{}", r.text());

    // Builtins are sweep/certify-only: simulate needs a source DAG.
    let r = client::request(
        &addr,
        "POST",
        "/v1/simulate",
        Some("{\"workflow\":\"bgw\"}"),
    )
    .expect("builtin simulate");
    assert_eq!(r.status, 400);
    assert!(r.text().contains("sweep-only"), "{}", r.text());

    // Malformed request bodies are 400, not a dead connection.
    let r = client::request(&addr, "POST", "/v1/simulate", Some("not json")).expect("bad body");
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "POST", "/v1/simulate", Some("{}")).expect("no workflow");
    assert_eq!(r.status, 400);
    assert!(r.text().contains("workflow"), "{}", r.text());

    server.shutdown();
}

#[test]
fn mc_endpoint_is_byte_stable_and_validates_reps() {
    let mc_wrm = r#"
workflow lcls-mc on cori-hsw {
  task analyze[5] {
    nodes 32
    system_bytes ext uniform(0.8TB, 1.2TB) cap 1GB/s
    node_bytes dram lognormal(1024GB, 0.25)
    overhead setup triangular(3s, 5s, 10s)
  }
  task merge { nodes 1 system_bytes bb empirical(4GB 1, 5GB 2, 8GB 1) after analyze }
}
"#;
    let server = server(4);
    let addr = server.addr().to_string();

    // Cold cache, warm cache, then a different worker count: all three
    // must return the same bytes (fan-out order never leaks).
    let one = source_body(mc_wrm, ",\"reps\":32,\"seed\":7,\"threads\":1");
    let mut conn = Client::connect(&addr).expect("connect");
    let cold = conn.request("POST", "/v1/mc", Some(&one)).expect("cold");
    assert_eq!(cold.status, 200, "{}", cold.text());
    let text = cold.text();
    assert!(
        text.contains("32 Monte-Carlo replication(s) (seed 7)"),
        "{text}"
    );
    assert!(text.contains("percentiles"), "{text}");
    assert!(text.contains("certified bracket"), "{text}");
    let warm = conn.request("POST", "/v1/mc", Some(&one)).expect("warm");
    assert_eq!(cold.body, warm.body, "cache hit changed the bytes");
    let two = source_body(mc_wrm, ",\"reps\":32,\"seed\":7,\"threads\":2");
    let r = conn
        .request("POST", "/v1/mc", Some(&two))
        .expect("threads 2");
    assert_eq!(cold.body, r.body, "thread count changed the bytes");

    // A different seed must actually change the answer.
    let reseeded = source_body(mc_wrm, ",\"reps\":32,\"seed\":8,\"threads\":1");
    let r = conn
        .request("POST", "/v1/mc", Some(&reseeded))
        .expect("seed 8");
    assert_ne!(cold.body, r.body, "seed had no effect");

    // percentiles:false drops the table but keeps the header lines.
    let terse = source_body(mc_wrm, ",\"reps\":32,\"seed\":7,\"percentiles\":false");
    let r = conn.request("POST", "/v1/mc", Some(&terse)).expect("terse");
    assert_eq!(r.status, 200);
    assert!(!r.text().contains("percentiles"), "{}", r.text());

    // Replication count is validated, and GET is routed as 405.
    let r = conn
        .request("POST", "/v1/mc", Some(&source_body(mc_wrm, ",\"reps\":0")))
        .expect("reps 0");
    assert_eq!(r.status, 400);
    assert!(r.text().contains("1..=100000"), "{}", r.text());
    let r = conn
        .request(
            "POST",
            "/v1/mc",
            Some(&source_body(mc_wrm, ",\"reps\":100001")),
        )
        .expect("reps too large");
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "GET", "/v1/mc", None).expect("405");
    assert_eq!(r.status, 405);

    server.shutdown();
}

#[test]
fn lru_eviction_recompiles_evicted_specs() {
    // Capacity 1: every distinct workflow evicts the previous one.
    let server = server(1);
    let addr = server.addr().to_string();

    let sweep = |name: &str| {
        let body = format!("{{\"workflow\":\"{name}\",\"format\":\"csv\"}}");
        client::request(&addr, "POST", "/v1/sweep", Some(&body)).expect("sweep")
    };
    let first = sweep("bgw");
    assert_eq!(first.status, 200);
    assert_eq!(sweep("gptune-rci").status, 200);
    assert_eq!(sweep("gptune-spawn").status, 200);

    // The first spec was evicted; it must still answer (recompile), and
    // with the same bytes.
    let again = sweep("bgw");
    assert_eq!(again.status, 200);
    assert_eq!(again.body, first.body, "recompiled answer diverged");

    let r = client::request(&addr, "GET", "/metrics/json", None).expect("metrics");
    let snap: serde_json::Value = serde_json::from_str(&r.text()).expect("snapshot json");
    let cache = snap.get("cache").expect("cache section");
    let evictions = cache.get("evictions").and_then(serde_json::Value::as_u64);
    let entries = cache.get("entries").and_then(serde_json::Value::as_u64);
    assert!(evictions >= Some(3), "evictions {evictions:?}");
    assert_eq!(entries, Some(1), "capacity-1 cache holds one entry");

    server.shutdown();
}

#[test]
fn chunked_request_bodies_get_501_and_a_closed_connection() {
    use std::io::{Read, Write};

    let server = server(2);
    let addr = server.addr();

    // A chunked body is never parsed, so the server must refuse it and
    // close — otherwise the framing bytes would desync the next
    // pipelined request on the connection.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"POST /v1/lint HTTP/1.1\r\nHost: wrm\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n\
              GET /healthz HTTP/1.1\r\n\r\n",
        )
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read until close");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 501 "), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
    assert!(
        !text.contains("ok\n"),
        "pipelined request after chunked framing must not be served: {text}"
    );

    server.shutdown();
}

#[test]
fn idle_read_timeout_closes_silently_without_a_400() {
    use std::io::Read;

    let server = server(2);
    let addr = server.addr();

    // An idle keep-alive connection should be dropped by the read
    // timeout with no unsolicited response bytes (a 400 here would mean
    // the timeout was misclassified as a malformed request).
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read until close");
    assert!(
        raw.is_empty(),
        "idle connection got unsolicited bytes: {}",
        String::from_utf8_lossy(&raw)
    );

    server.shutdown();
}

#[test]
fn admin_shutdown_drains_the_server() {
    let server = server(2);
    let addr = server.addr().to_string();
    let r = client::request(&addr, "POST", "/admin/shutdown", None).expect("shutdown");
    assert_eq!((r.status, r.text().as_str()), (200, "shutting down\n"));

    // The accept loop observes the flag within its poll interval; new
    // connections are then refused or dropped.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match client::request(&addr, "GET", "/healthz", None) {
            Err(_) => break,
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("server still accepting after shutdown")
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    }
    let report = server.shutdown();
    assert_eq!(report.abandoned, 0, "connections drained");
}
