//! Model-check suites 2–4: the serve concurrency substrate.
//!
//! Exhaustively explores (under `RUSTFLAGS="--cfg wrm_mc"`):
//!
//! * **pool** — `WorkerPool::shutdown` always drains queued jobs and
//!   joins every worker, in every interleaving;
//! * **LRU** — `IndexCache` builds a key at most once per residency
//!   (plus the documented benign duplicate on a same-key race), never
//!   serves the wrong value, and keeps eviction invariants;
//! * **ActiveGuard** — the in-flight connection count stays exact even
//!   when a connection thread panics.
#![cfg(wrm_mc)]

use std::sync::Arc;
use wrm_mc::sync::atomic::{AtomicUsize, Ordering};
use wrm_mc::{model, thread};
use wrm_serve::cache::IndexCache;
use wrm_serve::pool::WorkerPool;
use wrm_serve::ActiveGuard;

/// Suite 2: every submitted job runs before `shutdown` returns, and the
/// pool rejects work afterwards — across all interleavings of workers
/// racing the queue and the disconnect.
#[test]
fn pool_shutdown_drains_and_joins() {
    model(|| {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2);
        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            assert!(pool.submit(Box::new(move |_arena| {
                ran.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        assert_eq!(
            ran.load(Ordering::SeqCst),
            2,
            "shutdown must drain the queue"
        );
        assert!(
            !pool.submit(Box::new(|_| {})),
            "pool rejects after shutdown"
        );
    });
}

/// Suite 3a: two threads racing `get_or_build` on the SAME key. The
/// benign race may build twice (documented), but never more, and both
/// callers must see the correct value.
#[test]
fn lru_same_key_builds_at_most_twice_and_serves_right_value() {
    model(|| {
        let cache = Arc::new(IndexCache::<u64>::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                thread::spawn(move || {
                    let (v, _hit) = cache
                        .get_or_build(1, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            Ok(7)
                        })
                        .unwrap();
                    assert_eq!(*v, 7);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = builds.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&n),
            "same-key race builds once or twice, built {n}"
        );
        assert_eq!(cache.get(1).as_deref(), Some(&7));
    });
}

/// Suite 3b: a resident entry is never rebuilt — concurrent readers of
/// a warm key take the hit path in every interleaving.
#[test]
fn lru_resident_entry_is_never_rebuilt() {
    model(|| {
        let cache = Arc::new(IndexCache::<u64>::new(4));
        cache.insert(1, Arc::new(7));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let (v, hit) = cache
                        .get_or_build(1, || panic!("resident entry must not rebuild"))
                        .unwrap();
                    assert!(hit);
                    assert_eq!(*v, 7);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Suite 3c: capacity-1 cache under two distinct keys — whatever the
/// interleaving, each caller gets its own key's value (an evicted entry
/// is rebuilt, never served as another key's value), and at most one
/// entry survives.
#[test]
fn lru_eviction_never_serves_wrong_value() {
    model(|| {
        let cache = Arc::new(IndexCache::<u64>::new(1));
        let handles: Vec<_> = [(1u64, 10u64), (2, 20)]
            .into_iter()
            .map(|(k, want)| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let (v, _hit) = cache.get_or_build(k, || Ok(want)).unwrap();
                    assert_eq!(*v, want, "key {k} must never see another key's value");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 1, "capacity-1 cache holds at most one entry");
        // Whichever key survived must still map to its own value.
        for (k, want) in [(1u64, 10u64), (2, 20)] {
            if let Some(v) = cache.get(k) {
                assert_eq!(*v, want);
            }
        }
    });
}

/// Suite 4: the in-flight count is exact across panicking connection
/// threads — every interleaving of a clean and a panicking guard-holder
/// ends with the count at zero.
#[test]
fn active_guard_count_exact_across_panics() {
    // The panicking thread is intentional in every explored schedule;
    // keep the default panic hook quiet for just that payload.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let simulated = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| *m == "simulated connection panic");
        if !simulated {
            prev(info);
        }
    }));

    model(|| {
        let active = Arc::new(AtomicUsize::new(0));
        let clean = {
            let active = Arc::clone(&active);
            thread::spawn(move || {
                let _guard = ActiveGuard::new(active);
            })
        };
        let panicky = {
            let active = Arc::clone(&active);
            thread::spawn(move || {
                let _guard = ActiveGuard::new(active);
                panic!("simulated connection panic");
            })
        };
        clean.join().unwrap();
        assert!(panicky.join().is_err(), "the panic must reach the joiner");
        assert_eq!(
            active.load(Ordering::SeqCst),
            0,
            "in-flight count must return to zero even across panics"
        );
    });

    let _ = std::panic::take_hook();
}
