//! A minimal blocking HTTP client for the load generator, the e2e
//! tests, and CI smoke checks — std-only, keep-alive capable, and
//! chunked-transfer aware (it must reassemble streamed sweep responses
//! byte-exactly to compare them against CLI output).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A decoded response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The de-chunked (or content-length) body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Issues one request on the persistent connection and decodes the
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        let stream = self.reader.get_mut();
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: wrm\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| format!("write request: {e}"))?;
        stream.flush().map_err(|e| e.to_string())?;
        read_response(&mut self.reader)
    }
}

/// One-shot request on a fresh connection.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    Client::connect(addr)?.request(method, path, body)
}

fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
        }
    }

    let body = if chunked {
        read_chunked(reader)?
    } else {
        let n = content_length.unwrap_or(0);
        let mut body = vec![0u8; n];
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        body
    };
    Ok(Response { status, body })
}

fn read_chunked<R: BufRead>(reader: &mut R) -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        reader
            .read_line(&mut size_line)
            .map_err(|e| format!("read chunk size: {e}"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            // Trailing CRLF after the last-chunk marker.
            let mut end = String::new();
            let _ = reader.read_line(&mut end);
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| format!("read chunk: {e}"))?;
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|e| format!("read chunk terminator: {e}"))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn decodes_content_length_and_chunked_bodies() {
        let plain = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc";
        let r = read_response(&mut BufReader::new(&plain[..])).unwrap();
        assert_eq!((r.status, r.body.as_slice()), (200, &b"abc"[..]));

        let chunked =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nrow\n\r\n5\r\nrows\n\r\n0\r\n\r\n";
        let r = read_response(&mut BufReader::new(&chunked[..])).unwrap();
        assert_eq!(r.text(), "row\nrows\n");

        let bad = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(read_response(&mut BufReader::new(&bad[..])).is_err());
    }
}
