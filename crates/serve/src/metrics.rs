//! Request instrumentation: latency/path counters for every endpoint.
//!
//! Each request records its endpoint, wall-clock latency, and outcome;
//! sweeps also fold in the incremental engine's evaluation-path mix
//! ([`wrm_sim::SweepStats`]). Snapshots render as Prometheus text
//! (`GET /metrics`) or JSON (`GET /metrics/json` — the shape
//! `BENCH_serve.json` embeds). Latencies go into a per-endpoint
//! reservoir capped at [`RESERVOIR_CAP`] samples; p50/p99 are
//! nearest-rank over whatever the reservoir holds.

use crate::cache::IndexCache;
use wrm_mc::sync::atomic::{AtomicU64, Ordering};
use wrm_mc::sync::{Mutex, PoisonError};
use wrm_sim::SweepStats;

/// Max latency samples kept per endpoint; recording stops beyond this
/// (counts keep incrementing), bounding resident memory on long runs.
pub const RESERVOIR_CAP: usize = 100_000;

#[derive(Default)]
struct EndpointStats {
    count: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// Server-wide request counters. Cache counters live on the
/// [`IndexCache`] itself and are joined in at render time.
pub struct Metrics {
    endpoints: Mutex<Vec<(String, EndpointStats)>>,
    fastpath: AtomicU64,
    replayed: AtomicU64,
    cold: AtomicU64,
    reused: AtomicU64,
    sweep_errors: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            endpoints: Mutex::new(Vec::new()),
            fastpath: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            sweep_errors: AtomicU64::new(0),
        }
    }

    /// Records one request against `endpoint`.
    pub fn record(&self, endpoint: &str, latency_us: u64, ok: bool) {
        let mut endpoints = self
            .endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let stats = match endpoints.iter_mut().find(|(name, _)| name == endpoint) {
            Some((_, stats)) => stats,
            None => {
                endpoints.push((endpoint.to_owned(), EndpointStats::default()));
                &mut endpoints.last_mut().expect("just pushed").1
            }
        };
        stats.count += 1;
        if !ok {
            stats.errors += 1;
        }
        if stats.latencies_us.len() < RESERVOIR_CAP {
            stats.latencies_us.push(latency_us);
        }
    }

    /// Folds a sweep's evaluation-path statistics into the totals.
    pub fn absorb_sweep(&self, stats: &SweepStats) {
        self.fastpath
            .fetch_add(stats.fastpath as u64, Ordering::Relaxed);
        self.replayed
            .fetch_add(stats.replayed as u64, Ordering::Relaxed);
        self.cold.fetch_add(stats.cold as u64, Ordering::Relaxed);
        self.reused
            .fetch_add(stats.reused as u64, Ordering::Relaxed);
        self.sweep_errors
            .fetch_add(stats.errors as u64, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition (`GET /metrics`).
    #[must_use]
    pub fn prometheus<V>(&self, cache: &IndexCache<V>) -> String {
        let mut out = String::new();
        {
            let mut endpoints = self
                .endpoints
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (name, stats) in endpoints.iter_mut() {
                out.push_str(&format!(
                    "wrm_requests_total{{endpoint=\"{name}\"}} {}\n",
                    stats.count
                ));
                out.push_str(&format!(
                    "wrm_request_errors_total{{endpoint=\"{name}\"}} {}\n",
                    stats.errors
                ));
                stats.latencies_us.sort_unstable();
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "wrm_request_latency_us{{endpoint=\"{name}\",quantile=\"{label}\"}} {}\n",
                        percentile(&stats.latencies_us, q)
                    ));
                }
            }
        }
        out.push_str(&format!("wrm_cache_hits_total {}\n", cache.hits()));
        out.push_str(&format!("wrm_cache_misses_total {}\n", cache.misses()));
        out.push_str(&format!(
            "wrm_cache_evictions_total {}\n",
            cache.evictions()
        ));
        out.push_str(&format!("wrm_cache_entries {}\n", cache.len()));
        for (path, counter) in [
            ("fastpath", &self.fastpath),
            ("replayed", &self.replayed),
            ("cold", &self.cold),
            ("reused", &self.reused),
            ("error", &self.sweep_errors),
        ] {
            out.push_str(&format!(
                "wrm_sweep_points_total{{path=\"{path}\"}} {}\n",
                counter.load(Ordering::Relaxed)
            ));
        }
        out
    }

    /// Renders the JSON snapshot (`GET /metrics/json`): per-endpoint
    /// p50/p99/mean latency, cache hit rate, sweep path mix.
    #[must_use]
    pub fn snapshot<V>(&self, cache: &IndexCache<V>) -> serde_json::Value {
        let mut endpoint_rows = Vec::new();
        {
            let mut endpoints = self
                .endpoints
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (name, stats) in endpoints.iter_mut() {
                stats.latencies_us.sort_unstable();
                let mean = if stats.latencies_us.is_empty() {
                    0.0
                } else {
                    stats.latencies_us.iter().sum::<u64>() as f64 / stats.latencies_us.len() as f64
                };
                endpoint_rows.push((
                    name.clone(),
                    serde_json::json!({
                        "count": stats.count,
                        "errors": stats.errors,
                        "p50_us": percentile(&stats.latencies_us, 0.5),
                        "p99_us": percentile(&stats.latencies_us, 0.99),
                        "mean_us": mean,
                    }),
                ));
            }
        }
        let (hits, misses) = (cache.hits(), cache.misses());
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        serde_json::json!({
            "endpoints": serde_json::Value::Object(endpoint_rows),
            "cache": serde_json::json!({
                "hits": hits,
                "misses": misses,
                "evictions": cache.evictions(),
                "entries": cache.len() as u64,
                "hit_rate": hit_rate,
            }),
            "sweep_paths": serde_json::json!({
                "fastpath": self.fastpath.load(Ordering::Relaxed),
                "replayed": self.replayed.load(Ordering::Relaxed),
                "cold": self.cold.load(Ordering::Relaxed),
                "reused": self.reused.load(Ordering::Relaxed),
                "errors": self.sweep_errors.load(Ordering::Relaxed),
            }),
        })
    }
}

/// Nearest-rank percentile over a sorted sample (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.5), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn snapshot_reports_counts_and_paths() {
        let metrics = Metrics::new();
        let cache = IndexCache::<u64>::new(4);
        metrics.record("sweep", 100, true);
        metrics.record("sweep", 300, true);
        metrics.record("simulate", 50, false);
        metrics.absorb_sweep(&SweepStats {
            fastpath: 3,
            replayed: 2,
            cold: 1,
            reused: 4,
            errors: 0,
        });
        let snap = metrics.snapshot(&cache);
        let sweep = snap.get("endpoints").and_then(|e| e.get("sweep")).unwrap();
        assert_eq!(
            sweep.get("count").and_then(serde_json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            sweep.get("p99_us").and_then(serde_json::Value::as_u64),
            Some(300)
        );
        let sim = snap
            .get("endpoints")
            .and_then(|e| e.get("simulate"))
            .unwrap();
        assert_eq!(
            sim.get("errors").and_then(serde_json::Value::as_u64),
            Some(1)
        );
        let paths = snap.get("sweep_paths").unwrap();
        assert_eq!(
            paths.get("reused").and_then(serde_json::Value::as_u64),
            Some(4)
        );
        let text = metrics.prometheus(&cache);
        assert!(text.contains("wrm_requests_total{endpoint=\"sweep\"} 2"));
        assert!(text.contains("wrm_sweep_points_total{path=\"fastpath\"} 3"));
    }
}
