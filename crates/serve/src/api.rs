//! Request dispatch: JSON bodies in, CLI-identical bytes out.
//!
//! Every analysis endpoint resolves its workflow through the LRU index
//! cache, runs simulation work on the shared worker pool, and renders
//! through [`crate::render`] — the same functions the CLI prints with,
//! so a 200 body is byte-identical to the corresponding `wrm`
//! invocation's stdout. Sweeps stream: `csv` and `jsonl` responses go
//! out as chunked transfer, each canonical-order row group flushed the
//! moment its column's results arrive from the pool.

use crate::cache::{cache_key, IndexCache, ServeEntry};
use crate::http::{write_response, ChunkedWriter, Request};
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::render;
use crate::resolve::resolve_request;
use std::io::Write;
use std::sync::{mpsc, Arc};
use std::time::Instant;
use wrm_mc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use wrm_sim::{SimOptions, SweepStats};

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";
const CSV: &str = "text/csv; charset=utf-8";
const JSONL: &str = "application/x-ndjson";

/// Everything the request handlers share.
pub struct AppState {
    /// Compiled-index LRU.
    pub cache: IndexCache,
    /// The fixed simulation worker pool.
    pub pool: WorkerPool,
    /// Request counters.
    pub metrics: Metrics,
    /// Graceful-shutdown flag (set by signal or `POST /admin/shutdown`).
    pub shutdown: Arc<AtomicBool>,
    /// Total requests served (for the drain report).
    pub served: AtomicU64,
}

/// Handles one parsed request, writing the response to `out`. Returns
/// whether the connection should stay open.
pub fn respond<W: Write>(state: &AppState, req: &Request, out: &mut W) -> std::io::Result<bool> {
    let keep = !req.wants_close() && !state.shutdown.load(Ordering::SeqCst);
    let start = Instant::now();
    // Ordering policy (docs/CONCURRENCY.md): `served` is a metrics
    // counter, so Relaxed on both ends; `shutdown` gates control flow,
    // so SeqCst everywhere.
    state.served.fetch_add(1, Ordering::Relaxed);

    // Transfer-encoded (e.g. chunked) request bodies are not parsed, so
    // their framing bytes would still be sitting in the connection's
    // buffer and desync the next pipelined request. Reject and close.
    if let Some(encoding) = req.header("transfer-encoding") {
        let body = format!("transfer-encoding `{encoding}` request bodies are not supported; send a Content-Length body\n");
        state.metrics.record("other", elapsed_us(start), false);
        write_response(out, 501, TEXT, body.as_bytes(), false)?;
        return Ok(false);
    }

    let (label, outcome) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", Reply::ok(TEXT, "ok\n".into())),
        ("GET", "/metrics") => (
            "metrics",
            Reply::ok(TEXT, state.metrics.prometheus(&state.cache)),
        ),
        ("GET", "/metrics/json") => {
            let mut body = state.metrics.snapshot(&state.cache).to_string_pretty();
            body.push('\n');
            ("metrics", Reply::ok(JSON, body))
        }
        ("POST", "/admin/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            ("shutdown", Reply::ok(TEXT, "shutting down\n".into()))
        }
        ("POST", "/v1/simulate") => ("simulate", simulate(state, req)),
        ("POST", "/v1/mc") => ("mc", mc(state, req)),
        ("POST", "/v1/certify") => ("certify", certify(state, req)),
        ("POST", "/v1/lint") => ("lint", lint(req)),
        ("POST", "/v1/sweep") => {
            // Streams its own response; handled outside Reply.
            let r = sweep(state, req, out, keep);
            let (ok, keep) = match r {
                Ok(k) => (true, k),
                Err(SweepAbort::Setup(status, msg)) => {
                    let body = format!("{msg}\n");
                    write_response(out, status, TEXT, body.as_bytes(), keep)?;
                    (false, keep)
                }
                Err(SweepAbort::Io(e)) => return Err(e),
            };
            state.metrics.record("sweep", elapsed_us(start), ok);
            return Ok(keep && !state.shutdown.load(Ordering::SeqCst));
        }
        ("GET", "/v1/simulate" | "/v1/mc" | "/v1/certify" | "/v1/lint" | "/v1/sweep")
        | ("POST", "/healthz" | "/metrics" | "/metrics/json") => (
            "other",
            Reply::status(405, format!("use {} for {}", flip(&req.method), req.path)),
        ),
        _ => (
            "other",
            Reply::status(404, format!("unknown endpoint {} {}", req.method, req.path)),
        ),
    };

    state
        .metrics
        .record(label, elapsed_us(start), outcome.status == 200);
    let keep = keep && !state.shutdown.load(Ordering::SeqCst);
    write_response(
        out,
        outcome.status,
        outcome.content_type,
        outcome.body.as_bytes(),
        keep,
    )?;
    Ok(keep)
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn flip(method: &str) -> &'static str {
    if method == "GET" {
        "POST"
    } else {
        "GET"
    }
}

/// A buffered response.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    fn status(status: u16, msg: String) -> Self {
        Self {
            status,
            content_type: TEXT,
            body: format!("{msg}\n"),
        }
    }

    fn bad_request(msg: String) -> Self {
        Self::status(400, msg)
    }
}

/// Parses the request body as a JSON object (empty body = `{}`).
fn parse_body(req: &Request) -> Result<serde_json::Value, String> {
    if req.body.is_empty() {
        return Ok(serde_json::json!({}));
    }
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_owned())?;
    serde_json::from_str::<serde_json::Value>(text).map_err(|e| format!("bad JSON body: {e}"))
}

fn str_field<'v>(body: &'v serde_json::Value, key: &str) -> Option<&'v str> {
    body.get(key).and_then(serde_json::Value::as_str)
}

/// Pulls the common fields and resolves the workflow through the cache.
/// Returns the entry, whether it was a cache hit, and the base options
/// with any request contention applied.
fn resolve_cached(
    state: &AppState,
    body: &serde_json::Value,
) -> Result<(Arc<ServeEntry>, bool, SimOptions), String> {
    let workflow = str_field(body, "workflow").ok_or("missing field `workflow`")?;
    let machine = str_field(body, "machine");
    let label = str_field(body, "path").unwrap_or("<request>");
    let key = cache_key(workflow, machine);
    let (entry, hit) = state.cache.get_or_build(key, || {
        ServeEntry::build(resolve_request(workflow, machine, label)?)
    })?;
    let mut options = entry.scenario.options.clone();
    if let Some(contention) = body.get("contention") {
        let pairs = contention
            .as_object()
            .ok_or("field `contention` must be an object of resource: factor")?;
        for (res, factor) in pairs {
            let factor = factor
                .as_f64()
                .ok_or_else(|| format!("bad contention factor for `{res}`"))?;
            options = options.with_contention(res.clone(), factor);
        }
    }
    Ok((entry, hit, options))
}

/// `POST /v1/simulate` — body equals `wrm simulate <file>` stdout
/// (`--summary` via `"summary": true`).
fn simulate(state: &AppState, req: &Request) -> Reply {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return Reply::bad_request(e),
    };
    let (entry, _hit, options) = match resolve_cached(state, &body) {
        Ok(r) => r,
        Err(e) => return Reply::bad_request(e),
    };
    let Some(structure) = entry.structure.clone() else {
        return Reply::bad_request(
            "simulate needs a .wrm source workflow (builtins are sweep-only)".into(),
        );
    };
    let summary = body
        .get("summary")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(false);

    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let job_entry = Arc::clone(&entry);
    state.pool.submit(Box::new(move |arena| {
        let scenario = job_entry.scenario.clone().with_options(options);
        let report = if summary {
            wrm_sim::simulate_summary_with_base(&scenario, &job_entry.base, arena)
                .map_err(|e| e.to_string())
                .map(|sum| {
                    render::summary_report(&scenario.workflow.name, &scenario.machine.name, &sum)
                })
        } else {
            wrm_sim::simulate_with_base(&scenario, &job_entry.base, arena)
                .map_err(|e| e.to_string())
                .and_then(|result| {
                    render::simulate_report(
                        &scenario.workflow.name,
                        &scenario.machine.name,
                        &result,
                        &structure,
                    )
                })
        };
        let _ = tx.send(report);
    }));
    match rx.recv() {
        Ok(Ok(report)) => Reply::ok(TEXT, report),
        Ok(Err(e)) => Reply::bad_request(e),
        Err(_) => Reply::status(503, "worker pool unavailable".into()),
    }
}

/// Replication-count ceiling for one `POST /v1/mc` request; larger
/// studies should shard across requests (each is seeded, so shards
/// compose deterministically).
const MC_MAX_REPS: usize = 100_000;

/// `POST /v1/mc` — body equals `wrm simulate <file> --reps N [--seed S]
/// [--percentiles] [--threads T]` stdout. The replication fan-out runs
/// inside one pool slot: `mc_run_with_base` spawns its own scoped
/// workers with per-worker arenas, so `"threads"` (default 1 here, to
/// not oversubscribe the request pool) only changes wall-clock, never
/// bytes.
fn mc(state: &AppState, req: &Request) -> Reply {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return Reply::bad_request(e),
    };
    let (entry, _hit, options) = match resolve_cached(state, &body) {
        Ok(r) => r,
        Err(e) => return Reply::bad_request(e),
    };
    let reps = match body.get("reps").map(|v| {
        v.as_u64()
            .ok_or_else(|| "field `reps` must be a positive integer".to_owned())
    }) {
        None => 100,
        Some(Ok(n)) if (1..=MC_MAX_REPS as u64).contains(&n) => n as usize,
        Some(Ok(n)) => {
            return Reply::bad_request(format!(
                "field `reps` must be in 1..={MC_MAX_REPS}, got {n}"
            ))
        }
        Some(Err(e)) => return Reply::bad_request(e),
    };
    let seed = match body.get("seed").map(|v| {
        v.as_u64()
            .ok_or_else(|| "field `seed` must be a non-negative integer".to_owned())
    }) {
        None => 0,
        Some(Ok(s)) => s,
        Some(Err(e)) => return Reply::bad_request(e),
    };
    let threads = match body.get("threads").map(|v| {
        v.as_u64()
            .ok_or_else(|| "field `threads` must be a non-negative integer".to_owned())
    }) {
        None => 1,
        Some(Ok(t)) => t as usize,
        Some(Err(e)) => return Reply::bad_request(e),
    };
    let percentiles = body
        .get("percentiles")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(true);

    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let job_entry = Arc::clone(&entry);
    state.pool.submit(Box::new(move |_arena| {
        let scenario = job_entry.scenario.clone().with_options(options);
        let opts = wrm_sim::McOptions {
            reps,
            seed,
            threads,
        };
        let report = wrm_sim::mc_run_with_base(&scenario, &job_entry.base, &opts)
            .map_err(|e| e.to_string())
            .map(|mc| {
                render::mc_report(
                    &scenario.workflow.name,
                    &scenario.machine.name,
                    &mc,
                    percentiles,
                )
            });
        let _ = tx.send(report);
    }));
    match rx.recv() {
        Ok(Ok(report)) => Reply::ok(TEXT, report),
        Ok(Err(e)) => Reply::bad_request(e),
        Err(_) => Reply::status(503, "worker pool unavailable".into()),
    }
}

/// `POST /v1/certify` — body equals `wrm certify <file>` stdout.
fn certify(state: &AppState, req: &Request) -> Reply {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return Reply::bad_request(e),
    };
    let (entry, _hit, options) = match resolve_cached(state, &body) {
        Ok(r) => r,
        Err(e) => return Reply::bad_request(e),
    };
    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let job_entry = Arc::clone(&entry);
    state.pool.submit(Box::new(move |_arena| {
        let report =
            wrm_sim::certify_with_base(&job_entry.scenario.workflow, &options, &job_entry.base)
                .map_err(|e| e.to_string())
                .and_then(|cert| render::certificate_json(&cert));
        let _ = tx.send(report);
    }));
    match rx.recv() {
        Ok(Ok(report)) => Reply::ok(JSON, report),
        Ok(Err(e)) => Reply::bad_request(e),
        Err(_) => Reply::status(503, "worker pool unavailable".into()),
    }
}

/// `POST /v1/lint` — body equals `wrm lint <file> --format F` stdout.
/// Pure front-half work: runs inline on the connection thread.
fn lint(req: &Request) -> Reply {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return Reply::bad_request(e),
    };
    let Some(source) = str_field(&body, "workflow") else {
        return Reply::bad_request("missing field `workflow`".into());
    };
    let path = str_field(&body, "path").unwrap_or("<request>").to_owned();
    let format = str_field(&body, "format").unwrap_or("text");
    let batch = vec![(path, source.to_owned(), wrm_lint::lint_source(source))];
    let rendered = match format {
        "text" => Ok((TEXT, render::lint_text(&batch))),
        "json" => render::lint_json(&batch).map(|b| (JSON, b)),
        "sarif" => render::lint_sarif(&batch).map(|b| (JSON, b)),
        other => {
            return Reply::bad_request(format!(
                "unknown format `{other}` (expected text, json, or sarif)"
            ))
        }
    };
    match rendered {
        Ok((content_type, body)) => Reply::ok(content_type, body),
        Err(e) => Reply::status(500, e),
    }
}

/// Why a sweep request did not stream to completion.
enum SweepAbort {
    /// Rejected before the response started (safe to send a status).
    Setup(u16, String),
    /// The connection died mid-stream.
    Io(std::io::Error),
}

impl From<std::io::Error> for SweepAbort {
    fn from(e: std::io::Error) -> Self {
        SweepAbort::Io(e)
    }
}

/// `POST /v1/sweep` — body equals `wrm sweep …` stdout for the same
/// axes. `csv`/`jsonl` stream chunked in canonical row order as sweep
/// columns complete; `json` buffers (a pretty array has no row
/// boundaries to stream).
fn sweep<W: Write>(
    state: &AppState,
    req: &Request,
    out: &mut W,
    keep: bool,
) -> Result<bool, SweepAbort> {
    let body = parse_body(req).map_err(|e| SweepAbort::Setup(400, e))?;
    let (entry, _hit, _options) =
        resolve_cached(state, &body).map_err(|e| SweepAbort::Setup(400, e))?;

    let resource = str_field(&body, "resource").map(str::to_owned);
    let factors = f64_array(&body, "factors").map_err(|e| SweepAbort::Setup(400, e))?;
    let nodes = u64_array(&body, "nodes").map_err(|e| SweepAbort::Setup(400, e))?;
    let policies = body
        .get("policies")
        .and_then(serde_json::Value::as_array)
        .map(|items| {
            items
                .iter()
                .map(|v| {
                    v.as_str()
                        .ok_or_else(|| "policies must be strings".to_owned())
                        .and_then(render::parse_policy)
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .map_err(|e| SweepAbort::Setup(400, e))?
        .unwrap_or_default();
    let format = str_field(&body, "format").unwrap_or("csv");
    if !matches!(format, "csv" | "json" | "jsonl") {
        return Err(SweepAbort::Setup(
            400,
            format!("unknown format `{format}` (expected json, csv, or jsonl)"),
        ));
    }

    let grid = render::build_grid(&entry.scenario, resource, &factors, &nodes, &policies)
        .map_err(|e| SweepAbort::Setup(400, e))?;
    let cells = render::grid_cells(&grid);
    let grid = Arc::new(grid);
    let columns: Vec<(usize, usize)> = (0..grid.node_limits.len())
        .flat_map(|ni| (0..grid.policies.len()).map(move |pi| (ni, pi)))
        .collect();

    let (tx, rx) = mpsc::channel::<(Vec<wrm_sim::IndexedResult>, SweepStats)>();
    for &(ni, pi) in &columns {
        let tx = tx.clone();
        let entry = Arc::clone(&entry);
        let grid = Arc::clone(&grid);
        state.pool.submit(Box::new(move |arena| {
            let (results, stats) =
                wrm_sim::sweep_column(&entry.scenario, &grid, &entry.base, ni, pi, arena);
            let _ = tx.send((results, stats));
        }));
    }
    drop(tx);

    let workflow = entry.scenario.workflow.name.as_str();
    let machine = entry.scenario.machine.name.as_str();
    let resource = grid.resource.clone().unwrap_or_default();
    let mut slots: Vec<Option<Result<wrm_sim::SimResult, wrm_sim::SimError>>> =
        (0..grid.len()).map(|_| None).collect();
    let mut emitted = 0usize;

    if format == "json" {
        // Buffered: collect every column, then render the document.
        for (results, stats) in rx {
            state.metrics.absorb_sweep(&stats);
            for (ix, r) in results {
                slots[ix] = Some(r);
            }
        }
        let rows: Vec<serde_json::Value> = slots
            .iter()
            .zip(&cells)
            .filter_map(|(slot, cell)| {
                slot.as_ref().map(|result| {
                    render::sweep_row_value(workflow, machine, &resource, cell, result)
                })
            })
            .collect();
        if rows.len() != cells.len() {
            // A worker died or the pool shut down mid-sweep; nothing
            // has been written yet, so a plain 500 is still possible.
            return Err(SweepAbort::Setup(
                500,
                "sweep aborted before completion".into(),
            ));
        }
        let doc = render::sweep_json(rows).map_err(|e| SweepAbort::Setup(500, e))?;
        write_response(out, 200, JSON, doc.as_bytes(), keep)?;
        return Ok(keep);
    }

    // Streamed: rows go out in canonical order as soon as every row
    // before them is known; a completed column unlocks its rows the
    // moment it lands.
    let content_type = if format == "csv" { CSV } else { JSONL };
    let mut writer = ChunkedWriter::begin(out, content_type, keep)?;
    if format == "csv" {
        writer.chunk(render::SWEEP_CSV_HEADER.as_bytes())?;
    }
    for (results, stats) in rx {
        state.metrics.absorb_sweep(&stats);
        for (ix, r) in results {
            slots[ix] = Some(r);
        }
        let mut ready = String::new();
        while emitted < slots.len() {
            let Some(result) = &slots[emitted] else { break };
            if format == "csv" {
                ready.push_str(&render::sweep_row_csv(
                    workflow,
                    machine,
                    &resource,
                    &cells[emitted],
                    result,
                ));
            } else {
                let row =
                    render::sweep_row_value(workflow, machine, &resource, &cells[emitted], result);
                let line = render::sweep_row_jsonl(&row)
                    .unwrap_or_else(|e| format!("{{\"error\":\"render: {e}\"}}\n"));
                ready.push_str(&line);
            }
            emitted += 1;
        }
        writer.chunk(ready.as_bytes())?;
    }
    if emitted < slots.len() {
        // A worker died or the pool shut down: the stream is
        // incomplete; kill the connection so the client cannot mistake
        // a truncated body for a full one (chunked encoding makes the
        // truncation visible).
        return Err(SweepAbort::Io(std::io::Error::other(
            "sweep aborted before completion",
        )));
    }
    writer.finish()?;
    Ok(keep)
}

fn f64_array(body: &serde_json::Value, key: &str) -> Result<Vec<f64>, String> {
    match body.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| format!("field `{key}` must be an array of numbers"))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| format!("field `{key}` must be an array of numbers"))
            })
            .collect(),
    }
}

fn u64_array(body: &serde_json::Value, key: &str) -> Result<Vec<u64>, String> {
    match body.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| format!("field `{key}` must be an array of integers"))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("field `{key}` must be an array of integers"))
            })
            .collect(),
    }
}
