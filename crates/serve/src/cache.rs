//! The server's LRU cache of compiled workflow indexes.
//!
//! A cache entry holds everything the request handlers need after the
//! front half of the pipeline: the resolved [`Scenario`] and the
//! compiled [`BaseIndex`] the simulator shares across points. Entries
//! are keyed by a stable content hash ([`wrm_core::fingerprint_value`])
//! of the request's `(workflow, machine override)` pair, so a repeated
//! request — same spec bytes, same machine — skips parse, lint,
//! compile, and index construction entirely.
//!
//! The LRU list is a recency-ordered `Vec` under one mutex: with
//! double-digit capacities (default 32) a linear scan is faster than
//! any linked structure, and the lock is held only for the scan — entry
//! construction on a miss runs outside it, so two clients missing on
//! *different* specs compile concurrently. (Two clients racing on the
//! *same* new spec may both compile it; the second insert wins and both
//! answers are identical, so the race is benign and only costs work.)

use crate::resolve::Resolved;
use std::sync::Arc;
use wrm_mc::sync::atomic::{AtomicU64, Ordering};
use wrm_mc::sync::{Mutex, PoisonError};
use wrm_sim::{BaseIndex, Scenario};
use wrm_trace::Structure;

/// A cached compiled workflow: scenario, shared index, structure.
pub struct ServeEntry {
    /// Machine + workflow + base options.
    pub scenario: Scenario,
    /// The compiled index, shared by every simulation of this entry.
    pub base: BaseIndex,
    /// DAG structure for the simulate report (`None` for builtins).
    pub structure: Option<Structure>,
}

impl ServeEntry {
    /// Compiles the index for a resolved workflow.
    pub fn build(resolved: Resolved) -> Result<Self, String> {
        let base = BaseIndex::build(&resolved.scenario.machine, &resolved.scenario.workflow)
            .map_err(|e| e.to_string())?;
        Ok(Self {
            scenario: resolved.scenario,
            base,
            structure: resolved.structure,
        })
    }
}

/// Stable cache key for a request's workflow: hashes the workflow text
/// (builtin name or full `.wrm` source) and the machine override
/// through the canonical value hasher, so the key is independent of
/// process, platform, and map iteration order.
#[must_use]
pub fn cache_key(workflow: &str, machine: Option<&str>) -> u64 {
    wrm_core::fingerprint_value(&serde_json::json!({
        "workflow": workflow,
        "machine": machine.unwrap_or(""),
    }))
}

/// A concurrency-safe LRU cache of [`ServeEntry`]s (generic over the
/// value type so the model-check suite can exercise the exact LRU
/// logic with cheap values).
pub struct IndexCache<V = ServeEntry> {
    capacity: usize,
    /// Recency order: most recently used last.
    entries: Mutex<Vec<(u64, Arc<V>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> IndexCache<V> {
    /// Creates a cache holding at most `capacity` entries (floored at
    /// 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            let pair = entries.remove(pos);
            let entry = Arc::clone(&pair.1);
            entries.push(pair);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(entry)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts `entry` as most recent, evicting the least recently used
    /// entry if the cache is full. An existing entry under the same key
    /// is replaced (not counted as an eviction).
    pub fn insert(&self, key: u64, entry: Arc<V>) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(pos);
        } else if entries.len() >= self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push((key, entry));
    }

    /// Returns the entry for `key`, building and caching it on a miss.
    /// The `hit` flag reports whether the entry came out of the cache.
    pub fn get_or_build<F>(&self, key: u64, build: F) -> Result<(Arc<V>, bool), String>
    where
        F: FnOnce() -> Result<V, String>,
    {
        if let Some(entry) = self.get(key) {
            return Ok((entry, true));
        }
        let entry = Arc::new(build()?);
        self.insert(key, Arc::clone(&entry));
        Ok((entry, false))
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since startup.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since startup.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by capacity pressure since startup.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve_request;

    fn entry_for(name: &str) -> ServeEntry {
        ServeEntry::build(resolve_request(name, None, "<test>").unwrap()).unwrap()
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(cache_key("lcls", None), cache_key("lcls", None));
        assert_ne!(cache_key("lcls", None), cache_key("bgw", None));
        assert_ne!(cache_key("lcls", None), cache_key("lcls", Some("pm-cpu")));
        // No machine override and an empty override collide by design:
        // both mean "the workflow's own machine".
        assert_eq!(cache_key("lcls", None), cache_key("lcls", Some("")));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = IndexCache::new(2);
        let (ka, kb, kc) = (1u64, 2u64, 3u64);
        cache.insert(ka, Arc::new(entry_for("lcls")));
        cache.insert(kb, Arc::new(entry_for("bgw")));
        // Touch A so B becomes the LRU victim.
        assert!(cache.get(ka).is_some());
        cache.insert(kc, Arc::new(entry_for("cosmoflow")));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(kb).is_none(), "LRU entry must be evicted");
        assert!(cache.get(ka).is_some());
        assert!(cache.get(kc).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicted_entries_rebuild_on_demand() {
        let cache = IndexCache::new(1);
        let specs = ["lcls", "bgw", "cosmoflow"];
        // More specs than capacity: every insert after the first evicts.
        for name in specs {
            let key = cache_key(name, None);
            let (_, hit) = cache
                .get_or_build(key, || Ok(entry_for(name)))
                .expect("builds");
            assert!(!hit);
        }
        assert_eq!(cache.evictions(), 2);
        // The evicted specs still answer — get_or_build recompiles them
        // and the rebuilt entry matches a fresh build.
        let key = cache_key("lcls", None);
        let (rebuilt, hit) = cache
            .get_or_build(key, || Ok(entry_for("lcls")))
            .expect("rebuilds");
        assert!(!hit, "evicted entry must be a miss");
        assert_eq!(
            rebuilt.scenario.workflow.name,
            entry_for("lcls").scenario.workflow.name
        );
        // And the rebuilt entry now serves hits.
        let (_, hit) = cache
            .get_or_build(key, || panic!("must not rebuild on a hit"))
            .expect("hits");
        assert!(hit);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let cache = IndexCache::new(2);
        cache.insert(7, Arc::new(entry_for("lcls")));
        cache.insert(8, Arc::new(entry_for("bgw")));
        cache.insert(7, Arc::new(entry_for("lcls")));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(8).is_some());
    }
}
