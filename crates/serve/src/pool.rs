//! The fixed simulation worker pool.
//!
//! All CPU-heavy work — simulations, certifications, sweep columns —
//! funnels through one pool of `effective_workers` threads, each
//! owning a warmed [`SimArena`] that every job it runs reuses. The
//! connection threads do only I/O and JSON assembly; they submit
//! closures here and block on a per-request `std::sync::mpsc` channel
//! for the results. Jobs never submit jobs, so the pool cannot
//! deadlock on itself regardless of queue depth.

use crossbeam::channel::{unbounded, Sender};
use wrm_mc::thread::JoinHandle;
use wrm_sim::SimArena;

/// A unit of simulation work, run with a worker's warmed arena.
pub type Job = Box<dyn FnOnce(&mut SimArena) + Send + 'static>;

/// A fixed pool of simulation workers fed by an MPMC job channel.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (floored at 1), each with its own
    /// [`SimArena`].
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                wrm_mc::thread::Builder::new()
                    .name(format!("wrm-sim-{i}"))
                    .spawn(move || {
                        let mut arena = SimArena::new();
                        while let Ok(job) = rx.recv() {
                            job(&mut arena);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a job. Returns `false` if the pool has shut down (the
    /// job is dropped; its result channel disconnects, which the
    /// waiting request observes as an error).
    pub fn submit(&self, job: Job) -> bool {
        match &self.tx {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// Stops accepting jobs, drains the queue, and joins every worker.
    pub fn shutdown(&mut self) {
        self.tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WorkerPool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move |_arena| {
                let _ = tx.send(i * 2);
            })));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let mut pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..50u32 {
            let tx = tx.clone();
            pool.submit(Box::new(move |_| {
                let _ = tx.send(i);
            }));
        }
        drop(tx);
        pool.shutdown();
        assert_eq!(rx.iter().count(), 50, "queued jobs run before join");
        assert!(
            !pool.submit(Box::new(|_| {})),
            "pool rejects after shutdown"
        );
    }
}
