//! Workflow resolution shared by the CLI and the server: builtin paper
//! workflows by name, or `.wrm` source text through the
//! lint-errors-first compile pipeline.

use wrm_core::machines;
use wrm_sim::Scenario;
use wrm_trace::Structure;
use wrm_workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

/// The builtin workflow names [`builtin_scenario`] accepts.
pub const BUILTINS: [&str; 5] = ["lcls", "bgw", "cosmoflow", "gptune-rci", "gptune-spawn"];

/// Parses and compiles a workflow source, running the error-severity
/// lint subset first so a broken spec fails with spanned diagnostics
/// instead of whatever the compiler trips over first. `path` labels
/// the diagnostics (a file path in the CLI, a client-provided label on
/// the server).
pub fn compile_checked(path: &str, source: &str) -> Result<wrm_lang::Compiled, String> {
    let ast = wrm_lang::parse(source).map_err(|e| format!("{path}:{e}"))?;
    let errors = wrm_lint::lint_errors(&ast);
    if !errors.is_empty() {
        let mut msg = String::new();
        for d in &errors {
            msg.push_str(&format!("{path}: {}\n", d.render(source)));
        }
        msg.push_str(&format!(
            "{} error(s); see `wrm lint {path}` for the full report",
            errors.len()
        ));
        return Err(msg);
    }
    wrm_lang::compile(&ast).map_err(|e| format!("{path}:{e}"))
}

/// Resolves the machine for a compiled spec: an explicit override wins,
/// then the file's `on <machine>` clause.
pub fn resolve_machine(
    compiled: &wrm_lang::Compiled,
    machine: Option<&str>,
) -> Result<wrm_core::Machine, String> {
    match machine {
        Some(name) => machines::by_name(name)
            .ok_or_else(|| format!("unknown machine `{name}` (try: pm-gpu, pm-cpu, cori-hsw)")),
        None => compiled.machine.clone().ok_or_else(|| {
            "no machine: add `on <machine>` to the file or pass --machine".to_owned()
        }),
    }
}

/// The builtin paper workflows, ready to simulate.
#[must_use]
pub fn builtin_scenario(name: &str) -> Option<Scenario> {
    match name {
        "lcls" => Some(Lcls::year_2020_on_cori().scenario(machines::cori_haswell(), Day::Good)),
        "bgw" => Some(Bgw::si998_64().scenario()),
        "cosmoflow" => Some(CosmoFlow::default().scenario()),
        "gptune-rci" => Some(GpTune::default().scenario(Mode::Rci)),
        "gptune-spawn" => Some(GpTune::default().scenario(Mode::Spawn)),
        _ => None,
    }
}

/// A resolved workflow: the scenario to simulate plus, when it came
/// from compiled source, the DAG structure the roofline
/// characterization needs.
pub struct Resolved {
    /// Machine + workflow + base options.
    pub scenario: Scenario,
    /// Task structure from the compiler (`None` for builtins).
    pub structure: Option<Structure>,
}

/// Resolves `.wrm` source text into a scenario with default options.
pub fn from_source(path: &str, source: &str, machine: Option<&str>) -> Result<Resolved, String> {
    let compiled = compile_checked(path, source)?;
    let machine = resolve_machine(&compiled, machine)?;
    let structure = Structure::new(
        compiled.total_tasks,
        compiled.parallel_tasks,
        compiled.nodes_per_task,
    );
    Ok(Resolved {
        scenario: Scenario::new(machine, compiled.spec),
        structure: Some(structure),
    })
}

/// Resolves a server request's workflow field: an exact builtin name,
/// or `.wrm` source text.
pub fn resolve_request(
    workflow: &str,
    machine: Option<&str>,
    path_label: &str,
) -> Result<Resolved, String> {
    if let Some(scenario) = builtin_scenario(workflow) {
        return Ok(Resolved {
            scenario,
            structure: None,
        });
    }
    from_source(path_label, workflow, machine)
}
