//! The server runtime: bind, accept, dispatch, drain.
//!
//! Connection I/O is thread-per-connection (connections are cheap and
//! mostly idle); the CPU-heavy simulation work all funnels through the
//! fixed [`WorkerPool`], so concurrency in the transport never
//! oversubscribes the simulator. The accept loop polls a nonblocking
//! listener so it can observe the shutdown flag — set by SIGTERM,
//! SIGINT, or `POST /admin/shutdown` — within [`ACCEPT_POLL`]; it then
//! stops accepting, waits for in-flight connections to finish their
//! current request, joins the pool, and reports the drain.

use crate::api::{respond, AppState};
use crate::cache::IndexCache;
use crate::http::{read_request, ReadError};
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::signals;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use wrm_mc::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use wrm_mc::thread;

/// How often the accept loop checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection read timeout: bounds how long an idle keep-alive
/// connection can stall the drain.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Max wall-clock the drain waits for in-flight connections.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(15);

/// Server configuration (`wrm serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size; 0 = auto (one per available CPU).
    pub workers: usize,
    /// Index cache capacity in entries.
    pub cache_capacity: usize,
    /// Suppress the listening/drain stderr lines.
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            workers: 0,
            cache_capacity: 32,
            quiet: false,
        }
    }
}

/// A running server, owned by the caller (the bench and the tests run
/// it in-process; the CLI blocks on [`run`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<DrainReport>,
}

/// What the drain saw on the way out.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests served over the server's lifetime.
    pub served: u64,
    /// In-flight connections still open when the drain timed out
    /// (0 on a clean drain).
    pub abandoned: usize,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and blocks until the server drains.
    pub fn shutdown(self) -> DrainReport {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or(DrainReport {
            served: 0,
            abandoned: 0,
        })
    }
}

/// Binds and serves on a background thread, returning once the
/// listener is live.
pub fn spawn(config: ServerConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let state = build_state(&config, Arc::clone(&shutdown));
    let quiet = config.quiet;
    let join = thread::Builder::new()
        .name("wrm-serve-accept".into())
        .spawn(move || serve_until_drained(&listener, &state, quiet))
        .map_err(|e| format!("cannot spawn accept thread: {e}"))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        join,
    })
}

/// The CLI entry point: installs signal handlers, serves until SIGTERM
/// / SIGINT / `POST /admin/shutdown`, drains, and reports.
pub fn run(config: ServerConfig) -> Result<(), String> {
    signals::install();
    let quiet = config.quiet;
    let workers = wrm_sim::effective_workers(config.workers, usize::MAX).max(1);
    let handle = spawn(config)?;
    if !quiet {
        eprintln!(
            "wrm serve: listening on {} ({workers} sim worker(s))",
            handle.addr()
        );
    }
    // Bridge process signals onto the server's shutdown flag.
    while !handle.shutdown.load(Ordering::SeqCst) && !signals::triggered() {
        thread::sleep(ACCEPT_POLL);
    }
    handle.shutdown.store(true, Ordering::SeqCst);
    let report = handle.join.join().map_err(|_| "server thread panicked")?;
    if !quiet {
        if report.abandoned == 0 {
            eprintln!(
                "wrm serve: drained cleanly after {} request(s); bye",
                report.served
            );
        } else {
            eprintln!(
                "wrm serve: drained with {} connection(s) abandoned after {} request(s)",
                report.abandoned, report.served
            );
        }
    }
    Ok(())
}

fn build_state(config: &ServerConfig, shutdown: Arc<AtomicBool>) -> Arc<AppState> {
    // The pool multiplexes *all* requests, so size it like a sweep:
    // auto = one worker per CPU, explicit values capped at the host.
    let workers = wrm_sim::effective_workers(config.workers, usize::MAX).max(1);
    Arc::new(AppState {
        cache: IndexCache::new(config.cache_capacity),
        pool: WorkerPool::new(workers),
        metrics: Metrics::new(),
        shutdown,
        served: AtomicU64::new(0),
    })
}

fn serve_until_drained(listener: &TcpListener, state: &Arc<AppState>, quiet: bool) -> DrainReport {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let active = Arc::new(AtomicUsize::new(0));
    let mut conn_handles = Vec::new();

    while !state.shutdown.load(Ordering::SeqCst) && !signals::triggered() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                // Decrement-on-drop so a panicking connection thread
                // (or a failed spawn, which drops the closure) cannot
                // leak the in-flight count and stall every later drain.
                let guard = ActiveGuard::new(Arc::clone(&active));
                let handle =
                    thread::Builder::new()
                        .name("wrm-serve-conn".into())
                        .spawn(move || {
                            let _guard = guard;
                            handle_connection(stream, &state, quiet);
                        });
                if let Ok(h) = handle {
                    conn_handles.push(h);
                }
                // Drop finished handles so a long-lived server does not
                // accumulate them.
                conn_handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    state.shutdown.store(true, Ordering::SeqCst);

    // Drain: connections observe the flag after their current request
    // (and idle ones hit the read timeout), so this converges fast.
    let deadline = std::time::Instant::now() + DRAIN_TIMEOUT;
    while active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
        thread::sleep(ACCEPT_POLL);
    }
    let abandoned = active.load(Ordering::SeqCst);
    for h in conn_handles {
        if h.is_finished() {
            let _ = h.join();
        }
    }
    DrainReport {
        // `served` is a metrics counter (Relaxed on both ends); the
        // control-flow atomics above (`shutdown`, `active`) are SeqCst.
        served: state.served.load(Ordering::Relaxed),
        abandoned,
    }
}

/// Tracks one in-flight connection: increments the count on creation
/// and decrements it when dropped, even if the owning thread unwinds.
/// Public so the model-check suite can verify the count stays exact
/// across panicking connection threads.
pub struct ActiveGuard(Arc<AtomicUsize>);

impl ActiveGuard {
    /// Registers one in-flight connection on `active`.
    #[must_use]
    pub fn new(active: Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::SeqCst);
        Self(active)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<AppState>, quiet: bool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                // An Err means the peer went away mid-response: drop it.
                let keep = respond(state, &req, reader.get_mut()).unwrap_or_default();
                if !keep {
                    break;
                }
            }
            Ok(None) => break, // clean close between requests
            // Read timeouts on idle keep-alive connections are routine:
            // drop the connection without a response.
            Err(ReadError::TimedOut) => break,
            Err(ReadError::Bad(e)) => {
                // Malformed gets a 400 if the socket is still writable.
                if !quiet {
                    eprintln!("wrm serve: bad request: {e}");
                }
                let body = format!("{e}\n");
                let _ = crate::http::write_response(
                    reader.get_mut(),
                    400,
                    "text/plain; charset=utf-8",
                    body.as_bytes(),
                    false,
                );
                break;
            }
        }
    }
}
