//! A minimal HTTP/1.1 layer over `std::net` — exactly the subset the
//! server and its clients need, with no async runtime:
//!
//! * request parsing with `Content-Length` bodies (chunked request
//!   bodies are rejected with 501 by the caller);
//! * keep-alive by default, honoring `Connection: close`;
//! * buffered responses with `Content-Length`, or streamed responses
//!   with `Transfer-Encoding: chunked` via [`ChunkedWriter`] — the
//!   sweep endpoint emits each row group the moment it is ready.

use std::io::{BufRead, Read, Write};

/// Max accepted header block (request line + headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Max accepted request body. Workflow sources are small; this mostly
/// guards against a client streaming garbage at the server.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request path, e.g. `/v1/sweep` (query strings are not split off;
    /// no endpoint uses them).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to drop the connection after this
    /// response.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The socket read timed out before a full request arrived —
    /// routine on idle keep-alive connections bounded by the server's
    /// read timeout, so callers drop the connection silently.
    TimedOut,
    /// Malformed or oversized request; worth a 400 if the socket is
    /// still writable.
    Bad(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::TimedOut => f.write_str("read timed out"),
            ReadError::Bad(msg) => f.write_str(msg),
        }
    }
}

/// Classifies an I/O failure: `SO_RCVTIMEO` expiry surfaces as
/// `TimedOut` on most platforms but as `WouldBlock` (EAGAIN) on Linux,
/// so both kinds mean "the timer fired", not "the request was bad".
fn io_error(context: &str, e: &std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ReadError::TimedOut,
        _ => ReadError::Bad(format!("{context}: {e}")),
    }
}

/// Reads one request off the wire. `Ok(None)` means the peer closed
/// cleanly between requests (normal keep-alive teardown); `Err`
/// distinguishes idle-timeout expiry from malformed or oversized
/// requests.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ReadError> {
    // The cap must bound *unterminated* lines too: `read_line` buffers
    // until it sees a newline, so without the `take` a client sending
    // one endless header line would grow memory without limit.
    let mut head = (&mut *reader).take(MAX_HEADER_BYTES as u64);
    let mut line = String::new();
    match head.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) if !line.ends_with('\n') && head.limit() == 0 => {
            return Err(ReadError::Bad("header block too large".into()));
        }
        Ok(_) => {}
        Err(e) => return Err(io_error("read request line", &e)),
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_owned(), p.to_owned(), v),
        _ => return Err(ReadError::Bad(format!("malformed request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("unsupported protocol {version}")));
    }

    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        match head.read_line(&mut hline) {
            Ok(0) if head.limit() == 0 => {
                return Err(ReadError::Bad("header block too large".into()))
            }
            Ok(0) => return Err(ReadError::Bad("connection closed mid-headers".into())),
            Ok(_) if !hline.ends_with('\n') && head.limit() == 0 => {
                return Err(ReadError::Bad("header block too large".into()));
            }
            Ok(_) => {}
            Err(e) => return Err(io_error("read header", &e)),
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header: {trimmed:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Bad(format!("bad content-length {v:?}")))
        })
        .transpose()?;
    if let Some(n) = content_length {
        if n > MAX_BODY_BYTES {
            return Err(ReadError::Bad(format!(
                "body of {n} bytes exceeds the {MAX_BODY_BYTES} cap"
            )));
        }
        body.resize(n, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| io_error("read body", &e))?;
    }

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Writes a complete response with `Content-Length`.
pub fn write_response<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    )?;
    out.write_all(body)?;
    out.flush()
}

/// A chunked-transfer response in progress: headers go out on
/// construction, each [`chunk`](ChunkedWriter::chunk) flushes
/// immediately, and [`finish`](ChunkedWriter::finish) writes the
/// terminating chunk.
pub struct ChunkedWriter<'a, W: Write> {
    out: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Starts a 200 chunked response.
    pub fn begin(out: &'a mut W, content_type: &str, keep_alive: bool) -> std::io::Result<Self> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            out,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n"
        )?;
        out.flush()?;
        Ok(Self { out })
    }

    /// Emits one chunk (empty input is skipped — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", data.len())?;
        self.out.write_all(data)?;
        self.out.write_all(b"\r\n")?;
        self.out.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()
    }
}

/// Canonical reason phrase for the status codes the server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .expect("parses")
            .expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_parses_back_to_back_requests() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(second.wants_close());
        assert!(read_request(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        ] {
            assert!(read_request(&mut BufReader::new(raw)).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn caps_unterminated_header_lines() {
        // A single endless line (no newline anywhere) must error at the
        // header cap instead of buffering without bound.
        let mut raw = vec![b'A'; MAX_HEADER_BYTES * 2];
        raw.splice(0..0, b"GET / HTTP/1.1\r\nX-Pad: ".iter().copied());
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert!(
            matches!(&err, ReadError::Bad(m) if m.contains("too large")),
            "{err:?}"
        );

        // Same for a request line that never terminates.
        let raw = vec![b'G'; MAX_HEADER_BYTES * 2];
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert!(
            matches!(&err, ReadError::Bad(m) if m.contains("too large")),
            "{err:?}"
        );
    }

    #[test]
    fn classifies_timeouts_structurally() {
        // SO_RCVTIMEO expiry surfaces as WouldBlock on Linux and
        // TimedOut elsewhere; both must map to ReadError::TimedOut so
        // the server never 400s an idle keep-alive connection.
        struct Failing(std::io::ErrorKind);
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(self.0))
            }
        }
        impl BufRead for Failing {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::from(self.0))
            }
            fn consume(&mut self, _: usize) {}
        }
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let err = read_request(&mut Failing(kind)).unwrap_err();
            assert!(matches!(err, ReadError::TimedOut), "{kind:?}: {err:?}");
        }
        let err = read_request(&mut Failing(std::io::ErrorKind::ConnectionReset)).unwrap_err();
        assert!(matches!(err, ReadError::Bad(_)), "{err:?}");
    }

    #[test]
    fn content_length_response_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"hello", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        {
            let mut w = ChunkedWriter::begin(&mut out, "text/csv", false).unwrap();
            w.chunk(b"row1\n").unwrap();
            w.chunk(b"").unwrap();
            w.chunk(b"row2\n").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("5\r\nrow1\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
        assert!(
            !text.contains("\r\n0\r\nrow2"),
            "empty chunk must be skipped"
        );
    }
}
