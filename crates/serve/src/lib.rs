//! # wrm-serve — a resident HTTP analysis server
//!
//! `wrm serve` keeps the expensive front half of every `wrm` invocation
//! — parse, lint, compile, and [`wrm_sim::BaseIndex`] construction —
//! resident between requests, so interactive clients (editors,
//! dashboards, autotuners polling a design space) pay only the
//! simulation itself. The moving parts:
//!
//! * a hand-rolled **HTTP/1.1** front end ([`http`]) on
//!   `std::net::TcpListener` — keep-alive, `Content-Length` bodies,
//!   chunked responses for streamed sweeps; no async runtime, no
//!   external dependencies;
//! * an **LRU index cache** ([`cache`]) keyed by a stable content hash
//!   ([`wrm_core::fingerprint`]) of `(workflow, machine override)`: a
//!   hit skips parse/lint/compile/index entirely and goes straight to
//!   the simulator against a shared [`wrm_sim::BaseIndex`];
//! * a fixed **worker pool** ([`pool`]) — a crossbeam job channel
//!   feeding one warmed [`wrm_sim::SimArena`] per worker — multiplexing
//!   the simulation work of all in-flight requests;
//! * per-request **metrics** ([`metrics`]): latency reservoirs per
//!   endpoint, cache hit/miss/eviction counters, and the sweep engine's
//!   fastpath/replay/cold path mix, exposed at `/metrics` (Prometheus
//!   text) and `/metrics/json`.
//!
//! Responses are assembled by the same [`render`] functions the CLI
//! prints through, so a server response body is byte-identical to the
//! corresponding `wrm` invocation's stdout — cold cache, warm cache, or
//! under concurrent clients (`crates/cli/tests/serve_e2e.rs` enforces
//! this end to end).
//!
//! See `docs/SERVE.md` for the request/response schemas.

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod render;
pub mod resolve;
mod server;
mod signals;

pub use server::{run, spawn, ActiveGuard, ServerConfig, ServerHandle};
