//! SIGTERM/SIGINT handling without a libc dependency: a raw binding to
//! `signal(2)` installing a handler that flips one process-global
//! atomic. The accept loop polls [`triggered`] between accepts, so a
//! `kill -TERM` drains in-flight connections and exits cleanly (the CI
//! smoke job exercises exactly this path). On non-unix targets the
//! install is a no-op and shutdown comes from `POST /admin/shutdown`.

use wrm_mc::sync::atomic::{AtomicBool, Ordering};

static TERMINATED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been delivered.
pub fn triggered() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

#[cfg(unix)]
pub fn install() {
    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store. (The facade atomic
        // delegates straight to `std` whenever no model run is active
        // in the process — and real signals never fire inside one.)
        TERMINATED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[allow(clippy::fn_to_numeric_cast_any)]
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is the POSIX libc function; installing a handler
    // that only stores to an atomic is async-signal-safe.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    #[test]
    fn install_is_idempotent() {
        super::install();
        super::install();
        // The flag itself is exercised through the server drain test.
    }
}
