//! Output assembly shared by the CLI and the server.
//!
//! Byte-identity between `wrm <cmd>` stdout and the corresponding
//! server response is a standing invariant of this workspace (it is
//! what makes the server a drop-in accelerator rather than a second
//! implementation to cross-validate). The invariant is enforced by
//! construction: both front ends call these functions, and neither
//! formats a result line on its own.
//!
//! Sweep rows render one at a time ([`sweep_row_csv`],
//! [`sweep_row_value`]) so the server can stream each row the moment
//! its column completes; the CLI simply concatenates them. Grid
//! construction ([`build_grid`]) owns the canonical axis order —
//! factors ascending, node limits with the full pool first, policies
//! with `fifo` first — so output bytes never depend on input order,
//! thread count, or engine.

use wrm_sim::{
    Certificate, McResult, Scenario, SchedulerPolicy, SimError, SimResult, SimSummary, SweepGrid,
};
use wrm_trace::{characterize, Structure};

/// Display name of a scheduler policy, as used in sweep rows and CLI
/// flags.
#[must_use]
pub fn policy_name(p: SchedulerPolicy) -> &'static str {
    match p {
        SchedulerPolicy::Fifo => "fifo",
        SchedulerPolicy::Backfill => "backfill",
    }
}

/// Parses a policy name (the inverse of [`policy_name`]).
pub fn parse_policy(name: &str) -> Result<SchedulerPolicy, String> {
    match name.trim() {
        "fifo" => Ok(SchedulerPolicy::Fifo),
        "backfill" => Ok(SchedulerPolicy::Backfill),
        other => Err(format!(
            "unknown policy `{other}` (expected fifo or backfill)"
        )),
    }
}

/// One cell of a sweep grid, in output order.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell {
    /// Contention factor applied to the swept resource.
    pub factor: f64,
    /// Scheduler node-pool limit (`None` = full pool).
    pub node_limit: Option<u64>,
    /// Scheduler policy.
    pub policy: SchedulerPolicy,
}

/// Builds the canonical sweep grid for a base scenario: validates the
/// axes, fills defaults from the scenario's options, and sorts every
/// axis into canonical order so output bytes are input-order
/// independent.
pub fn build_grid(
    base: &Scenario,
    resource: Option<String>,
    factors: &[f64],
    nodes: &[u64],
    policies: &[SchedulerPolicy],
) -> Result<SweepGrid, String> {
    if !factors.is_empty() && resource.is_none() {
        return Err("--factors needs --resource <shared resource id>".to_owned());
    }
    if let Some(res) = &resource {
        if base.machine.system_resource(res).is_none() {
            return Err(format!(
                "machine `{}` has no shared resource `{res}`",
                base.machine.name
            ));
        }
    }
    let mut factors = if factors.is_empty() {
        vec![1.0]
    } else {
        factors.to_vec()
    };
    let mut node_limits: Vec<Option<u64>> = if nodes.is_empty() {
        vec![base.options.node_limit]
    } else {
        nodes.iter().map(|&n| Some(n)).collect()
    };
    let mut policies = if policies.is_empty() {
        vec![base.options.scheduler]
    } else {
        policies.to_vec()
    };
    // Canonical coordinate order: output bytes must not depend on the
    // order axis values were given, the thread count, or the engine.
    factors.sort_unstable_by(f64::total_cmp);
    node_limits.sort_unstable();
    policies.sort_unstable_by_key(|p| match p {
        SchedulerPolicy::Fifo => 0,
        SchedulerPolicy::Backfill => 1,
    });
    Ok(SweepGrid {
        resource,
        factors,
        node_limits,
        policies,
    })
}

/// Cell metadata in `SweepGrid::index_of` order — the same nested
/// factor / node-limit / policy order both engines return results in.
#[must_use]
pub fn grid_cells(grid: &SweepGrid) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(grid.len());
    for &factor in &grid.factors {
        for &node_limit in &grid.node_limits {
            for &policy in &grid.policies {
                cells.push(SweepCell {
                    factor,
                    node_limit,
                    policy,
                });
            }
        }
    }
    cells
}

/// The sweep CSV header row.
pub const SWEEP_CSV_HEADER: &str = "workflow,machine,resource,factor,node_limit,policy,\
                                    makespan_s,node_seconds,utilization,error\n";

/// Renders one sweep cell as a CSV row (with trailing newline).
#[must_use]
pub fn sweep_row_csv(
    workflow: &str,
    machine: &str,
    resource: &str,
    cell: &SweepCell,
    result: &Result<SimResult, SimError>,
) -> String {
    let node_limit = cell.node_limit.map(|n| n.to_string()).unwrap_or_default();
    let (makespan, node_seconds, utilization, error) = match result {
        Ok(r) => (
            format!("{:.6}", r.makespan),
            format!("{:.3}", r.node_seconds()),
            format!("{:.6}", r.utilization()),
            String::new(),
        ),
        Err(e) => (
            String::new(),
            String::new(),
            String::new(),
            e.to_string().replace(',', ";"),
        ),
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{}\n",
        workflow,
        machine,
        resource,
        cell.factor,
        node_limit,
        policy_name(cell.policy),
        makespan,
        node_seconds,
        utilization,
        error
    )
}

/// Renders one sweep cell as a JSON row value.
#[must_use]
pub fn sweep_row_value(
    workflow: &str,
    machine: &str,
    resource: &str,
    cell: &SweepCell,
    result: &Result<SimResult, SimError>,
) -> serde_json::Value {
    let (makespan, node_seconds, utilization, error) = match result {
        Ok(r) => (
            serde_json::json!(r.makespan),
            serde_json::json!(r.node_seconds()),
            serde_json::json!(r.utilization()),
            serde_json::Value::Null,
        ),
        Err(e) => (
            serde_json::Value::Null,
            serde_json::Value::Null,
            serde_json::Value::Null,
            serde_json::json!(e.to_string()),
        ),
    };
    serde_json::json!({
        "workflow": workflow,
        "machine": machine,
        "resource": resource,
        "factor": cell.factor,
        "node_limit": cell.node_limit,
        "policy": policy_name(cell.policy),
        "makespan_s": makespan,
        "node_seconds": node_seconds,
        "utilization": utilization,
        "error": error
    })
}

/// Assembles the buffered `--format json` sweep document (pretty array
/// plus trailing newline).
pub fn sweep_json(rows: Vec<serde_json::Value>) -> Result<String, String> {
    let mut text =
        serde_json::to_string_pretty(&serde_json::Value::Array(rows)).map_err(|e| e.to_string())?;
    text.push('\n');
    Ok(text)
}

/// Renders one sweep row as a compact JSON line (`--format jsonl`).
pub fn sweep_row_jsonl(row: &serde_json::Value) -> Result<String, String> {
    let mut line = serde_json::to_string(row).map_err(|e| e.to_string())?;
    line.push('\n');
    Ok(line)
}

/// The full `wrm simulate` report: makespan line, throughput, time
/// breakdown.
pub fn simulate_report(
    spec_name: &str,
    machine_name: &str,
    result: &SimResult,
    structure: &Structure,
) -> Result<String, String> {
    let mut out = format!(
        "{} on {}: makespan {:.2} s, {} tasks, {:.0} node-seconds \
         ({:.1}% pool utilization)\n",
        spec_name,
        machine_name,
        result.makespan,
        result.task_times.len(),
        result.node_seconds(),
        result.utilization() * 100.0
    );
    let wf = characterize(&result.trace, structure).map_err(|e| e.to_string())?;
    if let Ok(tps) = wf.throughput() {
        out.push_str(&format!("throughput: {:.4e} tasks/s\n", tps.get()));
    }
    out.push_str("\ntime breakdown:\n");
    let b = result.trace.breakdown();
    for (cat, secs) in &b.categories {
        out.push_str(&format!("  {cat:<24} {secs:>12.2} s\n"));
    }
    Ok(out)
}

/// The `wrm simulate --summary` report: streaming aggregates only.
#[must_use]
pub fn summary_report(spec_name: &str, machine_name: &str, sum: &SimSummary) -> String {
    let mut out = format!(
        "{} on {}: makespan {:.2} s, {} tasks, {} spans, {:.0} node-seconds \
         ({:.1}% pool utilization)\n",
        spec_name,
        machine_name,
        sum.makespan,
        sum.n_tasks,
        sum.n_spans,
        sum.node_seconds,
        sum.utilization() * 100.0
    );
    out.push_str("\nchannels:\n");
    for ch in &sum.channels {
        out.push_str(&format!(
            "  {:<12} busy {:>10.2} s  {:>12.3e} B  {:>8} flows\n",
            ch.resource, ch.busy, ch.bytes, ch.flows
        ));
    }
    out.push_str(&format!(
        "\ncritical-path tail ({} task(s){}):\n",
        sum.critical_tail_len,
        if sum.critical_tail_len > sum.critical_tail.len() {
            ", last 32 shown"
        } else {
            ""
        }
    ));
    for name in &sum.critical_tail {
        out.push_str(&format!("  {name}\n"));
    }
    out
}

/// Percentile label: `0.5 -> "p50"`, `0.99 -> "p99"`. Round-number
/// quantiles print without a fraction (note `0.99 * 100.0` is not
/// exactly 99 in binary).
fn percentile_label(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("p{:.0}", pct.round())
    } else {
        format!("p{pct}")
    }
}

/// The `wrm simulate --reps N` report: streamed makespan distribution
/// summary with the certified analytic bracket; `percentiles` adds the
/// order-statistic percentile table with confidence intervals
/// (`--percentiles` on the CLI, `"percentiles": true` on `POST
/// /v1/mc`). Shared verbatim by both front ends.
#[must_use]
pub fn mc_report(spec_name: &str, machine_name: &str, mc: &McResult, percentiles: bool) -> String {
    let mut out = format!(
        "{} on {}: {} Monte-Carlo replication(s) (seed {}), makespan mean {:.2} s\n",
        spec_name, machine_name, mc.reps, mc.seed, mc.mean
    );
    out.push_str(&format!(
        "sampled range [{:.2}, {:.2}] s, certified bracket [{:.2}, {:.2}] s\n",
        mc.min, mc.max, mc.bracket_lo, mc.bracket_hi
    ));
    if mc.degenerate {
        out.push_str(
            "all phase quantities are point-mass: one replication reproduces the \
             deterministic run\n",
        );
    }
    if percentiles {
        out.push_str("\npercentiles (95% CI via order statistics):\n");
        for p in &mc.percentiles {
            out.push_str(&format!(
                "  {:<4} {:>12.2} s  CI [{:.2}, {:.2}] s\n",
                percentile_label(p.q),
                p.value,
                p.ci_lo,
                p.ci_hi
            ));
        }
    }
    out
}

/// The `wrm certify` document: the certificate as pretty JSON plus a
/// trailing newline.
pub fn certificate_json(cert: &Certificate) -> Result<String, String> {
    let mut text = serde_json::to_string_pretty(cert).map_err(|e| e.to_string())?;
    text.push('\n');
    Ok(text)
}

/// A linted file: `(path, source, diagnostics)`.
pub type LintBatch = [(String, String, Vec<wrm_lint::Diagnostic>)];

/// The `wrm lint` text report.
#[must_use]
pub fn lint_text(batch: &LintBatch) -> String {
    let mut out = String::new();
    let mut total_errors = 0;
    let mut total_warnings = 0;
    for (path, source, diags) in batch {
        for d in diags {
            out.push_str(&format!("{}\n\n", d.render(source)));
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == wrm_lint::Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        total_errors += errors;
        total_warnings += warnings;
        if diags.is_empty() {
            out.push_str(&format!("{path}: clean\n"));
        } else {
            out.push_str(&format!(
                "{path}: {errors} error(s), {warnings} warning(s)\n"
            ));
        }
    }
    if batch.len() > 1 {
        out.push_str(&format!(
            "{} file(s): {total_errors} error(s), {total_warnings} warning(s)\n",
            batch.len()
        ));
    }
    out
}

/// The `wrm lint --format json` report. Each file carries its two-sided
/// makespan certification when the spec compiles onto a known machine;
/// `null` otherwise (syntax errors, unknown machines, invalid
/// resources), so consumers can rely on the key existing.
pub fn lint_json(batch: &LintBatch) -> Result<String, String> {
    let files: Vec<serde_json::Value> = batch
        .iter()
        .map(|(path, source, diags)| {
            let cert = wrm_lang::compile_source(source)
                .ok()
                .and_then(|c| {
                    let machine = c.machine?;
                    wrm_sim::certify(&machine, &c.spec, &wrm_sim::SimOptions::default()).ok()
                })
                .and_then(|c| serde_json::to_value(&c).ok())
                .unwrap_or(serde_json::Value::Null);
            serde_json::json!({
                "file": path,
                "diagnostics": diags,
                "certification": cert,
            })
        })
        .collect();
    let mut text = serde_json::to_string_pretty(&files).map_err(|e| e.to_string())?;
    text.push('\n');
    Ok(text)
}

/// The `wrm lint --format sarif` report.
pub fn lint_sarif(batch: &LintBatch) -> Result<String, String> {
    let files: Vec<(String, Vec<wrm_lint::Diagnostic>)> = batch
        .iter()
        .map(|(path, _, diags)| (path.clone(), diags.clone()))
        .collect();
    let log = wrm_lint::to_sarif(&files);
    let mut text = serde_json::to_string_pretty(&log).map_err(|e| e.to_string())?;
    text.push('\n');
    Ok(text)
}
