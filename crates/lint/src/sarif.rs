//! SARIF 2.1.0 output for `wrm lint --format sarif`.
//!
//! Emits the subset of the Static Analysis Results Interchange Format
//! that code-scanning UIs consume: one run, the rule registry as
//! `tool.driver.rules`, one result per diagnostic with a physical
//! location (line/column plus byte region when known), and
//! machine-applicable `fixes` mirroring the linter's suggested edits.

use crate::diagnostics::{Diagnostic, Severity};
use crate::rules::RULES;
use serde_json::{json, Value};

/// The published 2.1.0 schema URI, embedded in the log file.
pub const SARIF_SCHEMA: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// Builds an object [`Value`] from `(key, value)` pairs. The vendored
/// `json!` macro only handles one literal nesting level, so the SARIF
/// tree is assembled bottom-up with this.
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Walks a `/`-separated path of object keys (a JSON-pointer subset:
/// no array indices, no escaping).
fn ptr<'a>(v: &'a Value, path: &str) -> Option<&'a Value> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .try_fold(v, |v, key| v.get(key))
}

/// Renders lint results for a batch of files as a SARIF 2.1.0 log.
pub fn to_sarif(files: &[(String, Vec<Diagnostic>)]) -> Value {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|r| {
            obj(vec![
                ("id", json!(r.code)),
                ("name", json!(r.name)),
                ("shortDescription", obj(vec![("text", json!(r.summary))])),
                (
                    "defaultConfiguration",
                    obj(vec![("level", json!(level(r.severity)))]),
                ),
            ])
        })
        .collect();
    let artifacts: Vec<Value> = files
        .iter()
        .map(|(path, _)| obj(vec![("location", obj(vec![("uri", json!(path))]))]))
        .collect();
    let mut results = Vec::new();
    for (index, (path, diags)) in files.iter().enumerate() {
        for d in diags {
            results.push(result(path, index, d));
        }
    }
    let driver = obj(vec![
        ("name", json!("wrm-lint")),
        ("version", json!(env!("CARGO_PKG_VERSION"))),
        ("informationUri", json!("https://docs.rs/wrm-lint")),
        ("rules", Value::Array(rules)),
    ]);
    let run = obj(vec![
        ("tool", obj(vec![("driver", driver)])),
        ("artifacts", Value::Array(artifacts)),
        ("results", Value::Array(results)),
    ]);
    obj(vec![
        ("$schema", json!(SARIF_SCHEMA)),
        ("version", json!("2.1.0")),
        ("runs", Value::Array(vec![run])),
    ])
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

fn artifact_location(path: &str, index: usize) -> Value {
    obj(vec![("uri", json!(path)), ("index", json!(index))])
}

fn result(path: &str, artifact_index: usize, d: &Diagnostic) -> Value {
    let mut message = d.message.clone();
    if let Some(help) = &d.help {
        message.push_str("\nhelp: ");
        message.push_str(help);
    }
    let mut physical = vec![("artifactLocation", artifact_location(path, artifact_index))];
    if d.span.line > 0 {
        let mut region = vec![
            ("startLine", json!(d.span.line)),
            ("startColumn", json!(d.span.col)),
        ];
        if d.span.has_range() {
            region.push(("endColumn", json!(d.span.col + d.span.len)));
            region.push(("byteOffset", json!(d.span.offset)));
            region.push(("byteLength", json!(d.span.len)));
        }
        physical.push(("region", obj(region)));
    }
    let location = obj(vec![("physicalLocation", obj(physical))]);
    let mut out = vec![
        ("ruleId", json!(d.code)),
        ("level", json!(level(d.severity))),
        ("message", obj(vec![("text", json!(message))])),
        ("locations", Value::Array(vec![location])),
    ];
    if let Some(i) = RULES.iter().position(|r| r.code == d.code) {
        out.push(("ruleIndex", json!(i)));
    }
    if !d.fixes.is_empty() {
        let fixes: Vec<Value> = d
            .fixes
            .iter()
            .map(|e| {
                let deleted = obj(vec![
                    ("byteOffset", json!(e.offset)),
                    ("byteLength", json!(e.len)),
                ]);
                let replacement = obj(vec![
                    ("deletedRegion", deleted),
                    ("insertedContent", obj(vec![("text", json!(e.replacement))])),
                ]);
                let change = obj(vec![
                    ("artifactLocation", artifact_location(path, artifact_index)),
                    ("replacements", Value::Array(vec![replacement])),
                ]);
                obj(vec![
                    ("description", obj(vec![("text", json!(e.title))])),
                    ("artifactChanges", Value::Array(vec![change])),
                ])
            })
            .collect();
        out.push(("fixes", Value::Array(fixes)));
    }
    obj(out)
}

/// Validates the subset of the SARIF 2.1.0 schema this crate relies
/// on. Not a full JSON-Schema engine — a structural check strict
/// enough to catch shape regressions in `to_sarif`.
pub fn validate_sarif(log: &Value) -> Result<(), String> {
    if log.as_object().is_none() {
        return Err("log must be an object".into());
    }
    if log.get("version").and_then(Value::as_str) != Some("2.1.0") {
        return Err("version must be the string \"2.1.0\"".into());
    }
    let schema = log
        .get("$schema")
        .and_then(Value::as_str)
        .ok_or("$schema must be a string")?;
    if !schema.contains("sarif") || !schema.contains("2.1.0") {
        return Err(format!("$schema does not look like SARIF 2.1.0: {schema}"));
    }
    let runs = log
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("runs must be an array")?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    for (ri, run) in runs.iter().enumerate() {
        let driver = ptr(run, "tool/driver")
            .filter(|d| d.as_object().is_some())
            .ok_or_else(|| format!("runs[{ri}].tool.driver must be an object"))?;
        driver
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("runs[{ri}].tool.driver.name must be a string"))?;
        let rules = driver
            .get("rules")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("runs[{ri}].tool.driver.rules must be an array"))?;
        for (i, rule) in rules.iter().enumerate() {
            rule.get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rules[{i}].id must be a string"))?;
        }
        // The driver must advertise the complete registry: a log that
        // silently drops a rule (say, a newly added one) would let
        // results reference codes a code-scanning UI cannot resolve.
        for r in RULES {
            if !rules
                .iter()
                .any(|rule| rule.get("id").and_then(Value::as_str) == Some(r.code))
            {
                return Err(format!(
                    "runs[{ri}].tool.driver.rules is missing registry rule `{}`",
                    r.code
                ));
            }
        }
        let results = run
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("runs[{ri}].results must be an array"))?;
        for (i, r) in results.iter().enumerate() {
            validate_result(i, r, rules)?;
        }
    }
    Ok(())
}

fn validate_result(i: usize, r: &Value, rules: &[Value]) -> Result<(), String> {
    let rule_id = r
        .get("ruleId")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("results[{i}].ruleId must be a string"))?;
    if !rules
        .iter()
        .any(|rule| rule.get("id").and_then(Value::as_str) == Some(rule_id))
    {
        return Err(format!(
            "results[{i}].ruleId `{rule_id}` does not appear in tool.driver.rules"
        ));
    }
    let level = r
        .get("level")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("results[{i}].level must be a string"))?;
    if !matches!(level, "none" | "note" | "warning" | "error") {
        return Err(format!("results[{i}].level `{level}` is not a SARIF level"));
    }
    ptr(r, "message/text")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("results[{i}].message.text must be a string"))?;
    if let Some(idx) = r.get("ruleIndex") {
        let idx = idx
            .as_u64()
            .ok_or_else(|| format!("results[{i}].ruleIndex must be an integer"))?;
        let rule = rules
            .get(idx as usize)
            .ok_or_else(|| format!("results[{i}].ruleIndex {idx} is out of range"))?;
        if rule.get("id").and_then(Value::as_str) != Some(rule_id) {
            return Err(format!(
                "results[{i}].ruleIndex {idx} does not point at rule `{rule_id}`"
            ));
        }
    }
    let locations = r
        .get("locations")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("results[{i}].locations must be an array"))?;
    for loc in locations {
        if let Some(region) = ptr(loc, "physicalLocation/region") {
            let start = region
                .get("startLine")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("results[{i}] region.startLine must be an integer"))?;
            if start == 0 {
                return Err(format!("results[{i}] region.startLine must be >= 1"));
            }
        }
        ptr(loc, "physicalLocation/artifactLocation/uri")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("results[{i}] artifactLocation.uri must be a string"))?;
    }
    if let Some(fixes) = r.get("fixes") {
        let fixes = fixes
            .as_array()
            .ok_or_else(|| format!("results[{i}].fixes must be an array"))?;
        for fix in fixes {
            let changes = fix
                .get("artifactChanges")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("results[{i}] fix.artifactChanges must be an array"))?;
            for ch in changes {
                let reps = ch
                    .get("replacements")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        format!("results[{i}] artifactChange.replacements must be an array")
                    })?;
                for rep in reps {
                    ptr(rep, "deletedRegion/byteOffset")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| {
                            format!(
                                "results[{i}] replacement.deletedRegion.byteOffset must be an \
                                 integer"
                            )
                        })?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{Span, SuggestedEdit};

    fn sample() -> Vec<(String, Vec<Diagnostic>)> {
        let d1 = Diagnostic::error("E002", Span::with_range(2, 5, 21, 7), "unknown dep");
        let d2 = Diagnostic::warning("W006", Span::with_range(3, 3, 40, 9), "redundant edge")
            .with_help("remove it")
            .with_fix(SuggestedEdit {
                offset: 40,
                len: 9,
                replacement: String::new(),
                title: "remove `after a`".into(),
            });
        let d3 = Diagnostic::error("E000", Span::unknown(), "could not read file");
        vec![
            ("workflows/a.wrm".into(), vec![d1, d2]),
            ("workflows/b.wrm".into(), vec![d3]),
        ]
    }

    /// Replaces a field, asserting it exists (test-only mutation since
    /// the vendored `Value` has no `IndexMut`).
    fn set(v: &mut Value, path: &[&str], new: Value) {
        if let [key] = path {
            let Value::Object(o) = v else {
                panic!("not an object")
            };
            let slot = o.iter_mut().find(|(k, _)| k == key).expect("field exists");
            slot.1 = new;
            return;
        }
        let next = match v {
            Value::Object(o) => &mut o.iter_mut().find(|(k, _)| k == path[0]).expect("field").1,
            Value::Array(a) => &mut a[path[0].parse::<usize>().expect("index")],
            _ => panic!("cannot descend into scalar"),
        };
        set(next, &path[1..], new);
    }

    #[test]
    fn sarif_log_passes_the_subset_validator() {
        let log = to_sarif(&sample());
        validate_sarif(&log).expect("generated SARIF should validate");
    }

    #[test]
    fn results_carry_regions_rule_indices_and_fixes() {
        let log = to_sarif(&sample());
        let results = ptr(&log, "runs").unwrap()[0]
            .get("results")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(results.len(), 3);
        let r0 = &results[0];
        assert_eq!(r0["ruleId"].as_str(), Some("E002"));
        assert_eq!(r0["level"].as_str(), Some("error"));
        let region = ptr(&r0["locations"][0], "physicalLocation/region").unwrap();
        assert_eq!(region["startLine"].as_u64(), Some(2));
        assert_eq!(region["byteOffset"].as_u64(), Some(21));
        assert_eq!(region["byteLength"].as_u64(), Some(7));
        let r1 = &results[1];
        assert!(ptr(r1, "message/text")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("help: remove it"));
        let rep = &r1["fixes"][0]["artifactChanges"][0]["replacements"][0];
        assert_eq!(
            ptr(rep, "deletedRegion/byteOffset").unwrap().as_u64(),
            Some(40)
        );
        assert_eq!(ptr(rep, "insertedContent/text").unwrap().as_str(), Some(""));
        // Unknown span: no region at all.
        let r2 = &results[2];
        assert!(ptr(&r2["locations"][0], "physicalLocation/region").is_none());
        assert_eq!(
            ptr(&r2["locations"][0], "physicalLocation/artifactLocation/uri")
                .unwrap()
                .as_str(),
            Some("workflows/b.wrm")
        );
    }

    #[test]
    fn validator_rejects_malformed_logs() {
        let mut log = to_sarif(&sample());
        set(&mut log, &["version"], json!("2.0.0"));
        assert!(validate_sarif(&log).is_err());
        let mut log = to_sarif(&sample());
        set(
            &mut log,
            &["runs", "0", "results", "0", "level"],
            json!("fatal"),
        );
        assert!(validate_sarif(&log).is_err());
        let mut log = to_sarif(&sample());
        set(
            &mut log,
            &["runs", "0", "results", "0", "ruleIndex"],
            json!(0),
        );
        assert!(validate_sarif(&log).is_err(), "ruleIndex/ruleId mismatch");
    }

    #[test]
    fn validator_rejects_rule_ids_absent_from_the_rules_table() {
        let mut log = to_sarif(&sample());
        set(
            &mut log,
            &["runs", "0", "results", "0", "ruleId"],
            json!("Z999"),
        );
        let err = validate_sarif(&log).expect_err("unknown ruleId should be rejected");
        assert!(err.contains("Z999"), "error names the offender: {err}");
    }

    #[test]
    fn validator_rejects_drivers_missing_registry_rules() {
        let mut log = to_sarif(&sample());
        set(
            &mut log,
            &["runs", "0", "tool", "driver", "rules"],
            json!([]),
        );
        let err = validate_sarif(&log).expect_err("dropped registry rules should be rejected");
        assert!(err.contains("missing registry rule"), "{err}");
    }

    #[test]
    fn driver_rules_cover_the_certification_rule_ids() {
        let log = to_sarif(&sample());
        let rules = ptr(&log, "runs").unwrap()[0]["tool"]["driver"]["rules"]
            .as_array()
            .unwrap();
        for code in ["W010", "W011", "W012", "E010"] {
            assert!(
                rules
                    .iter()
                    .any(|r| r.get("id").and_then(Value::as_str) == Some(code)),
                "driver rules missing `{code}`"
            );
        }
    }
}
