//! Analysis IR: the lowered form of a workflow spec the pass pipeline
//! runs on.
//!
//! Lowering resolves each task's phases against the machine model into
//! a per-replica duration [`Interval`] (`lo` = the task alone on every
//! channel, exactly mirroring the simulator's ideal duration; `hi` =
//! every declared flow competing at once under max-min sharing), and
//! each `system_bytes` phase into a [`FlowIr`] on an interned
//! [`ChannelIr`]. The DAG structure (dependency edges between task
//! *groups*) is kept at the AST granularity so diagnostics can point
//! back at `after` statements; the structural passes that need the
//! fully expanded replica graph go through [`wrm_lang::compile`]
//! instead.

use crate::diagnostics::Span;
use crate::interval::Interval;
use std::collections::BTreeMap;
use wrm_core::{Machine, SystemScaling};
use wrm_lang::ast::{PhaseAst, WorkflowAst};

/// One shared bandwidth channel (a machine system resource actually
/// used by the workflow).
#[derive(Debug, Clone)]
pub struct ChannelIr {
    /// Resource id (`ext`, `fs`, ...).
    pub id: String,
    /// Human-readable machine label ("System External", ...).
    pub label: String,
    /// Aggregate capacity in bytes/s (for per-node-in-use resources,
    /// the per-node peak; see `shared`).
    pub capacity: f64,
    /// True for fixed aggregate pools ([`SystemScaling::Aggregate`]),
    /// where concurrent flows genuinely compete. Per-node-in-use
    /// channels scale with the allocation and are never contended in
    /// the model.
    pub shared: bool,
    /// Number of flows that can be in flight at once across the whole
    /// workflow (replicas of a chained group count once).
    pub concurrent_flows: usize,
}

/// One task group's traffic on a channel (all `system_bytes` phases of
/// the group on that channel, merged).
#[derive(Debug, Clone)]
pub struct FlowIr {
    /// Index into [`AnalysisIr::channels`].
    pub channel: usize,
    /// Bytes moved by one replica.
    pub bytes: f64,
    /// Per-stream cap in bytes/s (`+inf` when uncapped); the minimum
    /// over the group's phases on this channel.
    pub cap: f64,
    /// Span of the first `system_bytes` phase on this channel.
    pub span: Span,
}

/// One dependency edge at AST granularity.
#[derive(Debug, Clone)]
pub struct DepIr {
    /// Index of the predecessor task group.
    pub target: usize,
    /// Specific replica, when the spec wrote `after name[i]`.
    pub index: Option<usize>,
    /// Span of the referenced name.
    pub span: Span,
    /// Span of the whole `after ...` statement.
    pub stmt_span: Span,
}

/// One task group (a `task` declaration, possibly replicated).
#[derive(Debug, Clone)]
pub struct TaskIr {
    /// Base name.
    pub name: String,
    /// Span of the task name.
    pub span: Span,
    /// Replica count (clamped to at least 1).
    pub count: usize,
    /// True when replicas run serially (`chain`).
    pub chain: bool,
    /// Nodes per replica.
    pub nodes: u64,
    /// Duration bounds for ONE replica.
    pub duration: Interval,
    /// Duration bounds for the group on the critical path: `duration`
    /// scaled by `count` when chained, else one replica (replicas run
    /// in parallel).
    pub serial: Interval,
    /// Replicas in flight at once (1 when chained).
    pub concurrent: usize,
    /// Dependency edges.
    pub deps: Vec<DepIr>,
    /// Traffic on shared channels.
    pub flows: Vec<FlowIr>,
}

/// The lowered workflow.
#[derive(Debug, Clone)]
pub struct AnalysisIr {
    /// Task groups in declaration order.
    pub tasks: Vec<TaskIr>,
    /// Interned channels.
    pub channels: Vec<ChannelIr>,
    /// Declared makespan target (seconds) and its span.
    pub makespan: Option<(f64, Span)>,
}

impl AnalysisIr {
    /// Lowers `ast` against `machine` (when resolved). Without a
    /// machine, durations collapse to zero and no channels are
    /// interned; the structural passes still work.
    pub fn lower(ast: &WorkflowAst, machine: Option<&Machine>) -> Self {
        let name_to_idx: BTreeMap<&str, usize> = ast
            .tasks
            .iter()
            .enumerate()
            .rev() // first declaration wins on duplicates
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();

        // Pass 1: intern channels and collect flows, so pass 2 can
        // price worst-case contention with the full concurrency count.
        let mut channels: Vec<ChannelIr> = Vec::new();
        let mut chan_idx: BTreeMap<String, usize> = BTreeMap::new();
        let mut flows_per_task: Vec<Vec<FlowIr>> = Vec::with_capacity(ast.tasks.len());
        for task in &ast.tasks {
            let concurrent = if task.chain { 1 } else { task.count.max(1) };
            let mut flows: Vec<FlowIr> = Vec::new();
            for phase in &task.phases {
                let PhaseAst::SystemBytes {
                    resource,
                    bytes,
                    cap,
                    span,
                    ..
                } = phase
                else {
                    continue;
                };
                let Some(r) = machine.and_then(|m| m.system_resource(resource)) else {
                    continue;
                };
                let ci = *chan_idx.entry(resource.clone()).or_insert_with(|| {
                    channels.push(ChannelIr {
                        id: resource.clone(),
                        label: r.label.clone(),
                        capacity: r.peak.get(),
                        shared: r.scaling == SystemScaling::Aggregate,
                        concurrent_flows: 0,
                    });
                    channels.len() - 1
                });
                let cap = cap.unwrap_or(f64::INFINITY);
                match flows.iter_mut().find(|f| f.channel == ci) {
                    Some(f) => {
                        f.bytes += bytes.max(0.0);
                        f.cap = f.cap.min(cap);
                    }
                    None => {
                        channels[ci].concurrent_flows += concurrent;
                        flows.push(FlowIr {
                            channel: ci,
                            bytes: bytes.max(0.0),
                            cap,
                            span: (*span).into(),
                        });
                    }
                }
            }
            flows_per_task.push(flows);
        }

        // Pass 2: per-replica duration intervals.
        let tasks = ast
            .tasks
            .iter()
            .zip(flows_per_task)
            .map(|(task, flows)| {
                let count = task.count.max(1);
                let concurrent = if task.chain { 1 } else { count };
                let nodes = task.nodes.max(1);
                let mut duration = Interval::ZERO;
                for phase in &task.phases {
                    duration = duration + phase_bounds(phase, machine, nodes, &channels);
                }
                let serial = if task.chain {
                    duration.scale(count as f64)
                } else {
                    duration
                };
                let deps = task
                    .after
                    .iter()
                    .filter_map(|a| {
                        Some(DepIr {
                            target: *name_to_idx.get(a.name.as_str())?,
                            index: a.index,
                            span: a.span.into(),
                            stmt_span: a.stmt_span.into(),
                        })
                    })
                    .collect();
                TaskIr {
                    name: task.name.clone(),
                    span: task.span.into(),
                    count,
                    chain: task.chain,
                    nodes,
                    duration,
                    serial,
                    concurrent,
                    deps,
                    flows,
                }
            })
            .collect();

        AnalysisIr {
            tasks,
            channels,
            makespan: ast
                .targets
                .makespan
                .map(|t| (t, ast.targets.makespan_span.into())),
        }
    }

    /// Flows on `channel`, as `(task index, flow)` pairs in task order.
    pub fn flows_on(&self, channel: usize) -> Vec<(usize, &FlowIr)> {
        self.tasks
            .iter()
            .enumerate()
            .flat_map(|(ti, t)| t.flows.iter().map(move |f| (ti, f)))
            .filter(|(_, f)| f.channel == channel)
            .collect()
    }
}

/// Duration bounds of one phase of one replica. The `lo` end mirrors
/// `WorkflowSpec::ideal_task_duration` (the replica alone on every
/// channel); the `hi` end assumes every declared flow in the workflow
/// competes at once on shared channels.
fn phase_bounds(
    phase: &PhaseAst,
    machine: Option<&Machine>,
    nodes: u64,
    channels: &[ChannelIr],
) -> Interval {
    // A phase quantity written as a distribution call contributes its
    // whole support [lo, hi] instead of the point nominal, so interval
    // analysis stays sound for every Monte-Carlo sample. Invalid
    // distributions (E011) fall back to the nominal mean.
    let (q_lo, q_hi) = quantity_bounds(phase);
    let node_rate = |resource: &str, eff: f64| -> Interval {
        let Some(r) = machine.and_then(|m| m.node_resource(resource)) else {
            return Interval::ZERO;
        };
        if eff <= 0.0 || eff.is_nan() || q_hi <= 0.0 {
            return Interval::ZERO;
        }
        let rate = r.peak_per_node.magnitude() * nodes as f64 * eff;
        if rate > 0.0 {
            Interval::new(q_lo.max(0.0) / rate, q_hi / rate)
        } else {
            Interval::ZERO
        }
    };
    match phase {
        PhaseAst::Compute { eff, .. } => node_rate(wrm_core::ids::COMPUTE, *eff),
        PhaseAst::NodeBytes { resource, eff, .. } => node_rate(resource, *eff),
        PhaseAst::SystemBytes { resource, cap, .. } => {
            let Some(r) = machine.and_then(|m| m.system_resource(resource)) else {
                return Interval::ZERO;
            };
            if q_hi <= 0.0 {
                return Interval::ZERO;
            }
            let cap = cap.unwrap_or(f64::INFINITY);
            let agg = r.aggregate_for(nodes as f64).get();
            let alone = cap.min(agg);
            let lo = if alone > 0.0 {
                q_lo.max(0.0) / alone
            } else {
                f64::INFINITY
            };
            let contended = channels
                .iter()
                .find(|c| c.id == *resource)
                .filter(|c| c.shared && c.concurrent_flows > 1)
                .map_or(alone, |c| cap.min(c.capacity / c.concurrent_flows as f64));
            let hi = if contended > 0.0 {
                q_hi / contended
            } else {
                f64::INFINITY
            };
            Interval::new(lo, hi)
        }
        PhaseAst::Overhead { .. } => Interval::new(q_lo.max(0.0), q_hi.max(0.0)),
    }
}

/// The phase quantity's support: the distribution bounds when a valid
/// distribution call is attached, else the nominal point repeated.
fn quantity_bounds(phase: &PhaseAst) -> (f64, f64) {
    let nominal = match phase {
        PhaseAst::Compute { flops, .. } => *flops,
        PhaseAst::NodeBytes { bytes, .. } | PhaseAst::SystemBytes { bytes, .. } => *bytes,
        PhaseAst::Overhead { seconds, .. } => *seconds,
    };
    // An invalid empirical set makes the mean NaN; treat it as no
    // volume (E011 already reports the phase).
    let nominal = if nominal.is_finite() { nominal } else { 0.0 };
    match phase.dist() {
        Some(d) => {
            let dist = d.to_dist();
            if dist.validate().is_err() {
                return (nominal, nominal);
            }
            dist.bounds()
        }
        None => (nominal, nominal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> AnalysisIr {
        let ast = wrm_lang::parse(src).unwrap();
        let machine = ast.machine.as_deref().and_then(wrm_core::machines::by_name);
        AnalysisIr::lower(&ast, machine.as_ref())
    }

    #[test]
    fn lowers_the_lcls_shape() {
        let ir = lower(
            "workflow lcls on cori-hsw {
               targets { makespan 10min }
               task analyze[5] { nodes 32 system_bytes ext 1TB cap 1GB/s }
               task merge { nodes 1 system_bytes bb 5GB after analyze }
             }",
        );
        assert_eq!(ir.tasks.len(), 2);
        assert_eq!(ir.channels.len(), 2);
        let (t, _) = ir.makespan.unwrap();
        assert_eq!(t, 600.0);
        let analyze = &ir.tasks[0];
        // 1 TB over the 1 GB/s stream cap: exactly 1000 s even alone,
        // and the cap also bounds the contended case (5 flows on a
        // 5 GB/s link still get their 1 GB/s).
        assert!((analyze.duration.lo - 1000.0).abs() < 1e-6);
        assert!((analyze.duration.hi - 1000.0).abs() < 1e-6);
        assert_eq!(analyze.concurrent, 5);
        let merge = &ir.tasks[1];
        assert_eq!(merge.deps.len(), 1);
        assert_eq!(merge.deps[0].target, 0);
    }

    #[test]
    fn chained_groups_serialize_their_replicas() {
        let ir = lower(
            "workflow w on pm-cpu {
               task iter[4] chain { overhead step 10s }
             }",
        );
        let iter = &ir.tasks[0];
        assert_eq!(iter.concurrent, 1);
        assert!((iter.duration.lo - 10.0).abs() < 1e-12);
        assert!((iter.serial.lo - 40.0).abs() < 1e-12);
    }

    #[test]
    fn contention_widens_uncapped_flows() {
        // Two concurrent uncapped 1 TB transfers on cori's 5 GB/s ext:
        // alone 200 s, contended 400 s.
        let ir = lower(
            "workflow w on cori-hsw {
               task a { system_bytes ext 1TB }
               task b { system_bytes ext 1TB }
             }",
        );
        for t in &ir.tasks {
            assert!((t.duration.lo - 200.0).abs() < 1e-6, "{:?}", t.duration);
            assert!((t.duration.hi - 400.0).abs() < 1e-6, "{:?}", t.duration);
        }
    }

    #[test]
    fn without_a_machine_durations_collapse_to_zero() {
        let ir = lower("workflow w { task a { compute 1PFLOPS system_bytes fs 1TB } }");
        assert_eq!(ir.tasks[0].duration, Interval::ZERO);
        assert!(ir.channels.is_empty());
    }
}
