//! # wrm-lint — semantic static analysis for `.wrm` workflow specs
//!
//! Runs a registry of semantic rules over a parsed [`wrm_lang`]
//! workflow AST and the resolved machine model, producing stable-coded
//! [`Diagnostic`]s with source spans.
//!
//! Beyond the per-statement checks in [`rules`], the analyzer layer
//! lowers the workflow into a small IR ([`ir`]), runs DAG dataflow
//! analyses over it ([`dataflow`], [`passes`]) — including an interval
//! abstract interpretation ([`interval`]) that certifies a
//! critical-path lower bound on makespan — and emits
//! machine-applicable fix-its ([`fixit`]) and SARIF 2.1.0 logs
//! ([`sarif`]).

pub mod dataflow;
pub mod diagnostics;
pub mod fixit;
pub mod interval;
pub mod ir;
pub mod passes;
pub mod rules;
pub mod sarif;

pub use diagnostics::{Diagnostic, Severity, Span, SuggestedEdit};
pub use fixit::{apply as apply_fixes, collect_edits, FixOutcome};
pub use interval::Interval;
pub use ir::AnalysisIr;
pub use rules::{lint_ast, lint_errors, lint_source, max_severity, rule, RuleInfo, RULES};
pub use sarif::{to_sarif, validate_sarif};
