//! # wrm-lint — semantic static analysis for `.wrm` workflow specs
//!
//! Runs a registry of semantic rules over a parsed [`wrm_lang`]
//! workflow AST and the resolved machine model, producing stable-coded
//! [`Diagnostic`]s with source spans.

pub mod diagnostics;
pub mod rules;

pub use diagnostics::{Diagnostic, Severity, Span};
pub use rules::{lint_ast, lint_errors, lint_source, max_severity, rule, RuleInfo, RULES};
