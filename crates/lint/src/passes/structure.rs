//! Structural DAG passes: unreachable tasks (E009) and redundant
//! transitive edges (W006).

use super::AnalysisContext;
use crate::dataflow;
use crate::diagnostics::{Diagnostic, SuggestedEdit};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use wrm_lang::ast::{AfterRef, WorkflowAst};

/// E009: tasks that sit *downstream* of a dependency cycle. The cycle
/// itself is E004; the tasks it strands are a separate defect — they
/// parse, they even look schedulable locally, but no schedule can ever
/// start them.
pub fn unreachable_tasks(ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) {
    let ir = &ctx.ir;
    let topo = dataflow::topo(ir);
    if topo.stuck.is_empty() {
        return;
    }
    let stuck: BTreeSet<usize> = topo.stuck.iter().copied().collect();
    // Forward adjacency restricted to the stuck cone.
    let mut succs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &v in &stuck {
        for d in &ir.tasks[v].deps {
            if stuck.contains(&d.target) {
                succs.entry(d.target).or_default().push(v);
            }
        }
    }
    let on_cycle = |start: usize| -> bool {
        let mut seen = BTreeSet::new();
        let mut work: Vec<usize> = succs.get(&start).cloned().unwrap_or_default();
        while let Some(v) = work.pop() {
            if v == start {
                return true;
            }
            if seen.insert(v) {
                work.extend(succs.get(&v).cloned().unwrap_or_default());
            }
        }
        false
    };
    for &v in &topo.stuck {
        if on_cycle(v) {
            continue; // the cycle members already carry E004
        }
        let task = &ir.tasks[v];
        out.push(
            Diagnostic::error(
                "E009",
                task.span,
                format!(
                    "task `{}` can never start: it depends, possibly transitively, on a \
                     dependency cycle",
                    task.name
                ),
            )
            .with_help("break the cycle reported by E004 to make this task schedulable"),
        );
    }
}

/// W006: `after` edges already implied by the rest of the graph
/// (transitive edges and duplicates). Each carries a fix-it deleting
/// the statement; removing it cannot change any schedule.
pub fn redundant_edges(ast: &WorkflowAst, ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) {
    let Some(compiled) = &ctx.compiled else {
        return;
    };
    let Ok(dag) = compiled.spec.to_dag_with(|_| 0.0) else {
        return;
    };
    let Ok(redundant) = dag.redundant_edges() else {
        return;
    };
    let redundant: BTreeSet<(usize, usize)> =
        redundant.into_iter().map(|(u, v)| (u.0, v.0)).collect();
    let counts: BTreeMap<&str, usize> = ast
        .tasks
        .iter()
        .map(|t| (t.name.as_str(), t.count.max(1)))
        .collect();
    let replica = |base: &str, i: usize, count: usize| -> String {
        if count == 1 {
            base.to_owned()
        } else {
            format!("{base}[{i}]")
        }
    };
    for t in &ast.tasks {
        let count = t.count.max(1);
        let mut seen: BTreeSet<(&str, Option<usize>)> = BTreeSet::new();
        for dep in &t.after {
            let shown = match dep.index {
                Some(i) => format!("{}[{i}]", dep.name),
                None => dep.name.clone(),
            };
            if !seen.insert((dep.name.as_str(), dep.index)) {
                out.push(duplicate_edge(t.name.as_str(), &shown, dep));
                continue;
            }
            let Some(&dep_count) = counts.get(dep.name.as_str()) else {
                continue;
            };
            if dep.name == t.name {
                continue;
            }
            // The `after` statement is redundant only if EVERY replica
            // edge it expands to is implied by the rest of the graph.
            let froms: Vec<String> = match dep.index {
                Some(i) => vec![replica(&dep.name, i, dep_count)],
                None => (0..dep_count)
                    .map(|j| replica(&dep.name, j, dep_count))
                    .collect(),
            };
            let mut edges = 0usize;
            let mut all_implied = true;
            'edges: for i in 0..count {
                let Some(to) = dag.task_by_name(&replica(&t.name, i, count)) else {
                    all_implied = false;
                    break;
                };
                for from in &froms {
                    let Some(from) = dag.task_by_name(from) else {
                        all_implied = false;
                        break 'edges;
                    };
                    edges += 1;
                    if !redundant.contains(&(from.0, to.0)) {
                        all_implied = false;
                        break 'edges;
                    }
                }
            }
            if edges > 0 && all_implied {
                out.push(
                    Diagnostic::warning(
                        "W006",
                        dep.stmt_span.into(),
                        format!(
                            "`after {shown}` on task `{}` is redundant: `{}` already precedes \
                             `{}` through other dependencies",
                            t.name, dep.name, t.name
                        ),
                    )
                    .with_help(
                        "removing the edge cannot change any schedule; `wrm lint --fix` \
                         deletes it",
                    )
                    .with_fix(SuggestedEdit::replace_span(
                        dep.stmt_span.into(),
                        "",
                        format!("remove `after {shown}`"),
                    )),
                );
            }
        }
    }
}

fn duplicate_edge(task: &str, shown: &str, dep: &AfterRef) -> Diagnostic {
    Diagnostic::warning(
        "W006",
        dep.stmt_span.into(),
        format!("duplicate `after {shown}` on task `{task}`"),
    )
    .with_help("the same edge is already declared on this task")
    .with_fix(SuggestedEdit::replace_span(
        dep.stmt_span.into(),
        "",
        format!("remove the duplicate `after {shown}`"),
    ))
}
