//! The analyzer pass pipeline.
//!
//! [`AnalysisContext::build`] lowers the parsed workflow once (AST ->
//! [`AnalysisIr`], plus the compiled spec and roofline model when the
//! spec is error-free), and [`run`] feeds it to every pass:
//!
//! * [`structure`] — DAG shape: unreachable tasks (E009), redundant
//!   transitive `after` edges (W006);
//! * [`channels`] — shared-bandwidth reasoning: channels that can
//!   never saturate (W007), max-min starvation against the makespan
//!   target (W008);
//! * [`bounds`] — the simulator-exact two-sided certificate: targets
//!   inside the certified interval (W010), provably reducible channel
//!   capacity (W011), channel-independent lower bounds (W012), and
//!   targets infeasible under any channel provisioning (E010);
//! * [`makespan`] — interval abstract interpretation: a certified
//!   critical-path lower bound vs. the declared target (W009,
//!   suppressed when E010 makes the stronger statement).

pub mod bounds;
pub mod channels;
pub mod makespan;
pub mod structure;

use crate::diagnostics::Diagnostic;
use crate::ir::AnalysisIr;
use wrm_core::{Machine, RooflineModel};
use wrm_lang::ast::WorkflowAst;
use wrm_lang::Compiled;

/// Everything the passes share, built once per lint run.
pub struct AnalysisContext {
    /// The resolved target machine, when `on <machine>` names one.
    pub machine: Option<Machine>,
    /// The lowered workflow (always available post-parse).
    pub ir: AnalysisIr,
    /// The compiled spec with the fully expanded replica graph. `None`
    /// when the spec has error-severity diagnostics or fails to
    /// compile; semantic passes that need trustworthy structure gate
    /// on this.
    pub compiled: Option<Compiled>,
    /// The workflow's roofline model on `machine`, when it builds.
    pub model: Option<RooflineModel>,
}

impl AnalysisContext {
    /// Lowers `ast` and, when `has_errors` is false, compiles it and
    /// builds the roofline model.
    pub fn build(ast: &WorkflowAst, machine: Option<Machine>, has_errors: bool) -> Self {
        let ir = AnalysisIr::lower(ast, machine.as_ref());
        let compiled = if has_errors {
            None
        } else {
            wrm_lang::compile(ast).ok()
        };
        let model = match (&compiled, &machine) {
            (Some(c), Some(m)) => c
                .characterization()
                .ok()
                .and_then(|wf| RooflineModel::build_lenient(m, &wf).ok()),
            _ => None,
        };
        Self {
            machine,
            ir,
            compiled,
            model,
        }
    }
}

/// Runs every analyzer pass.
pub fn run(ast: &WorkflowAst, ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) {
    structure::unreachable_tasks(ctx, out);
    structure::redundant_edges(ast, ctx, out);
    channels::unsaturable(ctx, out);
    channels::starved(ctx, out);
    let e010_fired = bounds::certified_interval(ctx, out);
    makespan::interval_bound(ctx, out, e010_fired);
}

/// Human-readable bytes/s for diagnostics ("1.50 GB/s").
pub(crate) fn fmt_rate(v: f64) -> String {
    format!("{}/s", fmt_bytes(v))
}

/// Human-readable bytes for diagnostics ("1.00 TB").
pub(crate) fn fmt_bytes(v: f64) -> String {
    if !v.is_finite() {
        return "unbounded B".to_owned();
    }
    const STEPS: &[(f64, &str)] = &[
        (1e15, "PB"),
        (1e12, "TB"),
        (1e9, "GB"),
        (1e6, "MB"),
        (1e3, "KB"),
    ];
    for &(scale, unit) in STEPS {
        if v >= scale {
            return format!("{:.2} {unit}", v / scale);
        }
    }
    format!("{v:.0} B")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_format_with_si_prefixes() {
        assert_eq!(fmt_rate(1.5e9), "1.50 GB/s");
        assert_eq!(fmt_rate(1e12), "1.00 TB/s");
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2.5e6), "2.50 MB");
        assert_eq!(fmt_bytes(f64::INFINITY), "unbounded B");
    }
}
