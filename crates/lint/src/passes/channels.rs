//! Shared-channel passes: W007 (a contention ceiling that can never
//! bind) and W008 (max-min starvation against the makespan target).

use super::{fmt_bytes, fmt_rate, AnalysisContext};
use crate::diagnostics::Diagnostic;
use wrm_sim::{max_min_rates, FlowDemand};

/// W007: an aggregate channel where every flow is capped and the caps
/// sum to strictly less than the capacity — the channel's roofline
/// ceiling can never bind, so the spec's contention budget is dead.
pub fn unsaturable(ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) {
    if ctx.compiled.is_none() {
        return;
    }
    let ir = &ctx.ir;
    for (ci, ch) in ir.channels.iter().enumerate() {
        if !ch.shared || ch.capacity <= 0.0 || !ch.capacity.is_finite() {
            continue;
        }
        let flows = ir.flows_on(ci);
        if flows.is_empty() || flows.iter().any(|(_, f)| !f.cap.is_finite()) {
            continue;
        }
        let cap_sum: f64 = flows
            .iter()
            .map(|&(ti, f)| f.cap * ir.tasks[ti].concurrent as f64)
            .sum();
        if cap_sum < ch.capacity * (1.0 - 1e-9) {
            let anchor = flows
                .iter()
                .map(|(_, f)| f.span)
                .min()
                .expect("non-empty flows");
            out.push(
                Diagnostic::warning(
                    "W007",
                    anchor,
                    format!(
                        "channel `{}` can never saturate: every stream is capped and the caps \
                         sum to {} of its {} capacity",
                        ch.id,
                        fmt_rate(cap_sum),
                        fmt_rate(ch.capacity)
                    ),
                )
                .with_help(format!(
                    "the `{}` ceiling can never bind; raise the caps or budget against \
                     {} as the effective capacity",
                    ch.label,
                    fmt_rate(cap_sum)
                )),
            );
        }
    }
}

/// W008: under max-min fair sharing with every declared flow in
/// flight, some task's share of a channel stays below the rate it
/// needs to move its bytes within the makespan target. This is the
/// paper's LCLS "bad day" failure mode, caught statically.
pub fn starved(ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) {
    if ctx.compiled.is_none() {
        return;
    }
    let ir = &ctx.ir;
    let Some((target, _)) = ir.makespan else {
        return;
    };
    if target <= 0.0 || target.is_nan() {
        return;
    }
    for (ci, ch) in ir.channels.iter().enumerate() {
        if !ch.shared || ch.capacity <= 0.0 || !ch.capacity.is_finite() {
            continue;
        }
        if ch.concurrent_flows < 2 {
            // A single stream cannot be starved by contention; slow
            // channels show up through W005/W009 instead.
            continue;
        }
        let flows = ir.flows_on(ci);
        let mut demands: Vec<FlowDemand> = Vec::new();
        let mut groups: Vec<(usize, &crate::ir::FlowIr, usize)> = Vec::new();
        for &(ti, f) in &flows {
            groups.push((ti, f, demands.len()));
            for _ in 0..ir.tasks[ti].concurrent {
                demands.push(FlowDemand {
                    id: demands.len(),
                    cap: f.cap,
                });
            }
        }
        let rates = max_min_rates(ch.capacity, &demands);
        for (ti, f, first) in groups {
            let task = &ir.tasks[ti];
            // Replicas of a group are symmetric: they all get the rate
            // of the group's first demand.
            let share = rates[first].rate;
            // A chained group pushes every replica's bytes through one
            // stream inside the target window.
            let total_bytes = if task.chain {
                f.bytes * task.count as f64
            } else {
                f.bytes
            };
            if total_bytes <= 0.0 {
                continue;
            }
            let needed = total_bytes / target;
            if needed > share * (1.0 + 1e-9) {
                out.push(
                    Diagnostic::warning(
                        "W008",
                        f.span,
                        format!(
                            "task `{}` is starved on channel `{}`: its max-min fair share is \
                             {}, below the {} needed to move {} within the {target}s makespan \
                             target",
                            task.name,
                            ch.id,
                            fmt_rate(share),
                            fmt_rate(needed),
                            fmt_bytes(total_bytes)
                        ),
                    )
                    .with_help(format!(
                        "{} concurrent streams compete for {} on `{}`; stagger the tasks, \
                         raise the capacity, or relax the target",
                        ch.concurrent_flows,
                        fmt_rate(ch.capacity),
                        ch.label
                    )),
                );
            }
        }
    }
}
