//! W009: the interval abstract-interpretation pass.
//!
//! Propagates per-task duration intervals through the DAG with the
//! earliest-finish dataflow analysis and compares the *certified lower
//! end* of the critical path against the declared makespan target.
//! This is strictly stronger than W005's aggregate roofline bound on
//! heterogeneous multi-stage chains: the roofline prices total volume
//! against total bandwidth, while the chain bound prices the
//! *sequencing*.

use super::AnalysisContext;
use crate::dataflow;
use crate::diagnostics::{Diagnostic, SuggestedEdit};

/// Emits W009 when the critical-path lower bound provably exceeds the
/// makespan target. `suppressed` is set when E010 already made the
/// strictly stronger statement (infeasible even with channels zeroed),
/// so repeating the weaker chain bound would be noise.
pub fn interval_bound(ctx: &AnalysisContext, out: &mut Vec<Diagnostic>, suppressed: bool) {
    if suppressed || ctx.compiled.is_none() {
        return;
    }
    let ir = &ctx.ir;
    let Some((target, target_span)) = ir.makespan else {
        return;
    };
    if target <= 0.0 || target.is_nan() {
        return;
    }
    let topo = dataflow::topo(ir);
    if !topo.stuck.is_empty() {
        return; // cycles already surfaced as E004/E009
    }
    let ef = dataflow::earliest_finish(ir, &topo);
    let (chain, bound) = dataflow::critical_path(ir, &ef);
    if chain.is_empty() || !bound.lo.is_finite() {
        return;
    }
    if target >= bound.lo * (1.0 - 1e-9) {
        return;
    }
    let witness = chain
        .iter()
        .map(|&i| ir.tasks[i].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ");
    // The roofline bound may be even tighter; the fix-it raises the
    // target past both.
    let model_lb = ctx
        .model
        .as_ref()
        .and_then(wrm_core::RooflineModel::makespan_lower_bound)
        .map(wrm_core::Seconds::get)
        .filter(|lb| lb.is_finite());
    let mut help = format!(
        "interval analysis certifies the critical path takes {bound} s \
         even with every channel to itself"
    );
    if let Some(lb) = model_lb {
        let binding = ctx
            .model
            .as_ref()
            .and_then(|m| m.binding_ceiling())
            .map_or_else(|| "parallelism wall".to_owned(), |c| c.label.clone());
        help.push_str(&format!(
            "; the roofline lower bound is {lb:.3}s (binding ceiling: {binding})"
        ));
    }
    let certified = model_lb.map_or(bound.lo, |lb| lb.max(bound.lo));
    let mut diag = Diagnostic::warning(
        "W009",
        target_span,
        format!(
            "makespan target {target}s is infeasible: the dependency chain {witness} alone \
             needs at least {:.3}s",
            bound.lo
        ),
    )
    .with_help(help);
    if target_span.has_range() && certified.is_finite() {
        let raised = format!("{}s", certified.ceil());
        diag = diag.with_fix(SuggestedEdit::replace_span(
            target_span,
            raised.clone(),
            format!("raise the makespan target to {raised}"),
        ));
    }
    out.push(diag);
}
