//! The certification pass: W010/W011/W012/E010 over the simulator-exact
//! two-sided makespan certificate ([`wrm_sim::certify`]).
//!
//! Where [`super::makespan`] (W009) reasons on the linter's own interval
//! dataflow, this pass certifies against the *simulator's* lowered form:
//! the same validation, the same per-phase semantics, and — new with the
//! certificate — a finite contention-aware upper bound. That buys three
//! kinds of statement the one-sided analysis cannot make:
//!
//! * **W010** — the declared makespan target falls *inside* the
//!   certified interval `[lo, hi)`: neither provably met nor provably
//!   missed. The report carries the full witness decomposition (chain,
//!   channel floors, pool floor, binding strengths) so the reader can
//!   see exactly which term to attack. The rendering is deterministic
//!   byte-for-byte across runs.
//! * **E010** — the target is below the certified lower bound *with
//!   every channel priced at zero*: no channel provisioning, however
//!   generous, can meet it. Strictly stronger than W009, which it
//!   suppresses.
//! * **W011** — an aggregate channel whose capacity can provably be
//!   reduced to the sum of its stream caps without moving either end of
//!   the certified interval: the provisioned headroom is dead. Proved by
//!   re-certifying on the reduced machine, not by heuristics.
//! * **W012** — zeroing every channel leaves the certified lower bound
//!   unchanged: the fixed-phase chain and node-pool occupancy alone
//!   force it, so channel capacity sweeps provably cannot help.

use super::{fmt_rate, AnalysisContext};
use crate::diagnostics::{Diagnostic, Span, SuggestedEdit};
use wrm_sim::{certify, Certificate, SimOptions};

/// Matches the engine-parity tolerance used by W007/W009.
const TOL: f64 = 1e-9;

/// Runs every certificate-backed rule. Returns `true` when E010 fired,
/// so the caller can suppress the weaker W009.
pub fn certified_interval(ctx: &AnalysisContext, out: &mut Vec<Diagnostic>) -> bool {
    let (Some(machine), Some(compiled)) = (ctx.machine.as_ref(), ctx.compiled.as_ref()) else {
        return false;
    };
    let options = SimOptions::default();
    // Scenarios the simulator rejects (e.g. unknown resources, already
    // surfaced as W001) have no certificate; stay quiet.
    let Ok(cert) = certify(machine, &compiled.spec, &options) else {
        return false;
    };
    channel_independent(ctx, &cert, out);
    overprovisioned(ctx, machine, compiled, &options, &cert, out);
    target_interval(ctx, &cert, out)
}

/// W012: the certified lower bound survives zeroing every channel.
fn channel_independent(ctx: &AnalysisContext, cert: &Certificate, out: &mut Vec<Diagnostic>) {
    let Some(anchor) = first_flow_span(ctx) else {
        return; // no channel traffic: nothing to declare futile
    };
    if !(cert.lo.is_finite() && cert.lo > 0.0) {
        return;
    }
    if cert.lo_zero_channel < cert.lo * (1.0 - TOL) {
        return;
    }
    out.push(
        Diagnostic::warning(
            "W012",
            anchor,
            format!(
                "workflow is node-pool/chain-bound: with every channel infinitely fast the \
                 certified makespan lower bound is still {:.3}s (currently {:.3}s); channel \
                 capacity sweeps provably cannot help",
                cert.lo_zero_channel, cert.lo
            ),
        )
        .with_help(format!(
            "fixed phases force {:.3}s through the dependency chain and {:.3}s through \
             node-pool occupancy ({} nodes); cut compute/overhead volume or add nodes \
             instead of tuning bandwidth",
            cert.lo_zero_channel, cert.pool_floor_fixed, cert.pool_nodes
        )),
    );
}

/// W011: per aggregate channel, all streams capped and the caps sum
/// below capacity — and re-certifying on a machine scaled down to that
/// sum provably leaves both ends of the interval in place.
fn overprovisioned(
    ctx: &AnalysisContext,
    machine: &wrm_core::Machine,
    compiled: &wrm_lang::Compiled,
    options: &SimOptions,
    cert: &Certificate,
    out: &mut Vec<Diagnostic>,
) {
    let ir = &ctx.ir;
    for (ci, ch) in ir.channels.iter().enumerate() {
        if !ch.shared || ch.capacity <= 0.0 || !ch.capacity.is_finite() {
            continue;
        }
        let flows = ir.flows_on(ci);
        if flows.is_empty() || flows.iter().any(|(_, f)| !f.cap.is_finite()) {
            continue;
        }
        let cap_sum: f64 = flows
            .iter()
            .map(|&(ti, f)| f.cap * ir.tasks[ti].concurrent as f64)
            .sum();
        if cap_sum.is_nan() || cap_sum <= 0.0 || cap_sum >= ch.capacity * (1.0 - TOL) {
            continue;
        }
        let Ok(reduced) = machine.with_scaled_resource(&ch.id, cap_sum / ch.capacity) else {
            continue;
        };
        let Ok(again) = certify(&reduced, &compiled.spec, options) else {
            continue;
        };
        let unmoved = |a: f64, b: f64| (a - b).abs() <= a.abs() * TOL;
        if !(unmoved(cert.lo, again.lo) && unmoved(cert.hi, again.hi)) {
            continue;
        }
        let anchor = flows
            .iter()
            .map(|(_, f)| f.span)
            .min()
            .expect("non-empty flows");
        out.push(
            Diagnostic::warning(
                "W011",
                anchor,
                format!(
                    "channel `{}` is over-provisioned: reducing its capacity from {} to {} \
                     provably leaves the certified makespan interval [{:.3}s, {:.3}s] unchanged",
                    ch.id,
                    fmt_rate(ch.capacity),
                    fmt_rate(cap_sum),
                    cert.lo,
                    cert.hi
                ),
            )
            .with_help(format!(
                "every stream on `{}` is capped; the spare {} of bandwidth cannot be used \
                 by this workflow, so budget or procure against {} instead",
                ch.label,
                fmt_rate(ch.capacity - cap_sum),
                fmt_rate(cap_sum)
            )),
        );
    }
}

/// W010/E010 against the declared makespan target. Returns `true` when
/// E010 fired.
fn target_interval(ctx: &AnalysisContext, cert: &Certificate, out: &mut Vec<Diagnostic>) -> bool {
    let Some((target, target_span)) = ctx.ir.makespan else {
        return false;
    };
    if target <= 0.0 || target.is_nan() {
        return false;
    }

    // E010: below the zero-channel bound — infeasible under ANY channel
    // provisioning. Strictly stronger than W009's chain bound.
    if cert.lo_zero_channel.is_finite() && target < cert.lo_zero_channel * (1.0 - TOL) {
        let mut diag = Diagnostic::error(
            "E010",
            target_span,
            format!(
                "makespan target {target}s is infeasible under any channel provisioning: \
                 with every channel infinitely fast, fixed phases alone still need {:.3}s",
                cert.lo_zero_channel
            ),
        )
        .with_help(format!(
            "the zero-channel bound is max(fixed-phase chain, node-pool floor {:.3}s); \
             the full certified interval is [{:.3}s, {:.3}s]",
            cert.pool_floor_fixed, cert.lo, cert.hi
        ));
        if target_span.has_range() && cert.lo.is_finite() {
            let raised = format!("{}s", cert.lo.ceil());
            diag = diag.with_fix(SuggestedEdit::replace_span(
                target_span,
                raised.clone(),
                format!("raise the makespan target to {raised}"),
            ));
        }
        out.push(diag);
        return true;
    }

    // W010: inside the certified interval — undetermined. Below `lo` is
    // W009/E010 territory; at or above `hi` the target is certified met
    // and needs no diagnostic.
    if cert.lo.is_finite() && target >= cert.lo * (1.0 - TOL) && target < cert.hi * (1.0 - TOL) {
        let witness = cert.cp_witness.join(" -> ");
        let mut floors: Vec<String> = cert
            .channel_floors
            .iter()
            .map(|c| format!("`{}` {:.3}s", c.resource, c.floor))
            .collect();
        floors.push(format!("node pool {:.3}s", cert.pool_floor));
        let binding: Vec<String> = cert
            .terms
            .iter()
            .filter(|t| t.binds != "no")
            .map(|t| match &t.resource {
                Some(r) => format!("{} `{r}`={}", t.class, t.binds),
                None => format!("{}={}", t.class, t.binds),
            })
            .collect();
        out.push(
            Diagnostic::warning(
                "W010",
                target_span,
                format!(
                    "makespan target {target}s is undetermined: it falls inside the certified \
                     interval [{:.3}s, {:.3}s]",
                    cert.lo, cert.hi
                ),
            )
            .with_help(format!(
                "lower bound {:.3}s = max(chain {} = {:.3}s; floors: {}); upper bound {:.3}s \
                 = min(serial {:.3}s, chain {:.3}s + {:.3} node-s of contended work over \
                 {} nodes); binding terms: {}; raise the target to {:.3}s to certify it, or \
                 tighten the must-binding term",
                cert.lo,
                witness,
                cert.cp_lo,
                floors.join(", "),
                cert.hi,
                cert.serial_hi,
                cert.cp_hi,
                cert.work_hi,
                cert.pool_nodes - cert.max_task_nodes + 1,
                binding.join(", "),
                cert.hi
            )),
        );
    }
    false
}

/// Span of the lexically first `system_bytes` phase in the file.
fn first_flow_span(ctx: &AnalysisContext) -> Option<Span> {
    ctx.ir
        .tasks
        .iter()
        .flat_map(|t| t.flows.iter())
        .filter(|f| f.bytes > 0.0)
        .map(|f| f.span)
        .min()
}
