//! The interval abstract domain for time/rate bounds.
//!
//! Every quantity the analyzer propagates is a closed interval
//! `[lo, hi]` of non-negative seconds (or bytes/s): `lo` is a certified
//! lower bound (the value under the most optimistic contention
//! assumption the spec allows), `hi` an upper bound (worst admissible
//! contention). Propagating intervals instead of points is what turns
//! the W005 point-check into a *proof*: if even the `lo` end of the
//! critical path exceeds the declared makespan target, no schedule can
//! meet it.

use std::fmt;

/// A closed interval `[lo, hi]` with `0 <= lo <= hi <= +inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Certified lower bound.
    pub lo: f64,
    /// Upper bound (`+inf` when the spec admits unbounded contention).
    pub hi: f64,
}

impl Interval {
    /// The additive identity.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// A normalized interval: negatives clamp to 0 and `hi` never sits
    /// below `lo`. A NaN end is a caller bug (it means an upstream
    /// computation produced `0 * inf` or `inf - inf`), so debug builds
    /// assert; release builds keep the sound collapse — NaN `lo`
    /// becomes the identity 0, NaN `hi` becomes `+inf` — because a
    /// too-wide interval is safe and a crash in a linter is not.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(
            !lo.is_nan() && !hi.is_nan(),
            "Interval::new called with NaN end: lo={lo}, hi={hi}"
        );
        let lo = if lo.is_nan() { 0.0 } else { lo.max(0.0) };
        let hi = if hi.is_nan() {
            f64::INFINITY
        } else {
            hi.max(lo)
        };
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// Scaling by a non-negative factor (serial replica chains).
    pub fn scale(self, k: f64) -> Interval {
        Interval::new(self.lo * k, self.hi * k)
    }

    /// Element-wise max: the join used when several predecessors must
    /// all finish before a task starts.
    pub fn max(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Convex hull (least interval containing both).
    pub fn hull(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// True when `v` lies inside the interval.
    pub fn contains(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Interval addition (sequential composition of phases).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let end = |v: f64| -> String {
            if v.is_infinite() {
                "inf".to_owned()
            } else {
                format!("{v:.3}")
            }
        };
        write!(f, "[{}, {}]", end(self.lo), end(self.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_preserves_ordering() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a + b, Interval::new(3.0, 8.0));
        assert_eq!(a.max(b), Interval::new(2.0, 5.0));
        assert_eq!(a.hull(b), Interval::new(1.0, 5.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 6.0));
        assert!(a.contains(1.0) && a.contains(3.0) && !a.contains(3.1));
    }

    #[test]
    fn normalization_handles_degenerate_input() {
        let i = Interval::new(-1.0, -2.0);
        assert_eq!(i, Interval::ZERO);
        let i = Interval::new(5.0, 2.0);
        assert_eq!(i, Interval::point(5.0));
        let i = Interval::new(-3.0, 4.0);
        assert_eq!(i, Interval::new(0.0, 4.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn nan_ends_panic_in_debug_builds() {
        for (lo, hi) in [(f64::NAN, 1.0), (1.0, f64::NAN), (f64::NAN, f64::NAN)] {
            let caught = std::panic::catch_unwind(|| Interval::new(lo, hi));
            assert!(caught.is_err(), "NaN end ({lo}, {hi}) should assert");
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_ends_collapse_soundly_in_release_builds() {
        let i = Interval::new(f64::NAN, f64::NAN);
        assert_eq!(i.lo, 0.0);
        assert!(i.hi.is_infinite());
        let i = Interval::new(f64::NAN, 7.0);
        assert_eq!(i, Interval::new(0.0, 7.0));
        let i = Interval::new(2.0, f64::NAN);
        assert_eq!(i.lo, 2.0);
        assert!(i.hi.is_infinite());
    }

    #[test]
    fn infinity_is_absorbing_on_the_upper_end() {
        let i = Interval::new(1.0, f64::INFINITY) + Interval::point(2.0);
        assert_eq!(i.lo, 3.0);
        assert!(i.hi.is_infinite());
        assert_eq!(format!("{i}"), "[3.000, inf]");
    }
}
