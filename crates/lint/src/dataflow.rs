//! Forward dataflow over the task-group DAG of an [`AnalysisIr`].
//!
//! The framework is the classic one: a topological order, a per-node
//! fact, a merge over incoming edges, and a transfer function. On top
//! of it sits the analyzer's workhorse, the earliest-finish analysis:
//! `EF[t] = max over predecessors EF[p] + serial-duration(t)`,
//! propagated as an [`Interval`] so the `lo` end is a *certified*
//! critical-path lower bound on makespan, with the argmax predecessor
//! recorded as a witness chain.

use crate::interval::Interval;
use crate::ir::AnalysisIr;

/// A topological ordering of the task groups.
#[derive(Debug, Clone)]
pub struct Topo {
    /// Schedulable groups in dependency order.
    pub order: Vec<usize>,
    /// Groups left out of the order: on a dependency cycle, or
    /// transitively dependent on one. Empty for a well-formed spec.
    pub stuck: Vec<usize>,
}

/// Kahn's algorithm over the AST-granularity dependency edges.
pub fn topo(ir: &AnalysisIr) -> Topo {
    let n = ir.tasks.len();
    let mut indegree = vec![0usize; n];
    for (i, t) in ir.tasks.iter().enumerate() {
        indegree[i] = t.deps.len();
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    ready.reverse(); // pop() yields lowest index first: deterministic
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in ir.tasks.iter().enumerate() {
        for d in &t.deps {
            succs[d.target].push(i);
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &s in &succs[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                // Keep the ready stack sorted descending so pop() stays
                // lowest-first without a priority queue.
                let at = ready.partition_point(|&r| r > s);
                ready.insert(at, s);
            }
        }
    }
    let in_order: Vec<bool> = {
        let mut v = vec![false; n];
        for &i in &order {
            v[i] = true;
        }
        v
    };
    let stuck = (0..n).filter(|&i| !in_order[i]).collect();
    Topo { order, stuck }
}

/// Runs a forward analysis: for each schedulable group `v` (in topo
/// order), fold the facts of its predecessors with `merge` starting
/// from `init`, then apply `transfer`. Stuck groups get `None`.
pub fn forward<S: Clone>(
    ir: &AnalysisIr,
    topo: &Topo,
    init: S,
    mut merge: impl FnMut(S, usize, &S) -> S,
    mut transfer: impl FnMut(usize, S) -> S,
) -> Vec<Option<S>> {
    let mut facts: Vec<Option<S>> = vec![None; ir.tasks.len()];
    for &v in &topo.order {
        let mut acc = init.clone();
        for d in &ir.tasks[v].deps {
            if let Some(fp) = &facts[d.target] {
                acc = merge(acc, d.target, fp);
            }
        }
        facts[v] = Some(transfer(v, acc));
    }
    facts
}

/// Per-group earliest-finish bounds plus the witness predecessor.
#[derive(Debug, Clone)]
pub struct EarliestFinish {
    /// `finish[v]`: bounds on when group `v` can be fully done.
    pub finish: Vec<Option<Interval>>,
    /// The predecessor whose lower bound dominated `v`'s start (None
    /// for roots).
    pub via: Vec<Option<usize>>,
}

/// Runs the earliest-finish interval analysis.
pub fn earliest_finish(ir: &AnalysisIr, topo: &Topo) -> EarliestFinish {
    #[derive(Clone)]
    struct Fact {
        start: Interval,
        via: Option<usize>,
    }
    let facts = forward(
        ir,
        topo,
        Fact {
            start: Interval::ZERO,
            via: None,
        },
        |acc, p, fp| {
            let via = if fp.start.lo > acc.start.lo {
                Some(p)
            } else {
                acc.via
            };
            Fact {
                start: acc.start.max(fp.start),
                via,
            }
        },
        |v, inc| Fact {
            start: inc.start + ir.tasks[v].serial,
            via: inc.via,
        },
    );
    let mut finish = vec![None; ir.tasks.len()];
    let mut via = vec![None; ir.tasks.len()];
    for (i, f) in facts.into_iter().enumerate() {
        if let Some(f) = f {
            finish[i] = Some(f.start);
            via[i] = f.via;
        }
    }
    EarliestFinish { finish, via }
}

/// The critical chain: the group with the largest certified finish
/// lower bound, walked back through witness predecessors. Returns the
/// chain (in dependency order) and the finish bounds of its last
/// group. Empty when the IR has no tasks or everything is stuck.
pub fn critical_path(ir: &AnalysisIr, ef: &EarliestFinish) -> (Vec<usize>, Interval) {
    let Some(end) = (0..ir.tasks.len())
        .filter(|&i| ef.finish[i].is_some())
        .max_by(|&a, &b| {
            let (fa, fb) = (ef.finish[a].unwrap().lo, ef.finish[b].unwrap().lo);
            fa.partial_cmp(&fb)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Ties resolve to the lowest index for determinism.
                .then(b.cmp(&a))
        })
    else {
        return (Vec::new(), Interval::ZERO);
    };
    let bound = ef.finish[end].unwrap();
    let mut chain = vec![end];
    let mut cur = end;
    while let Some(p) = ef.via[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    (chain, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> AnalysisIr {
        let ast = wrm_lang::parse(src).unwrap();
        let machine = ast.machine.as_deref().and_then(wrm_core::machines::by_name);
        AnalysisIr::lower(&ast, machine.as_ref())
    }

    #[test]
    fn diamond_takes_the_longer_arm() {
        let ir = lower(
            "workflow w {
               task a { overhead x 10s }
               task b { overhead x 5s after a }
               task c { overhead x 20s after a }
               task d { overhead x 1s after b after c }
             }",
        );
        let t = topo(&ir);
        assert!(t.stuck.is_empty());
        let ef = earliest_finish(&ir, &t);
        let (chain, bound) = critical_path(&ir, &ef);
        let names: Vec<&str> = chain.iter().map(|&i| ir.tasks[i].name.as_str()).collect();
        assert_eq!(names, ["a", "c", "d"]);
        assert!((bound.lo - 31.0).abs() < 1e-12);
        assert!((bound.hi - 31.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_leave_their_cone_stuck() {
        let ir = lower(
            "workflow w {
               task a { after b }
               task b { after a }
               task c { after b }
               task d { }
             }",
        );
        let t = topo(&ir);
        assert_eq!(t.order, vec![3]);
        assert_eq!(t.stuck, vec![0, 1, 2]);
        let ef = earliest_finish(&ir, &t);
        assert!(ef.finish[0].is_none());
        assert!(ef.finish[3].is_some());
    }

    #[test]
    fn chains_count_every_replica() {
        let ir = lower(
            "workflow w {
               task iter[5] chain { overhead x 2s }
               task done { overhead x 1s after iter }
             }",
        );
        let t = topo(&ir);
        let ef = earliest_finish(&ir, &t);
        let (chain, bound) = critical_path(&ir, &ef);
        assert_eq!(chain, vec![0, 1]);
        assert!((bound.lo - 11.0).abs() < 1e-12);
    }
}
