//! The rule registry: every semantic pass the linter runs over a parsed
//! workflow, with stable codes.
//!
//! | Code | Severity | What it catches |
//! |------|----------|-----------------|
//! | E000 | error    | syntax error (parse failure surfaced as a diagnostic) |
//! | E001 | error    | `on <machine>` names neither a preset nor a declared machine |
//! | E002 | error    | `after` references an undeclared task |
//! | E003 | error    | `after t[i]` replica index out of range |
//! | E004 | error    | dependency cycle among tasks |
//! | E005 | error    | task needs more nodes than the machine has (parallelism wall 0) |
//! | E006 | error    | `eff` outside (0, 1] |
//! | E007 | error    | `task t[0]` — zero replicas |
//! | E008 | error    | duplicate task or machine declaration |
//! | W001 | warning  | phase resource absent on the target machine (dead ceiling) |
//! | W002 | warning  | custom `machine` declared but never used |
//! | W003 | warning  | zero/negative phase volume (imposes no ceiling) |
//! | W004 | warning  | `nodes 0` (compiler treats it as 1) |
//! | W005 | warning  | target provably unattainable (names the binding ceiling) |
//! | E009 | error    | task strands behind a dependency cycle and can never start |
//! | W006 | warning  | `after` edge already implied by other dependencies (fixable) |
//! | W007 | warning  | shared channel whose capped streams can never saturate it |
//! | W008 | warning  | max-min fair share too small for a task's bytes within the makespan target |
//! | W009 | warning  | interval critical-path lower bound exceeds the makespan target (fixable) |
//! | W010 | warning  | makespan target falls inside the certified interval `[lo, hi)` — undetermined |
//! | W011 | warning  | channel capacity provably reducible to the stream-cap sum without moving the certified interval |
//! | W012 | warning  | certified lower bound unchanged with every channel zeroed — channel sweeps cannot help |
//! | E010 | error    | makespan target infeasible under any channel provisioning (fixable) |
//! | E011 | error    | invalid distribution call (negative sigma, empty empirical set, NaN/out-of-order parameters) |
//!
//! E000–E008, E011 and W001–W005 are per-statement checks implemented here;
//! E009, E010 and W006–W012 are the analyzer passes in [`crate::passes`],
//! driven by the lowered IR, the DAG dataflow engine, and the
//! simulator's two-sided makespan certificate ([`wrm_sim::certify`]).

use crate::diagnostics::{Diagnostic, Severity, Span, SuggestedEdit};
use crate::passes;
use std::collections::{BTreeMap, BTreeSet};
use wrm_core::{machines, Machine, WorkUnit};
use wrm_lang::ast::{PhaseAst, TaskAst, WorkflowAst};

/// Registry metadata for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable code (`E001`, `W003`, ...).
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Severity every diagnostic from this rule carries.
    pub severity: Severity,
    /// One-line description for docs and `--explain`-style output.
    pub summary: &'static str,
}

/// Every rule the linter knows, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "E000",
        name: "syntax-error",
        severity: Severity::Error,
        summary: "the file does not parse; the lexer/parser error is surfaced as a diagnostic",
    },
    RuleInfo {
        code: "E001",
        name: "unknown-machine",
        severity: Severity::Error,
        summary: "`on <machine>` names neither a built-in preset nor a declared machine",
    },
    RuleInfo {
        code: "E002",
        name: "undeclared-dependency",
        severity: Severity::Error,
        summary: "`after` references a task that is not declared in the workflow",
    },
    RuleInfo {
        code: "E003",
        name: "replica-index-out-of-range",
        severity: Severity::Error,
        summary: "`after t[i]` indexes past the replica count of `t` (indices are 0-based)",
    },
    RuleInfo {
        code: "E004",
        name: "dependency-cycle",
        severity: Severity::Error,
        summary: "the `after` edges form a cycle, so no schedule exists",
    },
    RuleInfo {
        code: "E005",
        name: "task-larger-than-machine",
        severity: Severity::Error,
        summary: "a task needs more nodes than the machine has, making the parallelism wall 0",
    },
    RuleInfo {
        code: "E006",
        name: "eff-out-of-range",
        severity: Severity::Error,
        summary: "`eff` must be in (0, 1]",
    },
    RuleInfo {
        code: "E007",
        name: "zero-replicas",
        severity: Severity::Error,
        summary: "`task t[0]` declares zero replicas",
    },
    RuleInfo {
        code: "E008",
        name: "duplicate-name",
        severity: Severity::Error,
        summary: "a task or machine name is declared more than once",
    },
    RuleInfo {
        code: "E009",
        name: "unreachable-task",
        severity: Severity::Error,
        summary: "a task depends, possibly transitively, on a dependency cycle and can never \
                  start",
    },
    RuleInfo {
        code: "W001",
        name: "dead-ceiling",
        severity: Severity::Warning,
        summary: "a phase references a resource the target machine does not provide, so the \
                  phase imposes no ceiling",
    },
    RuleInfo {
        code: "W002",
        name: "unused-machine",
        severity: Severity::Warning,
        summary: "a custom `machine` is declared but never referenced with `on`",
    },
    RuleInfo {
        code: "W003",
        name: "zero-volume",
        severity: Severity::Warning,
        summary: "a phase has zero or negative volume and imposes no ceiling",
    },
    RuleInfo {
        code: "W004",
        name: "zero-nodes",
        severity: Severity::Warning,
        summary: "`nodes 0` is treated as `nodes 1` by the compiler",
    },
    RuleInfo {
        code: "W005",
        name: "infeasible-target",
        severity: Severity::Warning,
        summary: "a declared target is provably unattainable on this machine; the message \
                  names the binding ceiling",
    },
    RuleInfo {
        code: "W006",
        name: "redundant-edge",
        severity: Severity::Warning,
        summary: "an `after` edge is duplicated or already implied by other dependencies; \
                  `wrm lint --fix` removes it",
    },
    RuleInfo {
        code: "W007",
        name: "unsaturable-channel",
        severity: Severity::Warning,
        summary: "every stream on a shared channel is capped and the caps sum below its \
                  capacity, so the contention ceiling can never bind",
    },
    RuleInfo {
        code: "W008",
        name: "starved-channel",
        severity: Severity::Warning,
        summary: "under max-min fair sharing a task's share of a shared channel is below the \
                  rate its bytes need within the makespan target",
    },
    RuleInfo {
        code: "W009",
        name: "infeasible-critical-path",
        severity: Severity::Warning,
        summary: "interval abstract interpretation certifies the dependency-chain lower bound \
                  on makespan exceeds the declared target",
    },
    RuleInfo {
        code: "W010",
        name: "undetermined-target",
        severity: Severity::Warning,
        summary: "the makespan target falls inside the certified interval [lo, hi): neither \
                  provably met nor provably missed; the report carries the witness \
                  decomposition of both bounds",
    },
    RuleInfo {
        code: "W011",
        name: "overprovisioned-channel",
        severity: Severity::Warning,
        summary: "an aggregate channel's capacity can provably be reduced to the sum of its \
                  stream caps without moving either end of the certified makespan interval",
    },
    RuleInfo {
        code: "W012",
        name: "channel-independent-bound",
        severity: Severity::Warning,
        summary: "the certified makespan lower bound is unchanged with every channel zeroed: \
                  the fixed-phase chain and node-pool occupancy alone force it, so channel \
                  capacity sweeps provably cannot help",
    },
    RuleInfo {
        code: "E010",
        name: "infeasible-under-any-channel",
        severity: Severity::Error,
        summary: "the makespan target is below the certified lower bound even with every \
                  channel infinitely fast; no channel provisioning can meet it",
    },
    RuleInfo {
        code: "E011",
        name: "invalid-distribution",
        severity: Severity::Error,
        summary: "a distribution call has invalid parameters (negative sigma, empty empirical \
                  set, non-finite or out-of-order bounds); the Monte-Carlo engine cannot \
                  sample it",
    },
];

/// Looks up a rule by its code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

fn sp(s: wrm_lang::Span) -> Span {
    s.into()
}

/// Lints source text: a parse failure becomes a single `E000`
/// diagnostic; otherwise all semantic rules run over the AST.
pub fn lint_source(source: &str) -> Vec<Diagnostic> {
    match wrm_lang::parse(source) {
        Ok(ast) => lint_ast(&ast),
        Err(e) => vec![Diagnostic::error(
            "E000",
            Span::new(e.line, e.col),
            format!("syntax error: {}", e.message),
        )],
    }
}

/// Runs every semantic rule over a parsed workflow, then the analyzer
/// passes. Diagnostics come back sorted by source position, then code,
/// then message — a total order, so output is deterministic.
pub fn lint_ast(ast: &WorkflowAst) -> Vec<Diagnostic> {
    let machine = resolve_machine(ast);
    let mut out = Vec::new();

    check_machine_reference(ast, &mut out);
    check_duplicates(ast, &mut out);
    check_dependencies(ast, &mut out);
    check_cycles(ast, &mut out);
    check_values(ast, &mut out);
    if let Some(m) = &machine {
        check_machine_fit(ast, m, &mut out);
        check_dead_ceilings(ast, m, &mut out);
    }
    check_unused_machines(ast, &mut out);
    let has_errors = out.iter().any(|d| d.severity == Severity::Error);
    let ctx = passes::AnalysisContext::build(ast, machine, has_errors);
    check_targets(ast, &ctx, &mut out);
    passes::run(ast, &ctx, &mut out);

    // Every AST span now carries a position; a 0:0 diagnostic here means
    // a rule fabricated a span instead of taking it from the source.
    debug_assert!(
        out.iter().all(|d| d.span.is_known()),
        "rule emitted an unknown span: {:?}",
        out.iter().find(|d| !d.span.is_known())
    );
    out.sort_by(|a, b| (a.span, &a.code, &a.message).cmp(&(b.span, &b.code, &b.message)));
    out
}

/// Only the error-severity findings — what `analyze`/`simulate` gate on
/// before compiling.
pub fn lint_errors(ast: &WorkflowAst) -> Vec<Diagnostic> {
    lint_ast(ast)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// The worst severity in a batch, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// The machine the workflow targets, with in-file declarations
/// shadowing presets — mirrors the compiler's resolution, but tolerates
/// invalid machine bodies (those produce their own compile error).
fn resolve_machine(ast: &WorkflowAst) -> Option<Machine> {
    let name = ast.machine.as_ref()?;
    match ast.machines.iter().find(|m| &m.name == name) {
        Some(m) => {
            let mut b = Machine::builder(m.name.clone(), m.nodes);
            for (id, peak, is_flops) in &m.node_resources {
                let rate = if *is_flops {
                    wrm_core::Rate::FlopsPerSec(wrm_core::FlopsPerSec(*peak))
                } else {
                    wrm_core::Rate::BytesPerSec(wrm_core::BytesPerSec(*peak))
                };
                b = b.node(id.as_str(), id.clone(), rate);
            }
            for (id, peak, per_node) in &m.system_resources {
                if *per_node {
                    b = b.system_per_node(id.as_str(), id.clone(), wrm_core::BytesPerSec(*peak));
                } else {
                    b = b.system(id.as_str(), id.clone(), wrm_core::BytesPerSec(*peak));
                }
            }
            b.build().ok()
        }
        None => machines::by_name(name),
    }
}

/// E001: `on <name>` resolves to nothing.
fn check_machine_reference(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    let Some(name) = &ast.machine else { return };
    let declared = ast.machines.iter().any(|m| &m.name == name);
    if !declared && machines::by_name(name).is_none() {
        out.push(
            Diagnostic::error(
                "E001",
                sp(ast.machine_span),
                format!("unknown machine `{name}`"),
            )
            .with_help(format!(
                "known presets: {}; or declare `machine {name} {{ ... }}` in this file",
                machines::short_names().join(", ")
            )),
        );
    }
}

/// E008: duplicate task or machine names.
fn check_duplicates(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    let mut tasks = BTreeSet::new();
    for t in &ast.tasks {
        if !tasks.insert(&t.name) {
            out.push(Diagnostic::error(
                "E008",
                sp(t.span),
                format!("task `{}` is declared twice", t.name),
            ));
        }
    }
    let mut machines_seen = BTreeSet::new();
    for m in &ast.machines {
        if !machines_seen.insert(&m.name) {
            out.push(Diagnostic::error(
                "E008",
                sp(m.span),
                format!("machine `{}` is declared twice", m.name),
            ));
        }
    }
}

/// E002 + E003: `after` references and replica indices.
fn check_dependencies(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    let counts: BTreeMap<&str, usize> = ast
        .tasks
        .iter()
        .map(|t| (t.name.as_str(), t.count))
        .collect();
    for t in &ast.tasks {
        for dep in &t.after {
            match counts.get(dep.name.as_str()) {
                None => out.push(
                    Diagnostic::error(
                        "E002",
                        sp(dep.span),
                        format!(
                            "task `{}` depends on undeclared task `{}`",
                            t.name, dep.name
                        ),
                    )
                    .with_help(format!(
                        "declared tasks: {}",
                        if counts.is_empty() {
                            "(none)".to_owned()
                        } else {
                            counts
                                .keys()
                                .map(|k| format!("`{k}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        }
                    )),
                ),
                Some(&count) => {
                    if let Some(idx) = dep.index {
                        if idx >= count {
                            out.push(
                                Diagnostic::error(
                                    "E003",
                                    sp(dep.span),
                                    format!(
                                        "task `{}` references `{}[{idx}]` but only {count} \
                                         replica(s) exist",
                                        t.name, dep.name
                                    ),
                                )
                                .with_help("replica indices are 0-based".to_owned()),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// E004: cycles in the base-name dependency graph.
///
/// `after` edges connect whole replica groups, so any cycle among base
/// names means a cycle among expanded replicas (including `after self`,
/// even with an index: every replica would wait on a member of its own
/// group). Chain edges (`task t[n] chain`) stay inside one group and
/// are acyclic by construction, so base-name granularity is exact.
fn check_cycles(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    let index: BTreeMap<&str, usize> = ast
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.as_str(), i))
        .collect();
    // settled[i]: fully explored with no cycle, or already reported.
    let mut settled = vec![false; ast.tasks.len()];
    for start in 0..ast.tasks.len() {
        if settled[start] {
            continue;
        }
        // Iterative DFS with an explicit path so fuzzed inputs with very
        // long chains cannot overflow the stack.
        let mut path: Vec<usize> = vec![start];
        let mut edge_pos: Vec<usize> = vec![0];
        let mut on_path = vec![false; ast.tasks.len()];
        on_path[start] = true;
        while let Some(&node) = path.last() {
            let deps = &ast.tasks[node].after;
            let cursor = edge_pos[path.len() - 1];
            let next = deps[cursor..].iter().enumerate().find_map(|(off, dep)| {
                index
                    .get(dep.name.as_str())
                    .map(|&to| (cursor + off + 1, to, dep))
            });
            match next {
                Some((resume, to, dep)) if on_path[to] && !settled[to] => {
                    // Found a cycle: the path suffix from `to`, closed.
                    let from = path.iter().position(|&n| n == to).expect("on path");
                    let mut names: Vec<&str> = path[from..]
                        .iter()
                        .map(|&n| ast.tasks[n].name.as_str())
                        .collect();
                    names.push(ast.tasks[to].name.as_str());
                    for &n in &path[from..] {
                        settled[n] = true;
                    }
                    out.push(
                        Diagnostic::error(
                            "E004",
                            sp(dep.span),
                            format!("dependency cycle: {}", names.join(" -> ")),
                        )
                        .with_help("no schedule exists; remove one of these `after` edges"),
                    );
                    edge_pos[path.len() - 1] = resume;
                }
                Some((resume, to, _)) => {
                    edge_pos[path.len() - 1] = resume;
                    if !settled[to] {
                        path.push(to);
                        edge_pos.push(0);
                        on_path[to] = true;
                    }
                }
                None => {
                    settled[node] = true;
                    on_path[node] = false;
                    path.pop();
                    edge_pos.pop();
                }
            }
        }
    }
}

/// E006, E007, W003, W004: per-task value sanity.
fn check_values(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    for t in &ast.tasks {
        if t.count == 0 {
            let span = sp(t.count_span);
            let mut d = Diagnostic::error(
                "E007",
                span,
                format!("task `{}` declares 0 replicas", t.name),
            )
            .with_help(format!(
                "use `task {}[n]` with n >= 1, or drop the bracket for a single task",
                t.name
            ));
            if span.has_range() {
                d = d.with_fix(SuggestedEdit::replace_span(span, "1", "declare 1 replica"));
            }
            out.push(d);
        }
        if t.nodes == 0 {
            let span = sp(t.nodes_span);
            let mut d = Diagnostic::warning(
                "W004",
                span,
                format!(
                    "task `{}` declares `nodes 0`; the compiler treats it as 1 node",
                    t.name
                ),
            );
            if span.has_range() {
                d = d.with_fix(SuggestedEdit::replace_span(span, "1", "set `nodes 1`"));
            }
            out.push(d);
        }
        for p in &t.phases {
            check_phase_values(t, p, out);
        }
    }
}

fn check_phase_values(t: &TaskAst, p: &PhaseAst, out: &mut Vec<Diagnostic>) {
    let eff_diag = |eff: f64, eff_span: wrm_lang::Span, out: &mut Vec<Diagnostic>| {
        if !(eff > 0.0 && eff <= 1.0) {
            let span = sp(eff_span);
            let mut d =
                Diagnostic::error("E006", span, format!("eff must be in (0, 1], got {eff}"));
            if span.has_range() {
                d = d.with_fix(SuggestedEdit::replace_span(span, "1", "set `eff 1`"));
            }
            out.push(d);
        }
    };
    let volume_diag =
        |kw: &str, v: f64, span: wrm_lang::Span, what: &str, out: &mut Vec<Diagnostic>| {
            // `<= 0.0 || NaN`, i.e. anything that is not a real volume.
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                out.push(Diagnostic::warning(
                    "W003",
                    sp(span),
                    format!(
                        "`{kw}` in task `{}` has non-positive {what} ({v}); the phase \
                         imposes no ceiling",
                        t.name
                    ),
                ));
            }
        };
    // E011: a distribution call the Monte-Carlo engine cannot sample.
    // The nominal quantity (the distribution mean) is meaningless when
    // the parameters are invalid — possibly NaN — so skip the value
    // checks below rather than pile derived noise onto the same phase.
    if let Some(d) = p.dist() {
        if let Err(reason) = d.to_dist().validate() {
            out.push(
                Diagnostic::error(
                    "E011",
                    sp(d.span()),
                    format!("invalid distribution in task `{}`: {reason}", t.name),
                )
                .with_help(
                    "distribution parameters must be finite and non-negative, bounds ordered \
                     lo <= mode <= hi, and empirical sets non-empty with positive weights",
                ),
            );
            return;
        }
    }
    match p {
        PhaseAst::Compute {
            flops,
            eff,
            span,
            eff_span,
            ..
        } => {
            eff_diag(*eff, *eff_span, out);
            volume_diag("compute", *flops, *span, "volume", out);
        }
        PhaseAst::NodeBytes {
            bytes,
            eff,
            span,
            eff_span,
            ..
        } => {
            eff_diag(*eff, *eff_span, out);
            volume_diag("node_bytes", *bytes, *span, "volume", out);
        }
        PhaseAst::SystemBytes { bytes, span, .. } => {
            volume_diag("system_bytes", *bytes, *span, "volume", out);
        }
        PhaseAst::Overhead { seconds, span, .. } => {
            if *seconds < 0.0 {
                out.push(Diagnostic::warning(
                    "W003",
                    sp(*span),
                    format!(
                        "`overhead` in task `{}` has negative duration ({seconds}s)",
                        t.name
                    ),
                ));
            }
        }
    }
}

/// E005: a task that cannot fit on the machine at all.
fn check_machine_fit(ast: &WorkflowAst, machine: &Machine, out: &mut Vec<Diagnostic>) {
    for t in &ast.tasks {
        if t.nodes > machine.total_nodes {
            out.push(
                Diagnostic::error(
                    "E005",
                    sp(t.nodes_span),
                    format!(
                        "task `{}` needs {} nodes but machine `{}` has only {}",
                        t.name, t.nodes, machine.name, machine.total_nodes
                    ),
                )
                .with_help(
                    "the parallelism wall floor(total_nodes / nodes_per_task) would be 0; \
                     no schedule exists",
                ),
            );
        }
    }
}

/// W001: phases whose resource the machine does not provide.
fn check_dead_ceilings(ast: &WorkflowAst, machine: &Machine, out: &mut Vec<Diagnostic>) {
    let has_flops = machine
        .node_resources
        .iter()
        .any(|r| r.peak_per_node.unit() == WorkUnit::Flops);
    let list = |items: Vec<String>| {
        if items.is_empty() {
            "(none)".to_owned()
        } else {
            items.join(", ")
        }
    };
    let node_ids = || {
        list(
            machine
                .node_resources
                .iter()
                .map(|r| format!("`{}`", r.id))
                .collect(),
        )
    };
    let system_ids = || {
        list(
            machine
                .system_resources
                .iter()
                .map(|r| format!("`{}`", r.id))
                .collect(),
        )
    };
    for t in &ast.tasks {
        for p in &t.phases {
            match p {
                PhaseAst::Compute { span, .. } if !has_flops => {
                    out.push(
                        Diagnostic::warning(
                            "W001",
                            sp(*span),
                            format!(
                                "machine `{}` has no FLOP/s node resource; this `compute` \
                                 phase imposes no ceiling",
                                machine.name
                            ),
                        )
                        .with_help(format!("node resources on this machine: {}", node_ids())),
                    );
                }
                PhaseAst::NodeBytes { resource, span, .. }
                    if machine.node_resource(resource).is_none() =>
                {
                    out.push(
                        Diagnostic::warning(
                            "W001",
                            sp(*span),
                            format!(
                                "machine `{}` has no node resource `{resource}`; this \
                                 `node_bytes` phase imposes no ceiling",
                                machine.name
                            ),
                        )
                        .with_help(format!("node resources on this machine: {}", node_ids())),
                    );
                }
                PhaseAst::SystemBytes { resource, span, .. }
                    if machine.system_resource(resource).is_none() =>
                {
                    out.push(
                        Diagnostic::warning(
                            "W001",
                            sp(*span),
                            format!(
                                "machine `{}` has no system resource `{resource}`; this \
                                 `system_bytes` phase imposes no ceiling",
                                machine.name
                            ),
                        )
                        .with_help(format!(
                            "system resources on this machine: {}",
                            system_ids()
                        )),
                    );
                }
                _ => {}
            }
        }
    }
}

/// W002: declared machines never referenced with `on`.
fn check_unused_machines(ast: &WorkflowAst, out: &mut Vec<Diagnostic>) {
    // Only the first declaration of a name is reachable (E008 covers the
    // rest), and only the one matching `on <name>` is used.
    let mut seen = BTreeSet::new();
    for m in &ast.machines {
        let first = seen.insert(&m.name);
        if first && ast.machine.as_ref() != Some(&m.name) {
            out.push(
                Diagnostic::warning(
                    "W002",
                    sp(m.span),
                    format!("machine `{}` is declared but never used", m.name),
                )
                .with_help(format!(
                    "reference it with `workflow {} on {} {{ ... }}`",
                    ast.name, m.name
                )),
            );
        }
    }
}

/// W005: targets the model can prove unattainable. The model exists
/// only when the spec compiled cleanly on a resolved machine, so this
/// implicitly skips files with error-severity diagnostics.
fn check_targets(ast: &WorkflowAst, ctx: &passes::AnalysisContext, out: &mut Vec<Diagnostic>) {
    let Some(model) = &ctx.model else { return };
    if ast.targets.makespan.is_none() && ast.targets.throughput.is_none() {
        return;
    }
    if model.ceilings.is_empty() {
        return; // nothing binds; any target is (vacuously) attainable
    }
    let wall = model.parallelism_wall as f64;

    if let Some(target) = ast.targets.throughput {
        // The best the envelope ever allows: node ceilings peak at the
        // wall, system ceilings are flat.
        if let Some(best) = model.envelope_at(wall) {
            let best = best.get();
            if best.is_finite() && target > best * (1.0 + 1e-9) {
                let binding = model
                    .binding_ceiling_at(wall)
                    .map_or_else(|| "parallelism wall".to_owned(), |c| c.label.clone());
                out.push(
                    Diagnostic::warning(
                        "W005",
                        sp(ast.targets.throughput_span),
                        format!(
                            "throughput target {target} tasks/s is unattainable: the model \
                             caps at {best:.6} tasks/s even at the parallelism wall \
                             (x = {wall})",
                        ),
                    )
                    .with_help(format!("binding ceiling: {binding}")),
                );
            }
        }
    }

    if let Some(target) = ast.targets.makespan {
        if let Some(lb) = model.makespan_lower_bound() {
            let lb = lb.get();
            if lb.is_finite() && target < lb * (1.0 - 1e-9) {
                let binding = model
                    .binding_ceiling()
                    .map_or_else(|| "parallelism wall".to_owned(), |c| c.label.clone());
                out.push(
                    Diagnostic::warning(
                        "W005",
                        sp(ast.targets.makespan_span),
                        format!(
                            "makespan target {target}s is below the theoretical lower bound \
                             {lb:.3}s at this workflow's parallelism",
                        ),
                    )
                    .with_help(format!("binding ceiling: {binding}")),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lint_source(src).into_iter().map(|d| d.code).collect()
    }

    fn find(src: &str, code: &str) -> Diagnostic {
        lint_source(src)
            .into_iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("no {code} diagnostic for {src}"))
    }

    #[test]
    fn clean_workflow_produces_no_diagnostics() {
        let src = "workflow w on pm-gpu {
  task a[4] { nodes 8 compute 1PFLOPS eff 0.5 system_bytes fs 1TB }
  task b { nodes 1 system_bytes fs 1GB after a }
}";
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn e000_syntax_error() {
        let d = find("workflow w { task a { nodes } }", "E000");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("syntax error"), "{}", d.message);
        assert!(d.span.is_known());
    }

    #[test]
    fn e001_unknown_machine() {
        let d = find("workflow w on summit { task a { } }", "E001");
        assert!(
            d.message.contains("unknown machine `summit`"),
            "{}",
            d.message
        );
        assert_eq!((d.span.line, d.span.col), (1, 15));
        assert!(d.help.unwrap().contains("pm-gpu"));
    }

    #[test]
    fn e002_undeclared_dependency() {
        let d = find("workflow w {\n  task b { after ghost }\n}", "E002");
        assert!(
            d.message.contains("undeclared task `ghost`"),
            "{}",
            d.message
        );
        assert_eq!((d.span.line, d.span.col), (2, 18));
        assert!(d.help.unwrap().contains("`b`"));
    }

    #[test]
    fn e003_replica_index_out_of_range() {
        let d = find("workflow w { task a[2] { } task b { after a[5] } }", "E003");
        assert!(d.message.contains("`a[5]`"), "{}", d.message);
        assert!(d.message.contains("only 2 replica"), "{}", d.message);
    }

    #[test]
    fn e004_dependency_cycle() {
        let d = find(
            "workflow w { task a { after b } task b { after c } task c { after a } }",
            "E004",
        );
        assert!(
            d.message.contains("a -> b -> c -> a") || d.message.contains("cycle"),
            "{}",
            d.message
        );
        // Self-dependency is a cycle too, even with an index.
        let d = find("workflow w { task a[3] { after a[0] } }", "E004");
        assert!(d.message.contains("a -> a"), "{}", d.message);
    }

    #[test]
    fn e005_task_larger_than_machine() {
        let d = find(
            "machine m { nodes 4 node compute 1TFLOPS }
workflow w on m { task big { nodes 8 compute 1PFLOPS } }",
            "E005",
        );
        assert!(d.message.contains("needs 8 nodes"), "{}", d.message);
        assert!(d.message.contains("only 4"), "{}", d.message);
    }

    #[test]
    fn e006_eff_out_of_range() {
        let d = find("workflow w { task a { compute 1PFLOPS eff 2 } }", "E006");
        assert!(d.message.contains("(0, 1]"), "{}", d.message);
        let d = find("workflow w { task a { compute 1PFLOPS eff 0 } }", "E006");
        assert!(d.message.contains("got 0"), "{}", d.message);
    }

    #[test]
    fn e007_zero_replicas() {
        let d = find("workflow w { task a[0] { } }", "E007");
        assert!(d.message.contains("0 replicas"), "{}", d.message);
    }

    #[test]
    fn e008_duplicates() {
        let d = find("workflow w { task a { } task a { } }", "E008");
        assert!(d.message.contains("task `a`"), "{}", d.message);
        let d = find(
            "machine m { nodes 1 } machine m { nodes 2 } workflow w on m { task a { } }",
            "E008",
        );
        assert!(d.message.contains("machine `m`"), "{}", d.message);
    }

    #[test]
    fn w001_dead_ceiling() {
        // pm-gpu has no `dram` node resource (it has hbm) and no `bb`.
        let src = "workflow w on pm-gpu { task a { node_bytes dram 1GB system_bytes bb 1GB } }";
        let diags = lint_source(src);
        let w: Vec<_> = diags.iter().filter(|d| d.code == "W001").collect();
        assert_eq!(w.len(), 2, "{diags:?}");
        assert!(
            w[0].message.contains("no node resource `dram`"),
            "{}",
            w[0].message
        );
        assert!(
            w[1].message.contains("no system resource `bb`"),
            "{}",
            w[1].message
        );
        // A machine with no FLOP/s resource makes compute dead.
        let d = find(
            "machine m { nodes 4 node dram 100GB/s }
workflow w on m { task a { compute 1PFLOPS } }",
            "W001",
        );
        assert!(
            d.message.contains("no FLOP/s node resource"),
            "{}",
            d.message
        );
    }

    #[test]
    fn w002_unused_machine() {
        let d = find(
            "machine spare { nodes 4 node compute 1TFLOPS }
workflow w on pm-gpu { task a { } }",
            "W002",
        );
        assert!(d.message.contains("`spare`"), "{}", d.message);
        assert!(d.help.unwrap().contains("on spare"));
    }

    #[test]
    fn w003_zero_volume() {
        let d = find("workflow w { task a { compute 0FLOPS } }", "W003");
        assert!(d.message.contains("non-positive"), "{}", d.message);
        let d = find("workflow w { task a { system_bytes fs 0B } }", "W003");
        assert!(d.message.contains("system_bytes"), "{}", d.message);
    }

    #[test]
    fn w004_zero_nodes() {
        let d = find("workflow w { task a { nodes 0 } }", "W004");
        assert!(d.message.contains("nodes 0"), "{}", d.message);
    }

    #[test]
    fn w005_infeasible_throughput_names_binding_ceiling() {
        // One task at a time (chain), each needing 1000 s of external
        // transfer: throughput can never exceed ~0.001 tasks/s, let
        // alone 1 task/s.
        let src = "machine m { nodes 4 node compute 1TFLOPS system ext 1GB/s }
workflow w on m {
  targets { throughput 1 }
  task pull[4] chain { nodes 1 system_bytes ext 1TB }
}";
        let d = find(src, "W005");
        assert!(d.message.contains("unattainable"), "{}", d.message);
        assert!(
            d.help.unwrap().contains("ext"),
            "should name the binding ceiling"
        );
    }

    #[test]
    fn w005_infeasible_makespan() {
        let src = "machine m { nodes 4 node compute 1TFLOPS system ext 1GB/s }
workflow w on m {
  targets { makespan 10s }
  task pull[4] chain { nodes 1 system_bytes ext 1TB }
}";
        let d = find(src, "W005");
        assert!(d.message.contains("lower bound"), "{}", d.message);
    }

    #[test]
    fn w005_skipped_when_errors_present() {
        // The same infeasible target, but with an error elsewhere: W005
        // stays quiet because the model cannot be trusted.
        let src = "machine m { nodes 4 node compute 1TFLOPS system ext 1GB/s }
workflow w on m {
  targets { throughput 1 }
  task pull[4] chain { nodes 1 system_bytes ext 1TB after ghost }
}";
        let diags = lint_source(src);
        assert!(diags.iter().any(|d| d.code == "E002"));
        assert!(!diags.iter().any(|d| d.code == "W005"));
    }

    #[test]
    fn diagnostics_come_back_sorted_by_position() {
        let src = "workflow w {\n  task a[0] { }\n  task b { after ghost }\n}";
        let diags = lint_source(src);
        let lines: Vec<usize> = diags.iter().map(|d| d.span.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn lint_errors_filters_warnings() {
        let src = "workflow w on pm-gpu { task a[0] { node_bytes dram 1GB } }";
        let all = lint_source(src);
        assert!(all.iter().any(|d| d.severity == Severity::Warning));
        let ast = wrm_lang::parse(src).unwrap();
        let errs = lint_errors(&ast);
        assert!(!errs.is_empty());
        assert!(errs.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn registry_is_consistent() {
        // Codes are unique, ordered, and match their severity prefix.
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.code), "duplicate code {}", r.code);
            let expect = match r.severity {
                Severity::Error => 'E',
                Severity::Warning => 'W',
            };
            assert!(r.code.starts_with(expect), "{} vs {:?}", r.code, r.severity);
        }
        assert!(rule("E001").is_some());
        assert!(rule("Z999").is_none());
    }
}
