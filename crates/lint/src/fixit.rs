//! Applying machine-applicable fixes ([`SuggestedEdit`]) to source
//! text.
//!
//! Edits are applied as a batch: sorted by offset, overlapping or
//! out-of-bounds edits skipped (first wins), survivors spliced
//! back-to-front so earlier offsets stay valid.

use crate::diagnostics::{Diagnostic, SuggestedEdit};

/// The result of applying a batch of edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixOutcome {
    /// The edited source.
    pub fixed: String,
    /// Edits actually applied, in offset order.
    pub applied: Vec<SuggestedEdit>,
    /// Edits skipped because they overlapped an earlier one or fell
    /// outside the source.
    pub skipped: Vec<SuggestedEdit>,
}

/// Gathers every suggested edit from a batch of diagnostics, in
/// deterministic (offset, length, replacement) order, dropping exact
/// duplicates.
pub fn collect_edits(diags: &[Diagnostic]) -> Vec<SuggestedEdit> {
    let mut edits: Vec<SuggestedEdit> = diags.iter().flat_map(|d| d.fixes.clone()).collect();
    edits.sort_by(|a, b| (a.offset, a.len, &a.replacement).cmp(&(b.offset, b.len, &b.replacement)));
    edits.dedup();
    edits
}

/// Applies `edits` to `source`. Overlap resolution is first-wins in
/// offset order; callers get the skipped edits back so they can rerun
/// the linter and fix in a second round.
pub fn apply(source: &str, edits: &[SuggestedEdit]) -> FixOutcome {
    let mut sorted: Vec<SuggestedEdit> = edits.to_vec();
    sorted.sort_by_key(|e| (e.offset, e.len));
    let mut applied: Vec<SuggestedEdit> = Vec::new();
    let mut skipped = Vec::new();
    let mut watermark = 0usize;
    for e in sorted {
        let in_bounds = e.end_offset() <= source.len()
            && source.is_char_boundary(e.offset)
            && source.is_char_boundary(e.end_offset());
        if !in_bounds || e.offset < watermark {
            skipped.push(e);
            continue;
        }
        watermark = e.end_offset();
        applied.push(e);
    }
    let mut fixed = source.to_owned();
    for e in applied.iter().rev() {
        fixed.replace_range(e.offset..e.end_offset(), &e.replacement);
    }
    FixOutcome {
        fixed,
        applied,
        skipped,
    }
}

/// A minimal line diff (for `--fix --dry-run`): shared prefix/suffix
/// lines are elided, changed lines shown as `-`/`+` under one hunk
/// header.
pub fn diff(path: &str, old: &str, new: &str) -> String {
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let mut head = 0;
    while head < old_lines.len() && head < new_lines.len() && old_lines[head] == new_lines[head] {
        head += 1;
    }
    let mut tail = 0;
    while tail < old_lines.len() - head
        && tail < new_lines.len() - head
        && old_lines[old_lines.len() - 1 - tail] == new_lines[new_lines.len() - 1 - tail]
    {
        tail += 1;
    }
    let removed = &old_lines[head..old_lines.len() - tail];
    let added = &new_lines[head..new_lines.len() - tail];
    if removed.is_empty() && added.is_empty() {
        return format!("--- {path}\n+++ {path}\n(no changes)\n");
    }
    let mut out = format!(
        "--- {path}\n+++ {path}\n@@ -{},{} +{},{} @@\n",
        head + 1,
        removed.len(),
        head + 1,
        added.len()
    );
    for l in removed {
        out.push_str(&format!("-{l}\n"));
    }
    for l in added {
        out.push_str(&format!("+{l}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Span;

    fn edit(offset: usize, len: usize, replacement: &str) -> SuggestedEdit {
        SuggestedEdit {
            offset,
            len,
            replacement: replacement.to_owned(),
            title: String::new(),
        }
    }

    #[test]
    fn edits_apply_back_to_front() {
        let src = "nodes 0 eff 2";
        let out = apply(src, &[edit(6, 1, "1"), edit(12, 1, "0.9")]);
        assert_eq!(out.fixed, "nodes 1 eff 0.9");
        assert_eq!(out.applied.len(), 2);
        assert!(out.skipped.is_empty());
    }

    #[test]
    fn overlapping_edits_first_wins() {
        let src = "makespan 600s";
        let out = apply(
            src,
            &[edit(9, 4, "800s"), edit(9, 4, "900s"), edit(11, 2, "x")],
        );
        assert_eq!(out.fixed, "makespan 800s");
        assert_eq!(out.skipped.len(), 2);
    }

    #[test]
    fn out_of_bounds_edits_are_skipped() {
        let out = apply("abc", &[edit(10, 2, "x")]);
        assert_eq!(out.fixed, "abc");
        assert_eq!(out.skipped.len(), 1);
    }

    #[test]
    fn deletion_and_insertion() {
        let src = "a after b c";
        let out = apply(src, &[edit(2, 8, ""), edit(11, 0, "!")]);
        assert_eq!(out.fixed, "a c!");
    }

    #[test]
    fn collect_orders_and_dedups() {
        let d1 = Diagnostic::warning("W004", Span::new(1, 1), "m")
            .with_fix(edit(5, 1, "1"))
            .with_fix(edit(2, 1, "x"));
        let d2 = Diagnostic::warning("W006", Span::new(2, 1), "m").with_fix(edit(5, 1, "1"));
        let edits = collect_edits(&[d1, d2]);
        assert_eq!(edits.len(), 2);
        assert_eq!(edits[0].offset, 2);
        assert_eq!(edits[1].offset, 5);
    }

    #[test]
    fn diff_shows_only_changed_lines() {
        let old = "a\nb\nc\n";
        let new = "a\nB\nc\n";
        let d = diff("w.wrm", old, new);
        assert!(d.contains("--- w.wrm"), "{d}");
        assert!(d.contains("@@ -2,1 +2,1 @@"), "{d}");
        assert!(d.contains("-b\n"), "{d}");
        assert!(d.contains("+B\n"), "{d}");
        assert!(!d.contains("-a"), "{d}");
        let d = diff("w.wrm", old, old);
        assert!(d.contains("no changes"), "{d}");
    }
}
