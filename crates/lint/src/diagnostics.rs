//! Diagnostic data model: severities, stable rule codes, source spans,
//! and rendered caret snippets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered so `max()` picks the worst severity in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// The spec is suspicious or wasteful but still analyzable.
    Warning,
    /// The spec cannot be compiled into a meaningful model.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A 1-based source position, matching the lexer's line/column scheme,
/// plus the byte range of the spanned text (when known) so fix-its and
/// SARIF regions can address the source precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Byte offset of the spanned text (0 when only a position is
    /// known).
    #[serde(default)]
    pub offset: usize,
    /// Byte length of the spanned text (0 when only a position is
    /// known).
    #[serde(default)]
    pub len: usize,
}

impl Span {
    /// A span at `line:col` with no byte range.
    pub fn new(line: usize, col: usize) -> Self {
        Self {
            line,
            col,
            offset: 0,
            len: 0,
        }
    }

    /// A span at `line:col` covering `len` bytes starting at `offset`.
    pub fn with_range(line: usize, col: usize, offset: usize, len: usize) -> Self {
        Self {
            line,
            col,
            offset,
            len,
        }
    }

    /// The "unknown location" sentinel used when a construct has no
    /// recorded position.
    pub fn unknown() -> Self {
        Self::new(0, 0)
    }

    /// True when the span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }

    /// True when the span carries a usable byte range.
    pub fn has_range(&self) -> bool {
        self.len > 0
    }

    /// One past the last byte of the spanned text.
    pub fn end_offset(&self) -> usize {
        self.offset + self.len
    }
}

impl From<wrm_lang::Span> for Span {
    fn from(s: wrm_lang::Span) -> Self {
        Self {
            line: s.line,
            col: s.col,
            offset: s.offset,
            len: s.len,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A machine-applicable edit: replace `len` bytes at `offset` with
/// `replacement`. `len == 0` inserts; an empty replacement deletes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuggestedEdit {
    /// Byte offset of the start of the replaced range.
    pub offset: usize,
    /// Byte length of the replaced range.
    pub len: usize,
    /// Text to splice in.
    pub replacement: String,
    /// Short human description of the edit.
    pub title: String,
}

impl SuggestedEdit {
    /// An edit replacing the bytes under `span` (which must carry a
    /// range) with `replacement`.
    pub fn replace_span(
        span: Span,
        replacement: impl Into<String>,
        title: impl Into<String>,
    ) -> Self {
        Self {
            offset: span.offset,
            len: span.len,
            replacement: replacement.into(),
            title: title.into(),
        }
    }

    /// One past the last replaced byte.
    pub fn end_offset(&self) -> usize {
        self.offset + self.len
    }
}

/// One finding from the linter: a stable rule code, a severity, a source
/// span, and a human-readable message (plus an optional help line).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code (`E001`, `W003`, ...). `E000` is reserved for
    /// syntax errors surfaced through the linter.
    pub code: String,
    /// Whether this is an error or a warning.
    pub severity: Severity,
    /// Where in the source the problem is anchored.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// Optional guidance on how to fix it.
    pub help: Option<String>,
    /// Machine-applicable edits that resolve the diagnostic (empty when
    /// no automatic fix exists).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fixes: Vec<SuggestedEdit>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code: code.to_owned(),
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
            fixes: Vec::new(),
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: &str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code: code.to_owned(),
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
            fixes: Vec::new(),
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attaches a machine-applicable fix.
    pub fn with_fix(mut self, fix: SuggestedEdit) -> Self {
        self.fixes.push(fix);
        self
    }

    /// True when the diagnostic carries at least one suggested edit.
    pub fn is_fixable(&self) -> bool {
        !self.fixes.is_empty()
    }

    /// One-line rendering: `error[E001] 3:9: message`.
    pub fn one_line(&self) -> String {
        if self.span.is_known() {
            format!(
                "{}[{}] {}: {}",
                self.severity, self.code, self.span, self.message
            )
        } else {
            format!("{}[{}]: {}", self.severity, self.code, self.message)
        }
    }

    /// Multi-line rendering with a caret snippet pointing into `source`:
    ///
    /// ```text
    /// error[E001] 3:9: unknown machine `pm-gpuu`
    ///   |
    /// 3 | machine pm-gpuu
    ///   |         ^
    ///   = help: did you mean `pm-gpu`?
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = self.one_line();
        if self.span.is_known() {
            if let Some(line_text) = source.lines().nth(self.span.line - 1) {
                let number = self.span.line.to_string();
                let gutter = " ".repeat(number.len());
                out.push_str(&format!("\n{gutter} |\n{number} | {line_text}"));
                let caret_pad = " ".repeat(self.span.col.saturating_sub(1));
                out.push_str(&format!("\n{gutter} | {caret_pad}^"));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_includes_code_span_and_message() {
        let d = Diagnostic::error("E001", Span::new(3, 9), "unknown machine `x`");
        assert_eq!(d.one_line(), "error[E001] 3:9: unknown machine `x`");
    }

    #[test]
    fn render_points_a_caret_at_the_column() {
        let src = "workflow w\nmachine pm-gpuu\n";
        let d = Diagnostic::error("E001", Span::new(2, 9), "unknown machine `pm-gpuu`")
            .with_help("did you mean `pm-gpu`?");
        let r = d.render(src);
        assert!(r.contains("2 | machine pm-gpuu"), "{r}");
        assert!(r.contains("  |         ^"), "{r}");
        assert!(r.contains("= help: did you mean `pm-gpu`?"), "{r}");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn diagnostic_round_trips_through_json() {
        let d = Diagnostic::warning("W002", Span::new(7, 1), "unused machine `m`")
            .with_help("remove it");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn unknown_span_is_omitted_from_text() {
        let d = Diagnostic::error("E008", Span::unknown(), "duplicate task `a`");
        assert_eq!(d.one_line(), "error[E008]: duplicate task `a`");
    }

    #[test]
    fn fixes_round_trip_and_legacy_json_still_loads() {
        let d = Diagnostic::warning("W004", Span::with_range(4, 11, 40, 1), "nodes 0").with_fix(
            SuggestedEdit::replace_span(
                Span::with_range(4, 11, 40, 1),
                "1",
                "replace `0` with `1`",
            ),
        );
        assert!(d.is_fixable());
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Diagnostics serialized before spans carried byte ranges (and
        // before `fixes` existed) still deserialize.
        let legacy = r#"{"code":"E001","severity":"error","span":{"line":2,"col":15},
                         "message":"unknown machine `summit`","help":null}"#;
        let back: Diagnostic = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.span, Span::new(2, 15));
        assert!(back.fixes.is_empty());
    }
}
