//! Diagnostic data model: severities, stable rule codes, source spans,
//! and rendered caret snippets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered so `max()` picks the worst severity in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// The spec is suspicious or wasteful but still analyzable.
    Warning,
    /// The spec cannot be compiled into a meaningful model.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A 1-based source position, matching the lexer's line/column scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl Span {
    /// A span at `line:col`.
    pub fn new(line: usize, col: usize) -> Self {
        Self { line, col }
    }

    /// The "unknown location" sentinel used when a construct has no
    /// recorded position.
    pub fn unknown() -> Self {
        Self { line: 0, col: 0 }
    }

    /// True when the span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One finding from the linter: a stable rule code, a severity, a source
/// span, and a human-readable message (plus an optional help line).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code (`E001`, `W003`, ...). `E000` is reserved for
    /// syntax errors surfaced through the linter.
    pub code: String,
    /// Whether this is an error or a warning.
    pub severity: Severity,
    /// Where in the source the problem is anchored.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// Optional guidance on how to fix it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code: code.to_owned(),
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: &str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code: code.to_owned(),
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// One-line rendering: `error[E001] 3:9: message`.
    pub fn one_line(&self) -> String {
        if self.span.is_known() {
            format!(
                "{}[{}] {}: {}",
                self.severity, self.code, self.span, self.message
            )
        } else {
            format!("{}[{}]: {}", self.severity, self.code, self.message)
        }
    }

    /// Multi-line rendering with a caret snippet pointing into `source`:
    ///
    /// ```text
    /// error[E001] 3:9: unknown machine `pm-gpuu`
    ///   |
    /// 3 | machine pm-gpuu
    ///   |         ^
    ///   = help: did you mean `pm-gpu`?
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = self.one_line();
        if self.span.is_known() {
            if let Some(line_text) = source.lines().nth(self.span.line - 1) {
                let number = self.span.line.to_string();
                let gutter = " ".repeat(number.len());
                out.push_str(&format!("\n{gutter} |\n{number} | {line_text}"));
                let caret_pad = " ".repeat(self.span.col.saturating_sub(1));
                out.push_str(&format!("\n{gutter} | {caret_pad}^"));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_includes_code_span_and_message() {
        let d = Diagnostic::error("E001", Span::new(3, 9), "unknown machine `x`");
        assert_eq!(d.one_line(), "error[E001] 3:9: unknown machine `x`");
    }

    #[test]
    fn render_points_a_caret_at_the_column() {
        let src = "workflow w\nmachine pm-gpuu\n";
        let d = Diagnostic::error("E001", Span::new(2, 9), "unknown machine `pm-gpuu`")
            .with_help("did you mean `pm-gpu`?");
        let r = d.render(src);
        assert!(r.contains("2 | machine pm-gpuu"), "{r}");
        assert!(r.contains("  |         ^"), "{r}");
        assert!(r.contains("= help: did you mean `pm-gpu`?"), "{r}");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn diagnostic_round_trips_through_json() {
        let d = Diagnostic::warning("W002", Span::new(7, 1), "unused machine `m`")
            .with_help("remove it");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn unknown_span_is_omitted_from_text() {
        let d = Diagnostic::error("E008", Span::unknown(), "duplicate task `a`");
        assert_eq!(d.one_line(), "error[E008]: duplicate task `a`");
    }
}
