//! Property tests for the interval abstract domain.
//!
//! The analyzer's soundness rests on `Interval` being a well-behaved
//! lattice of time bounds: every operation must preserve the `lo <= hi`
//! invariant, be monotone in both arguments, and — the property that
//! makes interval propagation a *proof* — be sound under point
//! refinement: if `x in a` and `y in b` then `f(x, y) in f(a, b)` for
//! each lifted operation `f`.

use proptest::prelude::*;
use wrm_lint::Interval;

/// A well-formed interval with finite non-negative ends.
fn interval() -> impl Strategy<Value = Interval> {
    (0.0f64..1e6, 0.0f64..1e6).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

/// `a` widened on both ends, so `a` is a sub-interval of the result.
fn widen(a: Interval, down: f64, up: f64) -> Interval {
    Interval::new(a.lo - down, a.hi + up)
}

proptest! {
    #[test]
    fn operations_preserve_the_ordering_invariant(
        a in interval(),
        b in interval(),
        k in 0.0f64..100.0,
    ) {
        for i in [a + b, a.max(b), a.hull(b), a.scale(k)] {
            prop_assert!(i.lo <= i.hi, "lo <= hi violated: {i}");
            prop_assert!(i.lo >= 0.0, "negative lower bound: {i}");
        }
    }

    #[test]
    fn add_max_and_hull_are_monotone(
        a in interval(),
        b in interval(),
        down in 0.0f64..100.0,
        up in 0.0f64..100.0,
    ) {
        // Widening one argument can only widen the result: the wider
        // result must contain the narrower one end-for-end.
        let w = widen(a, down, up);
        let contains = |outer: Interval, inner: Interval| {
            outer.lo <= inner.lo && outer.hi >= inner.hi
        };
        prop_assert!(contains(w + b, a + b));
        prop_assert!(contains(w.max(b), a.max(b)));
        prop_assert!(contains(w.hull(b), a.hull(b)));
    }

    #[test]
    fn scale_is_monotone_in_the_factor(a in interval(), k in 0.0f64..100.0, dk in 0.0f64..10.0) {
        let small = a.scale(k);
        let big = a.scale(k + dk);
        prop_assert!(small.lo <= big.lo && small.hi <= big.hi);
    }

    #[test]
    fn lifted_operations_are_sound_under_point_refinement(
        a in interval(),
        b in interval(),
        tx in 0.0f64..=1.0,
        ty in 0.0f64..=1.0,
        k in 0.0f64..100.0,
    ) {
        let x = a.lo + tx * (a.hi - a.lo);
        let y = b.lo + ty * (b.hi - b.lo);
        prop_assert!(a.contains(x) && b.contains(y));
        prop_assert!((a + b).contains(x + y), "{a} + {b} misses {x} + {y}");
        prop_assert!(a.max(b).contains(x.max(y)), "max unsound");
        prop_assert!(a.hull(b).contains(x) && a.hull(b).contains(y), "hull unsound");
        // Allow one ulp of slack for the scaled product: the interval
        // ends and the refined point round independently.
        let s = a.scale(k);
        let p = x * k;
        prop_assert!(
            s.lo <= p * (1.0 + 1e-12) + f64::MIN_POSITIVE
                && s.hi >= p * (1.0 - 1e-12) - f64::MIN_POSITIVE,
            "scale unsound: {s} misses {p}"
        );
    }

    #[test]
    fn zero_is_the_additive_identity_and_hull_max_are_idempotent(a in interval()) {
        prop_assert_eq!(a + Interval::ZERO, a);
        prop_assert_eq!(Interval::ZERO + a, a);
        prop_assert_eq!(a.max(a), a);
        prop_assert_eq!(a.hull(a), a);
    }

    #[test]
    fn add_and_max_commute_and_hull_is_the_least_upper_bound(
        a in interval(),
        b in interval(),
        c in interval(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.hull(b), b.hull(a));
        // Hull of hulls is associative on these finite inputs.
        prop_assert_eq!(a.hull(b).hull(c), a.hull(b.hull(c)));
    }
}
