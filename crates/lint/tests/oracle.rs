//! Bracketing oracle over every `.wrm` spec in the repository.
//!
//! The lint pass prints certified intervals for user-authored specs, so
//! the guarantee has to hold for exactly what the compiler hands the
//! simulator: for every spec under `workflows/` (shipped and defect
//! fixtures alike) that compiles onto a resolved machine,
//! `lo * (1 - 1e-6) <= DES makespan <= hi` with `hi` finite. Specs
//! that fail to parse, compile, or simulate (that is what many of the
//! defect fixtures are for) are skipped — but the certificate must
//! fail on exactly the specs the simulator fails on, never certify an
//! unrunnable workflow.

use wrm_sim::{certify, simulate_makespan, Scenario, SimOptions};

fn workflows_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workflows")
}

fn wrm_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wrm"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_compilable_spec_is_bracketed() {
    let dir = workflows_dir();
    let mut checked = 0usize;
    let mut paths = wrm_files(&dir);
    paths.extend(wrm_files(&dir.join("bad")));
    assert!(paths.len() >= 20, "expected the full fixture set");
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let Ok(compiled) = wrm_lang::compile_source(&source) else {
            continue; // syntax/semantic defect fixtures
        };
        let Some(machine) = compiled.machine else {
            continue; // unknown machine (E001 fixture)
        };
        let scenario = Scenario::new(machine.clone(), compiled.spec.clone());
        match certify(&machine, &compiled.spec, &SimOptions::default()) {
            Ok(cert) => {
                let makespan =
                    simulate_makespan(&scenario).unwrap_or_else(|e| panic!("{name}: sim: {e}"));
                assert!(cert.hi.is_finite(), "{name}: hi is not finite");
                assert!(
                    cert.lo * (1.0 - 1e-6) <= makespan && makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
                    "{name}: bracket {} <= {} <= {} violated",
                    cert.lo,
                    makespan,
                    cert.hi
                );
                checked += 1;
            }
            Err(cert_err) => {
                let sim_err = simulate_makespan(&scenario)
                    .expect_err(&format!("{name}: certify failed but the DES ran"));
                assert_eq!(cert_err, sim_err, "{name}: error parity");
            }
        }
    }
    assert!(
        checked >= 10,
        "only {checked} specs certified — harness broken?"
    );
}
