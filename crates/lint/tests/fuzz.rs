//! Property tests: the linter must never panic, whatever the input.
//!
//! `lint_source` is the entry point the CLI hands raw files to, so it
//! has to absorb arbitrary bytes (E000), arbitrary parseable-but-absurd
//! specs (the parser is deliberately permissive about values), and
//! hostile dependency graphs without crashing.

use proptest::prelude::*;
use wrm_lint::{apply_fixes, collect_edits, lint_source, max_severity, Severity};

proptest! {
    #[test]
    fn never_panics_on_arbitrary_text(src in "[ -~\n]{0,200}") {
        let _ = lint_source(&src);
    }

    #[test]
    fn never_panics_on_keyword_soup(words in proptest::collection::vec(prop_oneof![
        Just("workflow"), Just("machine"), Just("task"), Just("targets"),
        Just("nodes"), Just("compute"), Just("node_bytes"), Just("system_bytes"),
        Just("overhead"), Just("after"), Just("eff"), Just("cap"), Just("on"),
        Just("{"), Just("}"), Just("["), Just("]"), Just("per"),
        Just("1TB"), Just("0"), Just("-3"), Just("2.5GB/s"), Just("pm-cpu"),
        Just("a"), Just("b"), Just("\n"),
    ], 0..40)) {
        let _ = lint_source(&words.join(" "));
    }

    #[test]
    fn diagnostics_always_have_registered_codes(
        count in 0usize..6,
        nodes in 0usize..5000,
        // The lexer has no unary minus, so stay non-negative; 0.0 and
        // anything above 1.0 still trip E006.
        eff in 0.0f64..2.0,
    ) {
        // A generated spec that can trip E005/E006/E007/W003/W004
        // depending on the drawn values; whatever fires must come from
        // the registry and E000 must not (the spec is syntactically
        // valid).
        let src = format!(
            "workflow w on pm-cpu {{\n  task a[{count}] {{\n    nodes {nodes}\n    \
             compute 1TFLOPS eff {eff:.3}\n  }}\n}}\n"
        );
        for d in lint_source(&src) {
            prop_assert!(wrm_lint::rule(&d.code).is_some(), "unregistered code {}", d.code);
            prop_assert!(d.code != "E000", "valid spec produced a syntax error");
        }
    }

    #[test]
    fn random_dependency_graphs_never_hang_or_panic(edges in proptest::collection::vec(
        (0usize..8, 0usize..8), 0..16,
    )) {
        // 8 tasks with random `after` edges: cycles, self-loops, and
        // duplicate edges are all fair game for E004.
        let mut src = String::from("workflow w on pm-cpu {\n");
        for i in 0..8 {
            src.push_str(&format!("  task t{i} {{\n    nodes 1\n    compute 1TFLOPS\n"));
            for (from, to) in &edges {
                if *from == i {
                    src.push_str(&format!("    after t{to}\n"));
                }
            }
            src.push_str("  }\n");
        }
        src.push_str("}\n");
        let diags = lint_source(&src);
        // Syntactically valid by construction; cycles surface as E004,
        // never as a panic or a bogus syntax error.
        for d in &diags {
            prop_assert!(d.code != "E000", "valid spec produced a syntax error");
        }
        let has_self_loop = edges.iter().any(|(f, t)| f == t);
        if has_self_loop {
            prop_assert_eq!(max_severity(&diags), Some(Severity::Error));
            prop_assert!(diags.iter().any(|d| d.code == "E004"));
        }
    }

    /// `--fix` round trip: applying every suggested edit yields a file
    /// that still parses, and re-linting it no longer reports the fixed
    /// diagnostic at its original (code, line). Specs here draw from
    /// the fixable rules' trigger space: zero nodes/replicas (W004,
    /// E007), out-of-range eff (E006), redundant and duplicate `after`
    /// edges (W006), and infeasible makespan targets (W009).
    #[test]
    fn applied_fixes_reparse_and_resolve_their_diagnostics(
        count in 0usize..3,
        nodes in 0usize..3,
        eff in prop_oneof![Just(0.0f64), Just(0.5), Just(2.0)],
        makespan in 1usize..2000,
        dup_edge in any::<bool>(),
        transitive_edge in any::<bool>(),
    ) {
        let mut src = format!(
            "machine m {{ nodes 16 node compute 1TFLOPS system ext 1GB/s }}\n\
             workflow w on m {{\n  targets {{ makespan {makespan}s }}\n  \
             task a[{count}] {{ nodes {nodes} compute 1PFLOPS eff {eff:.1} \
             system_bytes ext 100GB }}\n  \
             task b {{ after a }}\n  task c {{ after b"
        );
        if dup_edge {
            src.push_str(" after b");
        }
        if transitive_edge {
            src.push_str(" after a");
        }
        src.push_str(" }\n}\n");

        let diags = lint_source(&src);
        let edits = collect_edits(&diags);
        let outcome = apply_fixes(&src, &edits);
        // Whatever was applied, the result must still parse.
        let reparsed = wrm_lang::parse(&outcome.fixed);
        prop_assert!(reparsed.is_ok(), "fixed source fails to parse:\n{}", outcome.fixed);

        // Every fixable diagnostic whose edits all landed must be gone
        // from the re-lint at its original (code, line) anchor.
        let relinted = lint_source(&outcome.fixed);
        for d in diags.iter().filter(|d| !d.fixes.is_empty()) {
            let all_applied = d
                .fixes
                .iter()
                .all(|f| outcome.applied.contains(f));
            if all_applied {
                prop_assert!(
                    !relinted
                        .iter()
                        .any(|r| r.code == d.code && r.span.line == d.span.line),
                    "{} at line {} survived its own fix:\n{}\nrelinted: {relinted:?}",
                    d.code,
                    d.span.line,
                    outcome.fixed
                );
            }
        }
    }
}
