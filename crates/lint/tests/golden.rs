//! Golden-file tests for the linter.
//!
//! Every defect fixture in `workflows/bad/` fires its rule with a
//! stable code, an exact source span, and an exact message; every
//! shipped workflow in `workflows/` lints without errors; and the
//! fixture set jointly exercises every rule in the registry.

use wrm_lint::{lint_source, Diagnostic, Severity, RULES};

fn workflows_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workflows")
}

fn lint_file(rel: &str) -> (String, Vec<Diagnostic>) {
    let path = workflows_dir().join(rel);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let diags = lint_source(&source);
    (source, diags)
}

/// One expected diagnostic: fixture file, code, 1-based line:col, and
/// the exact message.
struct Golden {
    file: &'static str,
    code: &'static str,
    line: usize,
    col: usize,
    message: &'static str,
}

const GOLDENS: &[Golden] = &[
    Golden {
        file: "bad/syntax_error.wrm",
        code: "E000",
        line: 5,
        col: 3,
        message: "syntax error: nodes: expected a number, found `}`",
    },
    Golden {
        file: "bad/unknown_machine.wrm",
        code: "E001",
        line: 2,
        col: 15,
        message: "unknown machine `summit`",
    },
    Golden {
        file: "bad/undeclared_dep.wrm",
        code: "E002",
        line: 6,
        col: 11,
        message: "task `a` depends on undeclared task `ghost`",
    },
    Golden {
        file: "bad/replica_index.wrm",
        code: "E003",
        line: 10,
        col: 11,
        message: "task `b` references `a[2]` but only 2 replica(s) exist",
    },
    Golden {
        file: "bad/cycle.wrm",
        code: "E004",
        line: 11,
        col: 11,
        message: "dependency cycle: a -> b -> a",
    },
    Golden {
        file: "bad/task_too_large.wrm",
        code: "E005",
        line: 5,
        col: 11,
        message: "task `huge` needs 4000 nodes but machine `Perlmutter CPU` has only 3072",
    },
    Golden {
        file: "bad/bad_eff.wrm",
        code: "E006",
        line: 5,
        col: 25,
        message: "eff must be in (0, 1], got 1.5",
    },
    Golden {
        file: "bad/zero_replicas.wrm",
        code: "E007",
        line: 3,
        col: 10,
        message: "task `a` declares 0 replicas",
    },
    Golden {
        file: "bad/duplicate_task.wrm",
        code: "E008",
        line: 7,
        col: 8,
        message: "task `a` is declared twice",
    },
    Golden {
        file: "bad/dead_ceiling.wrm",
        code: "W001",
        line: 6,
        col: 5,
        message: "machine `Perlmutter CPU` has no node resource `hbm`; this `node_bytes` phase \
                  imposes no ceiling",
    },
    Golden {
        file: "bad/unused_machine.wrm",
        code: "W002",
        line: 2,
        col: 9,
        message: "machine `spare` is declared but never used",
    },
    Golden {
        file: "bad/zero_volume.wrm",
        code: "W003",
        line: 5,
        col: 5,
        message: "`compute` in task `a` has non-positive volume (0); the phase imposes no ceiling",
    },
    Golden {
        file: "bad/zero_nodes.wrm",
        code: "W004",
        line: 4,
        col: 11,
        message: "task `a` declares `nodes 0`; the compiler treats it as 1 node",
    },
    Golden {
        file: "bad/redundant_edge.wrm",
        code: "W006",
        line: 7,
        col: 20,
        message: "`after a` on task `c` is redundant: `a` already precedes `c` through other \
                  dependencies",
    },
    Golden {
        file: "bad/infeasible_interval.wrm",
        code: "W009",
        line: 7,
        col: 22,
        message: "makespan target 1500s is infeasible: the dependency chain fetch -> crunch \
                  alone needs at least 2000.000s",
    },
    Golden {
        file: "bad/certified_interval.wrm",
        code: "W010",
        line: 9,
        col: 22,
        message: "makespan target 60s is undetermined: it falls inside the certified interval \
                  [40.000s, 82.000s]",
    },
    Golden {
        file: "bad/pool_bound.wrm",
        code: "W012",
        line: 9,
        col: 24,
        message: "workflow is node-pool/chain-bound: with every channel infinitely fast the \
                  certified makespan lower bound is still 250.000s (currently 250.000s); \
                  channel capacity sweeps provably cannot help",
    },
    Golden {
        file: "bad/infeasible_floor.wrm",
        code: "E010",
        line: 7,
        col: 22,
        message: "makespan target 50s is infeasible under any channel provisioning: with every \
                  channel infinitely fast, fixed phases alone still need 100.000s",
    },
    Golden {
        file: "bad/negative_sigma.wrm",
        code: "E011",
        line: 5,
        col: 13,
        message: "invalid distribution in task `a`: sigma must be >= 0, got -0.5",
    },
    Golden {
        file: "bad/empty_empirical.wrm",
        code: "E011",
        line: 5,
        col: 21,
        message: "invalid distribution in task `a`: empirical distribution needs at least one \
                  sample",
    },
];

#[test]
fn every_defect_fixture_fires_its_rule_exactly() {
    for g in GOLDENS {
        let (_, diags) = lint_file(g.file);
        assert_eq!(
            diags.len(),
            1,
            "{}: expected exactly one diagnostic, got {diags:?}",
            g.file
        );
        let d = &diags[0];
        assert_eq!(d.code, g.code, "{}: wrong code", g.file);
        assert_eq!(
            (d.span.line, d.span.col),
            (g.line, g.col),
            "{}: wrong span for {}",
            g.file,
            g.code
        );
        assert_eq!(d.message, g.message, "{}: wrong message", g.file);
    }
}

#[test]
fn infeasible_target_fixture_names_the_binding_ceiling() {
    let (_, diags) = lint_file("bad/infeasible_target.wrm");
    let shape: Vec<(&str, usize, usize)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.span.line, d.span.col))
        .collect();
    assert_eq!(
        shape,
        vec![
            ("W005", 5, 22), // makespan below the roofline lower bound
            ("W009", 5, 22), // ...and below the interval critical-path bound
            ("W005", 5, 38), // throughput above the envelope
            ("W008", 8, 5),  // the shared link also starves each replica
        ],
        "{diags:?}"
    );
    for d in &diags {
        assert_eq!(d.severity, Severity::Warning);
    }
    let w005: Vec<_> = diags.iter().filter(|d| d.code == "W005").collect();
    for d in &w005 {
        let help = d.help.as_deref().expect("W005 carries a help line");
        assert!(
            help.contains("binding ceiling: System External"),
            "help must name the binding ceiling, got: {help}"
        );
    }
    // The makespan diagnostic quotes the theoretical lower bound
    // (4 tasks x 1 TB over 5 GB/s = 800 s) and the throughput one the
    // attainable cap (5 GB/s / 1 TB = 0.005 tasks/s).
    assert!(w005[0].message.contains("lower bound 800.000s"));
    assert!(w005[1].message.contains("caps at 0.005000 tasks/s"));
}

#[test]
fn interval_pass_certifies_a_bound_above_the_roofline() {
    // The chain fetch -> crunch needs 1000 s + 1000 s = 2000 s, while
    // the aggregate roofline bound is only 1000 s: W009 flags the
    // 1500 s target, W005 stays quiet, and the fix-it raises the
    // target past the certified bound.
    let (source, diags) = lint_file("bad/infeasible_interval.wrm");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, "W009");
    assert!(
        d.message.contains("at least 2000.000s"),
        "critical-path lower bound must be certified: {}",
        d.message
    );
    let help = d.help.as_deref().expect("W009 carries a help line");
    assert!(help.contains("[2000.000, 2000.000]"), "{help}");
    assert!(help.contains("roofline lower bound is 1000.000s"), "{help}");
    assert_eq!(d.fixes.len(), 1);
    let fix = &d.fixes[0];
    assert_eq!(fix.replacement, "2000s");
    assert_eq!(&source[fix.offset..fix.offset + fix.len], "1500s");
}

#[test]
fn unsaturable_channel_is_also_provably_overprovisioned() {
    // The same capped-stream geometry triggers both statements: W007
    // (the contention ceiling can never bind) and W011 (re-certifying
    // at the cap sum provably leaves the makespan interval in place).
    let (_, diags) = lint_file("bad/unsaturable_channel.wrm");
    let shape: Vec<(&str, usize, usize)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.span.line, d.span.col))
        .collect();
    assert_eq!(shape, vec![("W007", 6, 26), ("W011", 6, 26)], "{diags:?}");
    assert_eq!(
        diags[1].message,
        "channel `fs` is over-provisioned: reducing its capacity from 100.00 GB/s to \
         4.00 GB/s provably leaves the certified makespan interval [10.000s, 12.500s] unchanged"
    );
}

#[test]
fn overprovisioned_fixture_proves_reduction_by_recertification() {
    let (_, diags) = lint_file("bad/overprovisioned_channel.wrm");
    let shape: Vec<(&str, usize, usize)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.span.line, d.span.col))
        .collect();
    assert_eq!(shape, vec![("W007", 8, 23), ("W011", 8, 23)], "{diags:?}");
    let w011 = &diags[1];
    assert_eq!(
        w011.message,
        "channel `fs` is over-provisioned: reducing its capacity from 100.00 GB/s to \
         2.00 GB/s provably leaves the certified makespan interval [10.000s, 15.000s] unchanged"
    );
    let help = w011.help.as_deref().expect("W011 carries a help line");
    assert!(help.contains("spare 98.00 GB/s"), "{help}");
}

#[test]
fn starved_channel_target_is_also_inside_the_certified_interval() {
    // W008's starvation diagnosis stands, and the certificate adds the
    // two-sided view: 150 s sits between the 100.9 s aggregate floor
    // and the 1009 s contended upper bound, so the target is
    // undetermined rather than provably missed.
    let (_, diags) = lint_file("bad/starved_channel.wrm");
    let shape: Vec<(&str, usize, usize)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.span.line, d.span.col))
        .collect();
    assert_eq!(shape, vec![("W010", 7, 22), ("W008", 9, 23)], "{diags:?}");
    assert_eq!(
        diags[0].message,
        "makespan target 150s is undetermined: it falls inside the certified interval \
         [100.900s, 1009.000s]"
    );
}

#[test]
fn w010_report_is_byte_identical_across_runs() {
    let (_, first) = lint_file("bad/certified_interval.wrm");
    for _ in 0..3 {
        let (_, again) = lint_file("bad/certified_interval.wrm");
        assert_eq!(first, again);
    }
    let help = first[0].help.as_deref().expect("W010 carries the witness");
    // The witness decomposition names both ends' terms and the binding
    // strengths from the attribution lattice.
    assert!(help.contains("chain a[0] = 11.000s"), "{help}");
    assert!(help.contains("`fs` 40.000s"), "{help}");
    assert!(help.contains("node pool 11.000s"), "{help}");
    assert!(
        help.contains("min(serial 164.000s, chain 41.000s"),
        "{help}"
    );
    assert!(
        help.contains("chain=may, system-channel `fs`=may"),
        "{help}"
    );
}

#[test]
fn e010_suppresses_w009_and_carries_a_fix() {
    let (source, diags) = lint_file("bad/infeasible_floor.wrm");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, "E010");
    assert_eq!(d.severity, Severity::Error);
    // W009 would have fired on its own (50 s < the 100 s chain bound)
    // but the strictly stronger E010 replaces it.
    assert!(!diags.iter().any(|x| x.code == "W009"));
    assert_eq!(d.fixes.len(), 1);
    let fix = &d.fixes[0];
    assert_eq!(fix.replacement, "100s");
    assert_eq!(&source[fix.offset..fix.offset + fix.len], "50s");
}

#[test]
fn w009_fires_without_e010_when_channels_drive_the_infeasibility() {
    // infeasible_interval's 2000 s chain bound is half transfer time:
    // with channels zeroed only the 1000 s compute remains, which the
    // 1500 s target clears — so E010 must stay quiet and the weaker
    // (but still certified) W009 does the talking.
    let (_, diags) = lint_file("bad/infeasible_interval.wrm");
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, vec!["W009"], "{diags:?}");
}

#[test]
fn unreachable_task_rides_along_with_the_cycle() {
    let (_, diags) = lint_file("bad/unreachable_task.wrm");
    let shape: Vec<(&str, usize, usize)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.span.line, d.span.col))
        .collect();
    assert_eq!(shape, vec![("E004", 6, 18), ("E009", 7, 8)], "{diags:?}");
    assert!(diags[1].message.contains("task `report` can never start"));
}

#[test]
fn fixture_set_covers_every_rule_in_the_registry() {
    let mut fired = std::collections::BTreeSet::new();
    let dir = workflows_dir().join("bad");
    for entry in std::fs::read_dir(&dir).expect("read workflows/bad") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("wrm") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        for d in lint_source(&source) {
            assert!(
                d.span.is_known(),
                "{}: {} has an unknown span",
                path.display(),
                d.code
            );
            fired.insert(d.code.clone());
        }
    }
    let registry: std::collections::BTreeSet<String> =
        RULES.iter().map(|r| r.code.to_owned()).collect();
    assert_eq!(
        fired, registry,
        "workflows/bad/ must exercise exactly the registered rules"
    );
}

#[test]
fn shipped_workflows_lint_without_errors() {
    let mut seen = 0;
    for entry in std::fs::read_dir(workflows_dir()).expect("read workflows/") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("wrm") {
            continue;
        }
        seen += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let diags = lint_source(&source);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{} has lint errors: {errors:?}",
            path.display()
        );
        for d in &diags {
            assert!(
                d.span.is_known(),
                "{}: {} has an unknown span",
                path.display(),
                d.code
            );
        }
        let name = path.file_name().unwrap().to_str().unwrap();
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        if name == "lcls_cori.wrm" {
            // The paper's own finding: even the good-day external link
            // cannot meet the 2020 LCLS targets. W005 names the link,
            // the analyzer adds the chain bound (W009) and the fair-share
            // starvation of each analyze replica (W008).
            assert_eq!(codes, vec!["W005", "W009", "W005", "W008"], "{diags:?}");
            for d in diags.iter().filter(|d| d.code == "W005") {
                assert!(
                    d.help.as_deref().unwrap().contains("System External"),
                    "lcls W005 must name the External binding ceiling"
                );
            }
        } else if name == "gptune_rci.wrm" {
            // The DB channel's per-stream caps sum far below the shared
            // filesystem capacity: contention never materializes.
            assert_eq!(codes, vec!["W007"], "{diags:?}");
        } else {
            assert!(diags.is_empty(), "{name} should be clean: {diags:?}");
        }
    }
    assert!(seen >= 4, "expected the four shipped workflows, saw {seen}");
}

#[test]
fn diagnostics_round_trip_through_json() {
    let (_, diags) = lint_file("bad/unknown_machine.wrm");
    let json = serde_json::to_string_pretty(&diags).unwrap();
    let back: Vec<Diagnostic> = serde_json::from_str(&json).unwrap();
    assert_eq!(diags, back);
    // And the same for a warning-bearing file with help text.
    let (_, diags) = lint_file("bad/infeasible_target.wrm");
    let back: Vec<Diagnostic> =
        serde_json::from_str(&serde_json::to_string(&diags).unwrap()).unwrap();
    assert_eq!(diags, back);
}

#[test]
fn certification_fixtures_render_to_valid_sarif() {
    // One golden SARIF check per certification rule: the log validates
    // against the subset schema, the result carries the expected
    // ruleId, and E010's machine-applicable fix survives the
    // conversion.
    for (file, code, level) in [
        ("bad/certified_interval.wrm", "W010", "warning"),
        ("bad/overprovisioned_channel.wrm", "W011", "warning"),
        ("bad/pool_bound.wrm", "W012", "warning"),
        ("bad/infeasible_floor.wrm", "E010", "error"),
    ] {
        let (_, diags) = lint_file(file);
        let log = wrm_lint::to_sarif(&[(file.to_owned(), diags)]);
        wrm_lint::validate_sarif(&log).unwrap_or_else(|e| panic!("{file}: {e}"));
        let results = log["runs"][0]["results"]
            .as_array()
            .unwrap_or_else(|| panic!("{file}: results array"));
        let hit = results
            .iter()
            .find(|r| r["ruleId"].as_str() == Some(code))
            .unwrap_or_else(|| panic!("{file}: no SARIF result with ruleId {code}"));
        assert_eq!(hit["level"].as_str(), Some(level), "{file}");
        let region = &hit["locations"][0]["physicalLocation"]["region"];
        assert!(region["startLine"].as_u64().is_some(), "{file}: region");
        if code == "E010" {
            let text = hit["fixes"][0]["artifactChanges"][0]["replacements"][0]["insertedContent"]
                ["text"]
                .as_str();
            assert_eq!(text, Some("100s"), "{file}: fix-it replacement");
        }
    }
}

#[test]
fn rendered_snippets_point_at_the_offending_column() {
    let (source, diags) = lint_file("bad/unknown_machine.wrm");
    let rendered = diags[0].render(&source);
    assert!(rendered.contains("error[E001] 2:15: unknown machine `summit`"));
    assert!(rendered.contains("workflow w on summit {"));
    // The caret sits under column 15, where `summit` starts. The
    // snippet gutter is `<line-number> | `, so subtract its width.
    let caret_line = rendered
        .lines()
        .find(|l| l.trim_end().ends_with('^'))
        .expect("render includes a caret line");
    let gutter_width = "2".len() + " | ".len();
    assert_eq!(caret_line.find('^').unwrap() - gutter_width + 1, 15);
}
