//! Batched Monte-Carlo replication: distributional phase quantities,
//! streaming percentile makespans, amortized index reuse.
//!
//! The paper's WRM dot is a single point computed from one measured
//! makespan; real task durations are distributions. This module runs
//! `N` seeded replications of a scenario whose tasks carry
//! [`crate::spec::PhaseDist`] tables and folds the sampled makespans
//! into percentiles (p50/p90/p99 with order-statistic confidence
//! intervals).
//!
//! ## Engineering shape (why this is fast)
//!
//! * **One compile, N runs.** [`BaseIndex`] is built once; each worker
//!   clones it and patches only the dist-bearing slots per replication
//!   (a slot write is one enum field), so the per-replication cost is
//!   the event loop, not spec validation + index lowering.
//! * **Warm arenas.** Each worker owns one [`SimArena`]; every
//!   replication after its first allocates nothing
//!   ([`crate::simulate_summary_with_base`] recycles the engine state).
//! * **Streaming summaries.** Replications run in
//!   [`crate::RunMode::Summary`], so per-replication memory is
//!   O(channels) and the only thing retained per rep is its makespan.
//! * **Splittable PRNG.** Replication `i` seeds its own generator from
//!   `seed ^ i` (scrambled through SplitMix64 by `seed_from_u64`), so
//!   workers share no RNG state and the sample sequence of a given rep
//!   is independent of which worker ran it.
//! * **Deterministic merge.** Workers claim rep ranges through
//!   [`RepClaim`] and emit `(rep, makespan)` pairs merged in rep order,
//!   so results are byte-identical across thread counts — the standing
//!   invariant the sweep grid already enforces.
//!
//! Two fast paths guard the common cases:
//!
//! * **Degenerate collapse**: when every distribution is a point mass
//!   (or there are none), one replication is bit-equal to
//!   [`crate::simulate`], so exactly one runs and every percentile
//!   equals that makespan.
//! * **Analytic bracket**: `certify` on the `[lo, hi]`
//!   bound-substituted envelope workflows yields an interval that
//!   provably contains every sampled makespan (the certificate's
//!   bounds are monotone in phase quantities, and every sample is
//!   clamped into its distribution's support). The runner
//!   `debug_assert`s the containment per sample; the proptests and the
//!   bench assert it with release builds.

use crate::bounds::certify;
use crate::engine::{simulate_summary_with_base, Scenario, SimArena, SimError};
use crate::index::{BaseIndex, PhaseIx};
use crate::spec::{Phase, WorkflowSpec};
use crate::sweep::effective_workers;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wrm_core::Dist;
use wrm_mc::sync::atomic::{AtomicUsize, Ordering};

/// Replications claimed per [`RepClaim`] increment: large enough that
/// the counter is uncontended for sub-millisecond replications, small
/// enough to balance uneven tails.
const REP_CHUNK: usize = 8;

/// The Monte-Carlo runner's work claimer: a shared cursor over `total`
/// replication ids, handed out `chunk` at a time per atomic increment —
/// the mc counterpart of the sweep's `ChunkClaim`, extracted onto the
/// `wrm_mc` facade so the model checker can prove the protocol: every
/// replication is claimed exactly once regardless of interleaving, and
/// the rep-id merge order is independent of which worker ran what.
pub struct RepClaim {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl RepClaim {
    /// A cursor over `total` replication ids claimed `chunk` at a time
    /// (`chunk == 0` is treated as 1).
    #[must_use]
    pub fn new(total: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next replication range; `None` once exhausted. The
    /// single fetch-add makes each rep id the property of exactly one
    /// caller (Relaxed suffices: uniqueness comes from the RMW's
    /// atomicity, and each rep's inputs are derived from its id alone).
    pub fn next_range(&self) -> Option<std::ops::Range<usize>> {
        let lo = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if lo >= self.total {
            return None;
        }
        Some(lo..(lo + self.chunk).min(self.total))
    }
}

/// Monte-Carlo run options.
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Number of replications (floored at 1).
    pub reps: usize,
    /// Base seed; replication `i` uses `seed ^ i`.
    pub seed: u64,
    /// Worker threads (0 = auto, one per CPU; capped at the rep count).
    pub threads: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        Self {
            reps: 100,
            seed: 0,
            threads: 0,
        }
    }
}

/// One makespan percentile with its order-statistic confidence bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Percentile {
    /// The quantile in `(0, 1]` (0.5 = p50).
    pub q: f64,
    /// Nearest-rank percentile of the sampled makespans.
    pub value: f64,
    /// 95% CI lower bound (binomial order statistics, normal approx).
    pub ci_lo: f64,
    /// 95% CI upper bound.
    pub ci_hi: f64,
}

/// The outcome of a Monte-Carlo batch. Every field is deterministic for
/// a given `(scenario, reps, seed)` — independent of thread count — so
/// rendering a result is byte-identical across runs and front ends.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    /// Replications actually run (1 when the batch collapsed).
    pub reps: usize,
    /// The base seed.
    pub seed: u64,
    /// Sampled makespans in replication order.
    pub makespans: Vec<f64>,
    /// Arithmetic mean of the sampled makespans.
    pub mean: f64,
    /// Smallest sampled makespan.
    pub min: f64,
    /// Largest sampled makespan.
    pub max: f64,
    /// p50/p90/p99 with confidence intervals.
    pub percentiles: Vec<Percentile>,
    /// Certified lower bound of the analytic envelope: no replication
    /// can finish earlier.
    pub bracket_lo: f64,
    /// Certified upper bound of the analytic envelope.
    pub bracket_hi: f64,
    /// True when the all-point-mass detector collapsed the batch to a
    /// single replication (bit-equal to `simulate`).
    pub degenerate: bool,
}

/// One dist-bearing phase slot, lowered for patching: `slot` indexes
/// the base's flat phase table; a sample `s` (clamped into the
/// distribution's support) becomes `s / divisor` seconds for fixed
/// phases — the divisor reproduces the index's lowering expression bit
/// for bit — or `s` bytes for flows.
struct DistSlot {
    slot: usize,
    divisor: f64,
    lo: f64,
    hi: f64,
    dist: Dist,
}

/// Walks the workflow's dist tables into patchable slots, mirroring the
/// index's task-order/phase-order CSR layout.
fn lower_slots(scenario: &Scenario) -> Vec<DistSlot> {
    let machine = &scenario.machine;
    let mut slots = Vec::new();
    let mut off = 0usize;
    for t in &scenario.workflow.tasks {
        for pd in &t.dists {
            let Some(phase) = t.phases.get(pd.phase as usize) else {
                continue; // unvalidated spec; the overlay rejects it anyway
            };
            // Keep the exact parenthesization of the index lowering:
            // `q / (peak * nodes * eff)` must stay bit-identical.
            let divisor = match phase {
                Phase::Compute { efficiency, .. } => {
                    match machine.node_resource(wrm_core::ids::COMPUTE) {
                        Some(nr) => nr.peak_per_node.magnitude() * t.nodes as f64 * efficiency,
                        None => 1.0,
                    }
                }
                Phase::NodeData {
                    resource,
                    efficiency,
                    ..
                } => match machine.node_resource(resource) {
                    Some(nr) => nr.peak_per_node.magnitude() * t.nodes as f64 * efficiency,
                    None => 1.0,
                },
                Phase::Overhead { .. } | Phase::SystemData { .. } => 1.0,
            };
            let (lo, hi) = pd.dist.bounds();
            slots.push(DistSlot {
                slot: off + pd.phase as usize,
                divisor,
                lo,
                hi,
                dist: pd.dist.clone(),
            });
        }
        off += t.phases.len();
    }
    slots
}

/// Draws one quantity from `dist`. Uniform/triangular/empirical are
/// inverse-CDF over one `[0, 1)` draw; the lognormal is Box–Muller with
/// the standard normal clamped to `±`[`wrm_core::dist::LOGNORMAL_Z_CLAMP`]
/// so every draw lands inside [`Dist::bounds`].
fn sample(dist: &Dist, rng: &mut StdRng) -> f64 {
    match dist {
        Dist::Point { value } => *value,
        Dist::Uniform { lo, hi } => rng.random_range(*lo..=*hi),
        Dist::LogNormal { median, sigma } => {
            // Box–Muller from two unit uniforms; u1 shifted into (0, 1]
            // so the log is finite.
            let u1 = 1.0 - rng.random_range(0.0..1.0);
            let u2 = rng.random_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let z = z.clamp(
                -wrm_core::dist::LOGNORMAL_Z_CLAMP,
                wrm_core::dist::LOGNORMAL_Z_CLAMP,
            );
            median * (sigma * z).exp()
        }
        Dist::Triangular { lo, mode, hi } => {
            let width = hi - lo;
            if width <= 0.0 {
                return *lo;
            }
            let u = rng.random_range(0.0..1.0);
            let c = (mode - lo) / width;
            if u < c {
                lo + (u * width * (mode - lo)).sqrt()
            } else {
                hi - ((1.0 - u) * width * (hi - mode)).sqrt()
            }
        }
        Dist::Empirical { samples } => {
            let total: f64 = samples.iter().map(|(_, w)| w).sum();
            let mut x = rng.random_range(0.0..1.0) * total;
            for &(v, w) in samples {
                if x < w {
                    return v;
                }
                x -= w;
            }
            samples.last().map_or(0.0, |&(v, _)| v)
        }
    }
}

/// Patches one sampled quantity into the cloned base's phase table.
fn patch(base: &mut BaseIndex, slot: &DistSlot, sample: f64) {
    match &mut base.phases[slot.slot] {
        PhaseIx::Fixed { duration } => *duration = sample / slot.divisor,
        PhaseIx::Flow { bytes, .. } => *bytes = sample,
    }
}

/// Runs replication `rep`: seeds its own generator, draws every slot in
/// slot order, patches, and simulates in summary mode.
fn run_rep(
    scenario: &Scenario,
    base: &mut BaseIndex,
    slots: &[DistSlot],
    seed: u64,
    rep: usize,
    arena: &mut SimArena,
) -> Result<f64, SimError> {
    let mut rng = StdRng::seed_from_u64(seed ^ rep as u64);
    for s in slots {
        let drawn = sample(&s.dist, &mut rng).clamp(s.lo, s.hi);
        patch(base, s, drawn);
    }
    simulate_summary_with_base(scenario, base, arena).map(|sum| sum.makespan)
}

/// The bound-substituted envelope workflow: every dist-bearing phase
/// quantity replaced by its support bound (`hi = true` for the upper
/// end). Dist tables are dropped — the envelope is deterministic.
fn envelope(workflow: &WorkflowSpec, hi: bool) -> WorkflowSpec {
    let mut wf = workflow.clone();
    for t in &mut wf.tasks {
        let dists = std::mem::take(&mut t.dists);
        for pd in &dists {
            let (lo_b, hi_b) = pd.dist.bounds();
            let v = if hi { hi_b } else { lo_b };
            if let Some(p) = t.phases.get_mut(pd.phase as usize) {
                match p {
                    Phase::Compute { flops, .. } => *flops = v,
                    Phase::NodeData { bytes, .. } | Phase::SystemData { bytes, .. } => *bytes = v,
                    Phase::Overhead { seconds, .. } => *seconds = v,
                }
            }
        }
    }
    wf
}

/// Certifies the analytic `[lo, hi]` envelope: the certificate's bounds
/// are monotone nondecreasing in every phase quantity, and samples are
/// clamped into their distribution supports, so
/// `lo(lo-envelope) <= makespan(sample) <= hi(hi-envelope)` for every
/// replication.
fn bracket(scenario: &Scenario) -> Result<(f64, f64), SimError> {
    let lo_env = envelope(&scenario.workflow, false);
    let hi_env = envelope(&scenario.workflow, true);
    let lo = certify(&scenario.machine, &lo_env, &scenario.options)?.lo;
    let hi = certify(&scenario.machine, &hi_env, &scenario.options)?.hi;
    Ok((lo, hi))
}

/// Nearest-rank percentile over a sorted sample (the same convention as
/// the serve metrics reservoir).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// p50/p90/p99 with 95% order-statistic confidence intervals: the CI
/// ranks come from the normal approximation of the binomial
/// `rank ~ n*q ± 1.96 * sqrt(n*q*(1-q))`, clamped into `[1, n]`.
fn percentiles(sorted: &[f64]) -> Vec<Percentile> {
    let n = sorted.len() as f64;
    [0.5, 0.9, 0.99]
        .iter()
        .map(|&q| {
            let half_width = 1.96 * (n * q * (1.0 - q)).sqrt();
            let lo_rank = ((n * q - half_width).floor() as usize).clamp(1, sorted.len());
            let hi_rank = ((n * q + half_width).ceil() as usize).clamp(1, sorted.len());
            Percentile {
                q,
                value: nearest_rank(sorted, q),
                ci_lo: sorted[lo_rank - 1],
                ci_hi: sorted[hi_rank - 1],
            }
        })
        .collect()
}

/// Folds replication-ordered makespans into the final result.
fn finish(makespans: Vec<f64>, seed: u64, bracket: (f64, f64), degenerate: bool) -> McResult {
    let mut sorted = makespans.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    let mean = makespans.iter().sum::<f64>() / makespans.len() as f64;
    McResult {
        reps: makespans.len(),
        seed,
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean,
        percentiles: percentiles(&sorted),
        makespans,
        bracket_lo: bracket.0,
        bracket_hi: bracket.1,
        degenerate,
    }
}

/// Runs a Monte-Carlo batch, compiling the index once.
pub fn mc_run(scenario: &Scenario, opts: &McOptions) -> Result<McResult, SimError> {
    let base = BaseIndex::build(&scenario.machine, &scenario.workflow)?;
    mc_run_with_base(scenario, &base, opts)
}

/// [`mc_run`] against a prebuilt [`BaseIndex`] — the resident server's
/// mc path. `base` must have been built from this scenario's
/// `(machine, workflow)` pair (same contract as
/// [`crate::simulate_with_base`]).
pub fn mc_run_with_base(
    scenario: &Scenario,
    base: &BaseIndex,
    opts: &McOptions,
) -> Result<McResult, SimError> {
    if scenario.options.jitter.is_some() {
        return Err(SimError::InvalidOption(
            "monte-carlo replication replaces jitter; clear options.jitter".into(),
        ));
    }
    let slots = lower_slots(scenario);
    let brk = bracket(scenario)?;

    // Degenerate collapse: every distribution is a point mass (or there
    // are none), so every replication would be identical — run one,
    // bit-equal to `simulate`.
    if slots.iter().all(|s| s.dist.as_point().is_some()) {
        let mut local = base.clone();
        for s in &slots {
            let v = s.dist.as_point().expect("checked point mass");
            patch(&mut local, s, v);
        }
        let mut arena = SimArena::new();
        let makespan = simulate_summary_with_base(scenario, &local, &mut arena)?.makespan;
        debug_assert!(
            contains(brk, makespan),
            "bracket [{}, {}] misses degenerate makespan {makespan}",
            brk.0,
            brk.1
        );
        return Ok(finish(vec![makespan], opts.seed, brk, true));
    }

    let reps = opts.reps.max(1);
    let workers = effective_workers(opts.threads, reps);
    let outcomes: Vec<Result<f64, SimError>> = if workers == 1 {
        let mut local = base.clone();
        let mut arena = SimArena::new();
        (0..reps)
            .map(|rep| run_rep(scenario, &mut local, &slots, opts.seed, rep, &mut arena))
            .collect()
    } else {
        let claim = RepClaim::new(reps, REP_CHUNK);
        let worker_outputs = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut out: Vec<(usize, Result<f64, SimError>)> = Vec::new();
                        // One cloned base + one arena per worker: every
                        // replication after the first patches warm
                        // buffers instead of re-lowering the spec.
                        let mut local = base.clone();
                        let mut arena = SimArena::new();
                        while let Some(range) = claim.next_range() {
                            for rep in range {
                                let r = run_rep(
                                    scenario, &mut local, &slots, opts.seed, rep, &mut arena,
                                );
                                out.push((rep, r));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(std::thread::ScopedJoinHandle::join)
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));

        let mut merged: Vec<Option<Result<f64, SimError>>> = (0..reps).map(|_| None).collect();
        for joined in worker_outputs {
            let out = joined.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (rep, r) in out {
                merged[rep] = Some(r);
            }
        }
        merged
            .into_iter()
            .map(|r| r.expect("every replication was claimed"))
            .collect()
    };

    let mut makespans = Vec::with_capacity(reps);
    for r in outcomes {
        let m = r?;
        debug_assert!(
            contains(brk, m),
            "bracket [{}, {}] misses sampled makespan {m}",
            brk.0,
            brk.1
        );
        makespans.push(m);
    }
    Ok(finish(makespans, opts.seed, brk, false))
}

/// Bracket containment with a relative tolerance for the envelope's
/// floating-point slack (the certificate and the engine evaluate the
/// same quantities through different expression orders).
fn contains((lo, hi): (f64, f64), m: f64) -> bool {
    let eps = 1e-9 * m.abs().max(1.0);
    lo - eps <= m && m <= hi + eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::spec::TaskSpec;
    use wrm_core::machines;

    fn dist_scenario() -> Scenario {
        let mut wf = WorkflowSpec::new("mc-test");
        for i in 0..6 {
            wf = wf.task(
                TaskSpec::new(format!("t{i}"), 2)
                    .phase(Phase::overhead("work", 10.0))
                    .dist(0, Dist::Uniform { lo: 8.0, hi: 12.0 }),
            );
        }
        wf = wf.task(
            TaskSpec::new("merge", 1)
                .phase(Phase::overhead("merge", 3.0))
                .dist(
                    0,
                    Dist::Triangular {
                        lo: 2.0,
                        mode: 3.0,
                        hi: 4.0,
                    },
                )
                .after("t0")
                .after("t1"),
        );
        Scenario::new(machines::perlmutter_cpu(), wf)
    }

    #[test]
    fn point_mass_collapses_to_simulate() {
        let mut wf = WorkflowSpec::new("point");
        wf = wf.task(
            TaskSpec::new("a", 1)
                .phase(Phase::overhead("x", 7.0))
                .dist(0, Dist::Point { value: 7.0 }),
        );
        let scenario = Scenario::new(machines::perlmutter_cpu(), wf);
        let mc = mc_run(
            &scenario,
            &McOptions {
                reps: 64,
                seed: 9,
                threads: 1,
            },
        )
        .unwrap();
        assert!(mc.degenerate);
        assert_eq!(mc.reps, 1);
        let full = simulate(&scenario).unwrap();
        assert_eq!(mc.makespans[0].to_bits(), full.makespan.to_bits());
        for p in &mc.percentiles {
            assert_eq!(p.value.to_bits(), full.makespan.to_bits());
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let scenario = dist_scenario();
        let opts = |threads| McOptions {
            reps: 40,
            seed: 42,
            threads,
        };
        let one = mc_run(&scenario, &opts(1)).unwrap();
        let two = mc_run(&scenario, &opts(2)).unwrap();
        let four = mc_run(&scenario, &opts(4)).unwrap();
        assert_eq!(one, two);
        assert_eq!(one, four);
        assert!(!one.degenerate);
        assert_eq!(one.makespans.len(), 40);
    }

    #[test]
    fn bracket_contains_every_sample() {
        let scenario = dist_scenario();
        let mc = mc_run(
            &scenario,
            &McOptions {
                reps: 128,
                seed: 7,
                threads: 0,
            },
        )
        .unwrap();
        for &m in &mc.makespans {
            assert!(
                mc.bracket_lo <= m && m <= mc.bracket_hi,
                "[{}, {}] misses {m}",
                mc.bracket_lo,
                mc.bracket_hi
            );
        }
        assert!(mc.percentiles[0].value <= mc.percentiles[1].value);
        assert!(mc.percentiles[1].value <= mc.percentiles[2].value);
        assert!(mc.min <= mc.mean && mc.mean <= mc.max);
    }

    #[test]
    fn seeds_change_samples_deterministically() {
        let scenario = dist_scenario();
        let a = mc_run(
            &scenario,
            &McOptions {
                reps: 16,
                seed: 1,
                threads: 1,
            },
        )
        .unwrap();
        let a2 = mc_run(
            &scenario,
            &McOptions {
                reps: 16,
                seed: 1,
                threads: 1,
            },
        )
        .unwrap();
        let b = mc_run(
            &scenario,
            &McOptions {
                reps: 16,
                seed: 2,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(a, a2);
        assert_ne!(a.makespans, b.makespans);
    }

    #[test]
    fn jitter_is_rejected() {
        let mut scenario = dist_scenario();
        scenario.options.jitter = Some(crate::engine::Jitter {
            seed: 1,
            amplitude: 0.1,
        });
        assert!(matches!(
            mc_run(&scenario, &McOptions::default()),
            Err(SimError::InvalidOption(_))
        ));
    }

    #[test]
    fn empirical_draws_only_listed_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dist::Empirical {
            samples: vec![(2.0, 1.0), (5.0, 3.0)],
        };
        for _ in 0..200 {
            let v = sample(&d, &mut rng);
            assert!(v == 2.0 || v == 5.0, "{v}");
        }
    }

    #[test]
    fn samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let dists = [
            Dist::Uniform { lo: 1.0, hi: 2.0 },
            Dist::LogNormal {
                median: 10.0,
                sigma: 0.4,
            },
            Dist::Triangular {
                lo: 1.0,
                mode: 1.5,
                hi: 4.0,
            },
        ];
        for d in &dists {
            let (lo, hi) = d.bounds();
            for _ in 0..500 {
                let v = sample(d, &mut rng);
                assert!(lo <= v && v <= hi, "{d:?}: {v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn rep_claim_is_exhaustive_inline() {
        let claim = RepClaim::new(5, 2);
        let mut all = Vec::new();
        while let Some(r) = claim.next_range() {
            all.extend(r);
        }
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(claim.next_range(), None);
    }
}
