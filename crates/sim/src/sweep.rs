//! Parallel scenario sweeps: run many simulations across OS threads.
//!
//! Parameter sweeps (CosmoFlow's instance scaling, contention sweeps,
//! scheduler ablations) are embarrassingly parallel; this driver fans
//! scenarios out over a crossbeam scope with a work-stealing index and
//! collects results in order.

use crate::engine::{simulate, Scenario, SimError, SimResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs every scenario, using up to `threads` worker threads, and
/// returns the results in input order.
///
/// `threads == 0` or `1` runs inline. Panics in worker closures are
/// propagated by the scope.
pub fn run_all(scenarios: &[Scenario], threads: usize) -> Vec<Result<SimResult, SimError>> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    let workers = threads.max(1).min(scenarios.len());
    if workers == 1 {
        return scenarios.iter().map(simulate).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<SimResult, SimError>>>> =
        Mutex::new((0..scenarios.len()).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let r = simulate(&scenarios[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("sweep workers do not panic");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was simulated"))
        .collect()
}

/// Sweeps one scenario over a parameter, building each variant with
/// `make`, in parallel.
pub fn sweep<P: Sync, F>(params: &[P], threads: usize, make: F) -> Vec<Result<SimResult, SimError>>
where
    F: Fn(&P) -> Scenario + Sync,
{
    let scenarios: Vec<Scenario> = params.iter().map(&make).collect();
    run_all(&scenarios, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use wrm_core::machines;

    fn scenario(n_tasks: usize) -> Scenario {
        let mut wf = WorkflowSpec::new(format!("bag{n_tasks}"));
        for i in 0..n_tasks {
            wf = wf.task(TaskSpec::new(format!("t{i}"), 1).phase(Phase::overhead("work", 5.0)));
        }
        Scenario::new(machines::perlmutter_cpu(), wf)
    }

    #[test]
    fn parallel_matches_serial() {
        let scenarios: Vec<Scenario> = (1..10).map(scenario).collect();
        let serial = run_all(&scenarios, 1);
        let parallel = run_all(&scenarios, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let s = s.as_ref().unwrap();
            let p = p.as_ref().unwrap();
            assert_eq!(s.makespan, p.makespan);
            assert_eq!(s.trace, p.trace);
        }
    }

    #[test]
    fn sweep_builds_variants() {
        let params: Vec<usize> = vec![1, 2, 3, 4];
        let results = sweep(&params, 2, |&n| scenario(n));
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert_eq!(r.task_times.len(), params[i]);
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_all(&[], 8).is_empty());
    }

    #[test]
    fn errors_are_returned_in_place() {
        let mut bad = scenario(1);
        bad.workflow.tasks[0].nodes = 10_000_000;
        let scenarios = vec![scenario(1), bad, scenario(2)];
        let results = run_all(&scenarios, 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }
}
