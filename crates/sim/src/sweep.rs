//! Parallel scenario sweeps: run many simulations across OS threads.
//!
//! Parameter sweeps (CosmoFlow's instance scaling, contention sweeps,
//! scheduler ablations, the `wrm sweep` grids) are embarrassingly
//! parallel; this driver fans scenarios out over a crossbeam scope with
//! a work-stealing chunk index. Each worker accumulates `(index,
//! result)` pairs in its own vector — there is no shared results lock —
//! and the driver merges them once at join time. A panic in any worker
//! (including one raised by a user closure in [`sweep`]) is re-raised on
//! the caller thread with its original payload.

use crate::engine::{simulate_in, Scenario, SimArena, SimError, SimResult};
use wrm_mc::sync::atomic::{AtomicUsize, Ordering};

/// Default number of scenarios a worker claims per counter increment.
/// Small enough to balance uneven scenario costs, large enough that the
/// atomic counter is not contended for sub-millisecond simulations.
const DEFAULT_CHUNK: usize = 4;

/// Resolves a requested thread count to the worker count actually
/// spawned for `jobs` work units.
///
/// * `requested == 0` means **auto**: one worker per available CPU.
/// * Explicit values are capped at the host's available parallelism —
///   oversubscribing OS threads onto fewer cores never helps a
///   CPU-bound sweep and measurably hurts on small hosts (`--threads 8`
///   ran 0.88x *serial* on a 1-CPU runner before this cap).
/// * Both are capped at `jobs` (no idle workers) and floored at 1.
#[must_use]
pub fn effective_workers(requested: usize, jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let want = if requested == 0 {
        cores
    } else {
        requested.min(cores)
    };
    want.min(jobs).max(1)
}

/// The sweep's work-stealing column claimer: a shared cursor over
/// `total` work items, handed out in chunks of `chunk` consecutive
/// indices per atomic increment. Extracted from the sweep loop (and
/// built on the `wrm_mc` facade) so the model checker can verify the
/// claiming protocol: every index is claimed exactly once, no matter
/// how the workers interleave.
pub struct ChunkClaim {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl ChunkClaim {
    /// A cursor over `total` indices claimed `chunk` at a time
    /// (`chunk == 0` is treated as 1).
    #[must_use]
    pub fn new(total: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk; `None` once the range is exhausted. The
    /// single fetch-add makes each index the property of exactly one
    /// caller (Relaxed suffices: uniqueness comes from the RMW's
    /// atomicity, and the scenarios read through the indices are
    /// shared immutably).
    pub fn next_range(&self) -> Option<std::ops::Range<usize>> {
        let lo = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if lo >= self.total {
            return None;
        }
        Some(lo..(lo + self.chunk).min(self.total))
    }
}

/// Runs every scenario, using up to `threads` worker threads, and
/// returns the results in input order.
///
/// `threads == 0` means auto (one worker per available CPU); `1` runs
/// inline; explicit counts are capped at the available parallelism
/// ([`effective_workers`]). If a worker panics, the panic is propagated
/// to the caller with its original payload.
pub fn run_all(scenarios: &[Scenario], threads: usize) -> Vec<Result<SimResult, SimError>> {
    run_all_chunked(scenarios, threads, DEFAULT_CHUNK)
}

/// [`run_all`] with an explicit work-stealing chunk size: each worker
/// claims `chunk` consecutive scenarios per atomic increment. `chunk ==
/// 1` maximizes balance; larger chunks amortize counter traffic when
/// individual simulations are very cheap. `chunk == 0` is treated as 1.
pub fn run_all_chunked(
    scenarios: &[Scenario],
    threads: usize,
    chunk: usize,
) -> Vec<Result<SimResult, SimError>> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    let workers = effective_workers(threads, scenarios.len());
    if workers == 1 {
        let mut arena = SimArena::new();
        return scenarios
            .iter()
            .map(|s| simulate_in(s, &mut arena))
            .collect();
    }
    let claim = ChunkClaim::new(scenarios.len(), chunk);
    let worker_outputs = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut out: Vec<(usize, Result<SimResult, SimError>)> = Vec::new();
                    // One arena per worker: every simulation after the
                    // first reuses the warmed buffers.
                    let mut arena = SimArena::new();
                    while let Some(range) = claim.next_range() {
                        for i in range {
                            out.push((i, simulate_in(&scenarios[i], &mut arena)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect::<Vec<_>>()
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));

    let mut results: Vec<Option<Result<SimResult, SimError>>> =
        (0..scenarios.len()).map(|_| None).collect();
    for joined in worker_outputs {
        let out = joined.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        for (i, r) in out {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was simulated"))
        .collect()
}

/// Sweeps one scenario over a parameter, building each variant with
/// `make`, in parallel. A panicking `make` closure unwinds on the caller
/// thread before any worker starts, so it cannot poison the driver.
pub fn sweep<P: Sync, F>(params: &[P], threads: usize, make: F) -> Vec<Result<SimResult, SimError>>
where
    F: Fn(&P) -> Scenario + Sync,
{
    let scenarios: Vec<Scenario> = params.iter().map(&make).collect();
    run_all(&scenarios, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use wrm_core::machines;

    fn scenario(n_tasks: usize) -> Scenario {
        let mut wf = WorkflowSpec::new(format!("bag{n_tasks}"));
        for i in 0..n_tasks {
            wf = wf.task(TaskSpec::new(format!("t{i}"), 1).phase(Phase::overhead("work", 5.0)));
        }
        Scenario::new(machines::perlmutter_cpu(), wf)
    }

    #[test]
    fn parallel_matches_serial() {
        let scenarios: Vec<Scenario> = (1..10).map(scenario).collect();
        let serial = run_all(&scenarios, 1);
        let parallel = run_all(&scenarios, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let s = s.as_ref().unwrap();
            let p = p.as_ref().unwrap();
            assert_eq!(s.makespan, p.makespan);
            assert_eq!(s.trace, p.trace);
        }
    }

    #[test]
    fn chunk_sizes_do_not_change_results() {
        let scenarios: Vec<Scenario> = (1..20).map(scenario).collect();
        let baseline = run_all_chunked(&scenarios, 1, 1);
        for chunk in [0, 1, 3, 64] {
            let chunked = run_all_chunked(&scenarios, 4, chunk);
            assert_eq!(chunked.len(), baseline.len());
            for (a, b) in baseline.iter().zip(chunked.iter()) {
                assert_eq!(a.as_ref().unwrap().makespan, b.as_ref().unwrap().makespan);
            }
        }
    }

    #[test]
    fn sweep_builds_variants() {
        let params: Vec<usize> = vec![1, 2, 3, 4];
        let results = sweep(&params, 2, |&n| scenario(n));
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert_eq!(r.task_times.len(), params[i]);
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_all(&[], 8).is_empty());
    }

    #[test]
    fn effective_workers_resolves_auto_and_caps() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        // Auto: capped at both the core count and the job count.
        assert_eq!(effective_workers(0, 1), 1);
        assert_eq!(effective_workers(0, usize::MAX), cores);
        // Explicit requests never exceed the available parallelism...
        assert!(effective_workers(1_000_000, 1_000_000) <= cores);
        // ...nor the job count, and never drop to zero.
        assert_eq!(effective_workers(8, 3), 3.min(cores));
        assert_eq!(effective_workers(1, 0), 1);
        assert_eq!(effective_workers(0, 0), 1);
    }

    #[test]
    fn auto_threads_matches_serial() {
        let scenarios: Vec<Scenario> = (1..6).map(scenario).collect();
        let serial = run_all(&scenarios, 1);
        let auto = run_all(&scenarios, 0);
        for (s, a) in serial.iter().zip(auto.iter()) {
            assert_eq!(s.as_ref().unwrap().makespan, a.as_ref().unwrap().makespan);
            assert_eq!(s.as_ref().unwrap().trace, a.as_ref().unwrap().trace);
        }
    }

    #[test]
    fn errors_are_returned_in_place() {
        let mut bad = scenario(1);
        bad.workflow.tasks[0].nodes = 10_000_000;
        let scenarios = vec![scenario(1), bad, scenario(2)];
        let results = run_all(&scenarios, 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn panicking_make_does_not_poison_or_deadlock() {
        // A panicking `make` closure must unwind cleanly out of sweep()…
        let params: Vec<usize> = vec![1, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            sweep(&params, 2, |&n| {
                assert!(n != 2, "boom at {n}");
                scenario(n)
            })
        });
        let payload = caught.expect_err("sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 2"), "payload: {msg}");
        // …and the driver must still work afterwards.
        let results = sweep(&params, 2, |&n| scenario(n));
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(Result::is_ok));
    }
}
