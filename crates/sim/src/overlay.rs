//! Per-grid-point deltas over a shared [`BaseIndex`].
//!
//! An [`IndexOverlay`] is everything about a scenario that the sweep
//! knobs can change: the usable node pool (`node_limit`), the
//! contention-scaled channel capacities and cap factors, and background
//! demands. Building one is `O(channels + background + log tasks)` —
//! against the `O(workflow)` cost of a full index build — which is what
//! makes a 4,096-point sweep do one base build instead of 4,096.
//!
//! Validation here reproduces the reference engine's error *order*
//! exactly (option checks first, then one forward scan over tasks that
//! interleaves `TaskTooLarge` with `UnknownResource`): the base records
//! the first resource error and a prefix-maximum of node counts, and
//! [`IndexOverlay::build`] picks whichever error the reference scan
//! would have hit first for this point's pool.

use crate::engine::{SimError, SimOptions};
use crate::index::BaseIndex;
use crate::spec::WorkflowSpec;

/// The option-dependent part of a lowered scenario. Cheap to build per
/// sweep point; the engine reads capacities and cap factors through it.
#[derive(Debug, Clone)]
pub(crate) struct IndexOverlay {
    /// Usable node pool (node_limit-capped machine total).
    pub pool_total: u64,
    /// Effective capacity per channel (contention-scaled).
    pub channel_capacity: Vec<f64>,
    /// Contention factor per channel (applied to flow caps at spawn).
    pub channel_factor: Vec<f64>,
    /// Background demand rates per channel.
    pub background: Vec<Vec<f64>>,
}

impl IndexOverlay {
    /// Validates the option-dependent parts of a scenario against a
    /// prebuilt base and lowers them. Error kinds and ordering mirror
    /// the reference engine exactly.
    pub(crate) fn build(
        base: &BaseIndex,
        workflow: &WorkflowSpec,
        opts: &SimOptions,
    ) -> Result<Self, SimError> {
        for (res, f) in &opts.contention {
            if !(f.is_finite() && *f > 0.0) {
                return Err(SimError::InvalidOption(format!(
                    "contention factor for {res} must be positive, got {f}"
                )));
            }
        }
        if let Some(j) = &opts.jitter {
            if !(j.amplitude.is_finite() && (0.0..1.0).contains(&j.amplitude)) {
                return Err(SimError::InvalidOption(format!(
                    "jitter amplitude must be in [0,1), got {}",
                    j.amplitude
                )));
            }
        }
        for bg in &opts.background {
            if bg.rate.is_nan() || bg.rate <= 0.0 {
                return Err(SimError::InvalidOption(format!(
                    "background flow on {} must have a positive rate, got {}",
                    bg.resource, bg.rate
                )));
            }
            if !base.channel_idx.contains_key(&bg.resource) {
                return Err(SimError::UnknownResource {
                    task: "<background>".into(),
                    resource: bg.resource.clone(),
                });
            }
        }

        let pool_total = opts
            .node_limit
            .unwrap_or(base.total_nodes)
            .min(base.total_nodes);

        // The reference scans tasks forward, checking TaskTooLarge
        // before that task's resource references. The first too-large
        // task is the first index whose nodes prefix-maximum exceeds the
        // pool; it wins over a recorded resource error at the same or a
        // later task index (the reference checks size first per task).
        let k = base.nodes_prefix_max.partition_point(|&m| m <= pool_total);
        let too_large = (k < base.nodes_prefix_max.len()).then_some(k);
        match (too_large, &base.first_resource_error) {
            (Some(tl), Some((ri, e))) if tl > *ri => return Err(e.clone()),
            (Some(tl), _) => {
                return Err(SimError::TaskTooLarge {
                    task: workflow.tasks[tl].name.clone(),
                    needs: base.nodes[tl],
                    pool: pool_total,
                });
            }
            (None, Some((_, e))) => return Err(e.clone()),
            (None, None) => {}
        }

        let mut channel_capacity = Vec::with_capacity(base.capacity_base.len());
        let mut channel_factor = Vec::with_capacity(base.capacity_base.len());
        for (ci, id) in base.channel_ids.iter().enumerate() {
            let factor = opts.contention.get(id.as_str()).copied().unwrap_or(1.0);
            channel_factor.push(factor);
            channel_capacity.push(base.capacity_base[ci] * factor);
        }

        let mut background = vec![Vec::new(); base.capacity_base.len()];
        for bg in &opts.background {
            background[base.channel_idx[bg.resource.as_str()] as usize].push(bg.rate);
        }

        Ok(IndexOverlay {
            pool_total,
            channel_capacity,
            channel_factor,
            background,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::IndexOverlay;
    use crate::engine::{Scenario, SimError, SimOptions};
    use crate::index::BaseIndex;
    use crate::reference::simulate_reference;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use wrm_core::machines;

    fn sample_workflow() -> WorkflowSpec {
        WorkflowSpec::new("ov")
            .task(
                TaskSpec::new("a", 4)
                    .phase(Phase::overhead("o", 5.0))
                    .phase(Phase::system_data(wrm_core::ids::EXTERNAL, 1e9)),
            )
            .task(TaskSpec::new("b", 64).after("a").phase(Phase::Compute {
                flops: 1e12,
                efficiency: 0.5,
            }))
    }

    /// Overlay-over-shared-base reproduces the reference's validation
    /// errors, in the reference's order, for every knob.
    #[test]
    fn overlay_errors_match_reference() {
        let machine = machines::cori_haswell();
        let wf = sample_workflow();
        let base = BaseIndex::build(&machine, &wf).expect("valid workflow");
        let cases = vec![
            SimOptions::default().with_contention(wrm_core::ids::EXTERNAL, 0.0),
            SimOptions::default().with_contention(wrm_core::ids::EXTERNAL, f64::NAN),
            SimOptions::default().with_background("no-such-channel", 1e9),
            SimOptions::default().with_background(wrm_core::ids::EXTERNAL, -1.0),
            SimOptions {
                node_limit: Some(8),
                ..SimOptions::default()
            },
            SimOptions {
                node_limit: Some(2),
                ..SimOptions::default()
            },
            SimOptions::default(),
        ];
        for opts in cases {
            let scenario = Scenario::new(machine.clone(), wf.clone()).with_options(opts.clone());
            let via_overlay = IndexOverlay::build(&base, &wf, &opts).map(|_| ());
            let via_reference = simulate_reference(&scenario).map(|_| ());
            assert_eq!(via_overlay, via_reference, "opts: {opts:?}");
        }
    }

    /// A task referencing an unknown resource loses to an *earlier*
    /// too-large task and wins over a *later* one, per the reference's
    /// forward scan; node_limit decides which.
    #[test]
    fn too_large_vs_unknown_resource_ordering() {
        let machine = machines::cori_haswell();
        let wf = WorkflowSpec::new("order")
            .task(TaskSpec::new("big", 32).phase(Phase::overhead("o", 1.0)))
            .task(TaskSpec::new("bad", 1).phase(Phase::system_data("nope", 1e9)));
        let base = BaseIndex::build(&machine, &wf).expect("spec-valid workflow");
        // Pool below 32: `big` (task 0) is too large and is reported.
        let tight = SimOptions {
            node_limit: Some(16),
            ..SimOptions::default()
        };
        let err = IndexOverlay::build(&base, &wf, &tight).unwrap_err();
        assert!(matches!(err, SimError::TaskTooLarge { .. }), "{err:?}");
        // Pool fits `big`: the scan reaches `bad` first.
        let loose = SimOptions::default();
        let err = IndexOverlay::build(&base, &wf, &loose).unwrap_err();
        assert!(matches!(err, SimError::UnknownResource { .. }), "{err:?}");
        // Both agree with the reference engine.
        for opts in [tight, loose] {
            let scenario = Scenario::new(machine.clone(), wf.clone()).with_options(opts.clone());
            assert_eq!(
                IndexOverlay::build(&base, &wf, &opts)
                    .map(|_| ())
                    .unwrap_err(),
                simulate_reference(&scenario).map(|_| ()).unwrap_err()
            );
        }
    }

    /// Overlay-built capacities and factors are bit-identical to a cold
    /// build from the same options.
    #[test]
    fn overlay_is_bit_identical_to_cold_build() {
        let machine = machines::perlmutter_cpu();
        let wf = sample_workflow();
        let base = BaseIndex::build(&machine, &wf).expect("valid workflow");
        for f in [0.2, 0.5, 1.0, 1.7] {
            let opts = SimOptions::default()
                .with_contention(wrm_core::ids::EXTERNAL, f)
                .with_background(wrm_core::ids::EXTERNAL, 2e9);
            let overlay = IndexOverlay::build(&base, &wf, &opts).expect("valid options");
            // A cold build goes through the same code today; the test
            // pins the contract that sharing one base across points
            // cannot drift from rebuilding per point.
            let cold_base = BaseIndex::build(&machine, &wf).expect("valid workflow");
            let cold = IndexOverlay::build(&cold_base, &wf, &opts).expect("valid options");
            assert_eq!(overlay.pool_total, cold.pool_total);
            assert_eq!(overlay.channel_factor, cold.channel_factor);
            assert_eq!(overlay.channel_capacity, cold.channel_capacity);
            assert_eq!(overlay.background, cold.background);
        }
    }
}
