//! The straightforward string-keyed discrete-event engine, kept as a
//! test oracle for the optimized engine in [`crate::engine`].
//!
//! This is the original event loop: per-event queue sort, linear
//! earliest-event scans, and full fair-share recomputation on every
//! event. Flow progress is materialized on rate change (see
//! [`crate::engine`]'s module docs), the same accounting the optimized
//! engine uses. It is compiled only for tests and under the
//! `reference-engine` feature, and [`simulate_reference`] must stay
//! bit-identical to [`crate::simulate`] — makespan, trace spans, and
//! task times are compared exactly by the equivalence proptests below
//! and by the paper-workflow tests in `wrm-workflows`.

use crate::channel::{FlowDemand, Sharing};
use crate::engine::{
    flow_finished, span_kind, time_eps, Scenario, SchedulerPolicy, SimError, SimResult,
};
use crate::spec::{Phase, TaskSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use wrm_core::SystemScaling;
use wrm_trace::{Trace, TraceSpan};

enum Activity {
    /// Fixed-duration phase: ends at a known time.
    Fixed { end: f64 },
    /// A flow on a shared channel. Progress is materialized on rate
    /// change: `remaining` is exact as of `last_set` and untouched until
    /// a fair-share solve assigns a different rate, at which point the
    /// completion time `end` is recomputed once and cached
    /// (`f64::INFINITY` while starved).
    Flow {
        channel: usize,
        remaining: f64,
        cap: f64,
        rate: f64,
        last_set: f64,
        end: f64,
    },
}

struct RunningTask {
    spec_idx: usize,
    phase_idx: usize,
    phase_start: f64,
    activity: Activity,
}

struct Channel {
    capacity: f64,
}

/// Runs the simulation with the original straightforward engine.
#[allow(clippy::too_many_lines)]
pub fn simulate_reference(scenario: &Scenario) -> Result<SimResult, SimError> {
    scenario.workflow.validate()?;
    let machine = &scenario.machine;
    let opts = &scenario.options;
    for (res, f) in &opts.contention {
        if !(f.is_finite() && *f > 0.0) {
            return Err(SimError::InvalidOption(format!(
                "contention factor for {res} must be positive, got {f}"
            )));
        }
    }
    if let Some(j) = &opts.jitter {
        if !(j.amplitude.is_finite() && (0.0..1.0).contains(&j.amplitude)) {
            return Err(SimError::InvalidOption(format!(
                "jitter amplitude must be in [0,1), got {}",
                j.amplitude
            )));
        }
    }
    for bg in &opts.background {
        if bg.rate.is_nan() || bg.rate <= 0.0 {
            return Err(SimError::InvalidOption(format!(
                "background flow on {} must have a positive rate, got {}",
                bg.resource, bg.rate
            )));
        }
        if machine.system_resource(&bg.resource).is_none() {
            return Err(SimError::UnknownResource {
                task: "<background>".into(),
                resource: bg.resource.clone(),
            });
        }
    }

    let pool_total = opts
        .node_limit
        .unwrap_or(machine.total_nodes)
        .min(machine.total_nodes);
    let tasks = &scenario.workflow.tasks;
    for t in tasks {
        if t.nodes > pool_total {
            return Err(SimError::TaskTooLarge {
                task: t.name.clone(),
                needs: t.nodes,
                pool: pool_total,
            });
        }
        // Resolve every referenced resource up front.
        for p in &t.phases {
            match p {
                Phase::Compute { .. } => {
                    if machine.node_resource(wrm_core::ids::COMPUTE).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: wrm_core::ids::COMPUTE.into(),
                        });
                    }
                }
                Phase::NodeData { resource, .. } => {
                    if machine.node_resource(resource).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: resource.clone(),
                        });
                    }
                }
                Phase::SystemData { resource, .. } => {
                    if machine.system_resource(resource).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: resource.clone(),
                        });
                    }
                }
                Phase::Overhead { .. } => {}
            }
        }
    }

    // Channels: one per system resource the machine defines.
    let mut channels: Vec<Channel> = Vec::new();
    let mut channel_idx: BTreeMap<String, usize> = BTreeMap::new();
    for sr in &machine.system_resources {
        let factor = opts.contention.get(sr.id.as_str()).copied().unwrap_or(1.0);
        let capacity = match sr.scaling {
            SystemScaling::Aggregate => sr.peak.get() * factor,
            // The interconnect's backbone: every node can inject at once.
            SystemScaling::PerNodeInUse => sr.peak.get() * machine.total_nodes as f64 * factor,
        };
        channel_idx.insert(sr.id.to_string(), channels.len());
        channels.push(Channel { capacity });
    }

    let mut rng = opts.jitter.map(|j| StdRng::seed_from_u64(j.seed));
    let amplitude = opts.jitter.map_or(0.0, |j| j.amplitude);
    let mut jitter_factor = move || -> f64 {
        match rng.as_mut() {
            Some(r) => 1.0 + amplitude * r.random_range(-1.0..=1.0),
            None => 1.0,
        }
    };

    // Fixed-phase duration for a task on this machine.
    let fixed_duration = |task: &TaskSpec, phase: &Phase| -> Option<f64> {
        match phase {
            Phase::Compute { flops, efficiency } => {
                let peak = machine
                    .node_resource(wrm_core::ids::COMPUTE)
                    .expect("checked above")
                    .peak_per_node
                    .magnitude();
                Some(flops / (peak * task.nodes as f64 * efficiency))
            }
            Phase::NodeData {
                resource,
                bytes,
                efficiency,
            } => {
                let peak = machine
                    .node_resource(resource)
                    .expect("checked above")
                    .peak_per_node
                    .magnitude();
                Some(bytes / (peak * task.nodes as f64 * efficiency))
            }
            Phase::Overhead { seconds, .. } => Some(*seconds),
            Phase::SystemData { .. } => None,
        }
    };

    // Dependency bookkeeping.
    let name_to_idx: BTreeMap<&str, usize> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.as_str(), i))
        .collect();
    let mut remaining_deps: Vec<usize> = tasks.iter().map(|t| t.after.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    for (i, t) in tasks.iter().enumerate() {
        for dep in &t.after {
            dependents[name_to_idx[dep.as_str()]].push(i);
        }
    }

    let mut queue: Vec<usize> = (0..tasks.len())
        .filter(|&i| remaining_deps[i] == 0)
        .collect();
    let mut running: Vec<RunningTask> = Vec::new();
    let mut free = pool_total;
    let mut now = 0.0f64;
    let mut done = 0usize;
    let mut trace = Trace::new(scenario.workflow.name.clone(), machine.name.clone());
    let mut task_starts: BTreeMap<String, f64> = BTreeMap::new();
    let mut task_ends: BTreeMap<String, f64> = BTreeMap::new();

    // Begins a task's phase `phase_idx` at time `at`, producing the
    // Activity.
    let make_activity = |task: &TaskSpec, phase_idx: usize, jf: f64, at: f64| -> Activity {
        let phase = &task.phases[phase_idx];
        match phase {
            Phase::SystemData {
                resource,
                bytes,
                stream_cap,
            } => {
                let sr = machine.system_resource(resource).expect("checked");
                let factor = opts
                    .contention
                    .get(resource.as_str())
                    .copied()
                    .unwrap_or(1.0);
                // The task's own injection limit: for per-node-scaled
                // resources it is its allocation's aggregate NIC rate.
                let alloc_cap = match sr.scaling {
                    SystemScaling::Aggregate => f64::INFINITY,
                    SystemScaling::PerNodeInUse => sr.peak.get() * task.nodes as f64 * factor,
                };
                let stream = stream_cap.unwrap_or(f64::INFINITY) * factor;
                Activity::Flow {
                    channel: channel_idx[resource.as_str()],
                    remaining: *bytes,
                    cap: alloc_cap.min(stream),
                    rate: 0.0,
                    last_set: at,
                    // A zero-byte flow is finished at birth; everything
                    // else waits for its first rate assignment.
                    end: if flow_finished(*bytes, 0.0, at) {
                        at
                    } else {
                        f64::INFINITY
                    },
                }
            }
            _ => Activity::Fixed {
                end: at + fixed_duration(task, phase).expect("fixed phase") * jf,
            },
        }
    };

    // Background demands per channel (persistent pseudo-flows with ids
    // past the running-task range).
    let mut background_per_channel: Vec<Vec<f64>> = vec![Vec::new(); channels.len()];
    for bg in &opts.background {
        background_per_channel[channel_idx[bg.resource.as_str()]].push(bg.rate);
    }

    // Recomputes all flow rates per channel. A flow whose rate actually
    // changes has its progress materialized (`remaining` brought up to
    // date for the time spent at the old rate) and its completion time
    // recomputed and cached; unchanged rates touch nothing.
    let recompute =
        |running: &mut [RunningTask], channels: &[Channel], sharing: Sharing, now: f64| {
            for (ci, ch) in channels.iter().enumerate() {
                let mut demands: Vec<FlowDemand> = running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| match &r.activity {
                        Activity::Flow { channel, cap, .. } if *channel == ci => {
                            Some(FlowDemand { id: i, cap: *cap })
                        }
                        _ => None,
                    })
                    .collect();
                if demands.is_empty() {
                    continue;
                }
                let first_bg = demands.len();
                for (k, &rate) in background_per_channel[ci].iter().enumerate() {
                    demands.push(FlowDemand {
                        id: usize::MAX - k,
                        cap: rate,
                    });
                }
                let rates = sharing.rates(ch.capacity, &demands);
                for fr in rates.into_iter().take(first_bg) {
                    if let Activity::Flow {
                        remaining,
                        rate,
                        last_set,
                        end,
                        ..
                    } = &mut running[fr.id].activity
                    {
                        if fr.rate != *rate {
                            *remaining = (*remaining - *rate * (now - *last_set)).max(0.0);
                            *last_set = now;
                            *rate = fr.rate;
                            *end = if flow_finished(*remaining, *rate, now) {
                                now
                            } else if *rate > 0.0 {
                                now + *remaining / *rate
                            } else {
                                f64::INFINITY
                            };
                        }
                    }
                }
            }
        };

    loop {
        // Start ready tasks per policy.
        queue.sort_unstable();
        let mut qi = 0;
        while qi < queue.len() {
            let ti = queue[qi];
            let need = tasks[ti].nodes;
            if need <= free {
                free -= need;
                queue.remove(qi);
                task_starts.insert(tasks[ti].name.clone(), now);
                if tasks[ti].phases.is_empty() {
                    // Zero-phase task completes instantly.
                    task_ends.insert(tasks[ti].name.clone(), now);
                    free += need;
                    done += 1;
                    for &d in &dependents[ti] {
                        remaining_deps[d] -= 1;
                        if remaining_deps[d] == 0 {
                            queue.push(d);
                        }
                    }
                    // Restart the scan: new tasks may be ready.
                    qi = 0;
                    continue;
                }
                let jf = jitter_factor();
                running.push(RunningTask {
                    spec_idx: ti,
                    phase_idx: 0,
                    phase_start: now,
                    activity: make_activity(&tasks[ti], 0, jf, now),
                });
            } else if opts.scheduler == SchedulerPolicy::Fifo {
                break; // head blocks
            } else {
                qi += 1; // backfill: try the next
            }
        }
        if done == tasks.len() {
            break;
        }
        if running.is_empty() {
            // Tasks remain but nothing runs and nothing can start.
            debug_assert!(!queue.is_empty() || done < tasks.len());
            return Err(SimError::Stalled { at: now });
        }

        recompute(&mut running, &channels, opts.sharing, now);

        // Earliest completion among running activities (flow ends are
        // cached by `recompute`).
        let mut next = f64::INFINITY;
        for r in &running {
            let t = match &r.activity {
                Activity::Fixed { end } | Activity::Flow { end, .. } => *end,
            };
            next = next.min(t);
        }
        if !next.is_finite() {
            return Err(SimError::Stalled { at: now });
        }
        now = next;

        // Complete activities that finished (within EPS).
        let mut i = 0;
        while i < running.len() {
            let finished = match &running[i].activity {
                Activity::Fixed { end } | Activity::Flow { end, .. } => *end <= now + time_eps(now),
            };
            if !finished {
                i += 1;
                continue;
            }
            let r = running.swap_remove(i);
            let task = &tasks[r.spec_idx];
            let phase = &task.phases[r.phase_idx];
            trace.push(TraceSpan::new(
                task.name.clone(),
                span_kind(phase),
                r.phase_start,
                now,
                task.nodes,
            ));
            let next_phase = r.phase_idx + 1;
            if next_phase < task.phases.len() {
                let jf = jitter_factor();
                running.push(RunningTask {
                    spec_idx: r.spec_idx,
                    phase_idx: next_phase,
                    phase_start: now,
                    activity: make_activity(task, next_phase, jf, now),
                });
                // The pushed activity lands at the end; do not advance i
                // past the element swapped into position i.
            } else {
                task_ends.insert(task.name.clone(), now);
                free += task.nodes;
                done += 1;
                for &d in &dependents[r.spec_idx] {
                    remaining_deps[d] -= 1;
                    if remaining_deps[d] == 0 {
                        queue.push(d);
                    }
                }
            }
        }
    }

    let makespan = trace.makespan();
    let task_times = task_starts
        .iter()
        .filter_map(|(name, start)| task_ends.get(name).map(|end| (name.clone(), end - start)))
        .collect();
    let task_nodes = tasks.iter().map(|t| (t.name.clone(), t.nodes)).collect();
    Ok(SimResult {
        trace,
        makespan,
        task_times,
        task_starts,
        task_nodes,
        pool_nodes: pool_total,
    })
}

#[cfg(test)]
mod tests {
    use super::simulate_reference;
    use crate::engine::{simulate, Jitter, Scenario, SchedulerPolicy, SimOptions};
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use proptest::prelude::*;
    use wrm_core::{machines, Machine};

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A seeded arbitrary workflow exercising every phase kind, plus the
    /// engine's corner cases: zero-phase tasks, zero-byte flows,
    /// zero-second overheads, stream caps, and random DAG edges.
    fn build_workflow(seed: u64, n_tasks: usize, machine: &Machine) -> WorkflowSpec {
        let mut s = seed;
        let n_sys = machine.system_resources.len();
        let mut wf = WorkflowSpec::new(format!("gen[{seed}]"));
        for i in 0..n_tasks {
            let nodes = 1 + splitmix(&mut s) % 6;
            let mut t = TaskSpec::new(format!("t{i}"), nodes);
            let n_phases = (splitmix(&mut s) % 4) as usize; // 0 => instant task
            for _ in 0..n_phases {
                t = match splitmix(&mut s) % 6 {
                    0 => t.phase(Phase::Compute {
                        flops: (1 + splitmix(&mut s) % 1000) as f64 * 1e9,
                        efficiency: 0.25 + (splitmix(&mut s) % 100) as f64 / 200.0,
                    }),
                    1 => t.phase(Phase::node_data(
                        wrm_core::ids::DRAM,
                        (splitmix(&mut s) % 1000) as f64 * 1e8,
                    )),
                    2 => t.phase(Phase::overhead(
                        "o",
                        // Sometimes exactly zero: an instantly-finished
                        // fixed phase.
                        if splitmix(&mut s).is_multiple_of(4) {
                            0.0
                        } else {
                            (splitmix(&mut s) % 100) as f64 / 10.0
                        },
                    )),
                    _ => {
                        let sr = &machine.system_resources[(splitmix(&mut s) as usize) % n_sys];
                        let bytes = if splitmix(&mut s).is_multiple_of(5) {
                            0.0 // a zero-byte flow, finished at birth
                        } else {
                            (1 + splitmix(&mut s) % 1000) as f64 * 1e8
                        };
                        let stream_cap = if splitmix(&mut s).is_multiple_of(3) {
                            Some((1 + splitmix(&mut s) % 20) as f64 * 1e8)
                        } else {
                            None
                        };
                        t.phase(Phase::SystemData {
                            resource: sr.id.to_string(),
                            bytes,
                            stream_cap,
                        })
                    }
                };
            }
            // Random backward edges (keeps the DAG acyclic by index).
            if i > 0 {
                let n_deps = (splitmix(&mut s) % 3).min(i as u64) as usize;
                for _ in 0..n_deps {
                    let d = (splitmix(&mut s) as usize) % i;
                    t = t.after(format!("t{d}"));
                }
            }
            wf = wf.task(t);
        }
        wf
    }

    proptest! {
        /// The tentpole contract: the optimized engine is bit-identical
        /// to the reference on arbitrary scenarios — same trace spans in
        /// the same order, same makespan, same task times/starts/nodes,
        /// and the same error when the scenario is invalid or stalls.
        #[test]
        fn optimized_engine_matches_reference_exactly(
            seed in any::<u64>(),
            n_tasks in 1usize..16,
            machine_ix in 0usize..2,
            backfill in any::<bool>(),
            jitter_seed in prop::option::of(any::<u64>()),
            amplitude in 0.0f64..0.9,
            contention in prop::option::of(0.1f64..1.5),
            background in any::<bool>(),
            node_limit in prop::option::of(1u64..32),
        ) {
            let machine = if machine_ix == 0 {
                machines::cori_haswell()
            } else {
                machines::perlmutter_cpu()
            };
            let wf = build_workflow(seed, n_tasks, &machine);
            let mut opts = SimOptions {
                node_limit,
                scheduler: if backfill {
                    SchedulerPolicy::Backfill
                } else {
                    SchedulerPolicy::Fifo
                },
                jitter: jitter_seed.map(|s| Jitter { seed: s, amplitude }),
                ..SimOptions::default()
            };
            if let Some(f) = contention {
                opts = opts.with_contention(wrm_core::ids::EXTERNAL, f);
            }
            if background {
                opts = opts.with_background(wrm_core::ids::EXTERNAL, 2e9);
            }
            let scenario = Scenario::new(machine, wf).with_options(opts);
            let optimized = simulate(&scenario);
            let reference = simulate_reference(&scenario);
            prop_assert_eq!(optimized, reference);
        }

        /// Same contract under the equal-split sharing ablation.
        #[test]
        fn equal_split_matches_reference_exactly(
            seed in any::<u64>(),
            n_tasks in 1usize..12,
        ) {
            let machine = machines::perlmutter_cpu();
            let wf = build_workflow(seed, n_tasks, &machine);
            let opts = SimOptions {
                sharing: crate::channel::Sharing::EqualSplit,
                ..SimOptions::default()
            };
            let scenario = Scenario::new(machine, wf).with_options(opts);
            prop_assert_eq!(simulate(&scenario), simulate_reference(&scenario));
        }
    }

    /// Regression for the reference's quadratic zero-phase rescan: a
    /// 5000-task chain of zero-phase tasks resolves in one start scan
    /// (every completion unblocks the next task mid-scan), and the
    /// optimized engine handles it without restarting the scan — while
    /// still matching the reference bit for bit.
    #[test]
    fn five_thousand_task_zero_phase_chain() {
        let n = 5000;
        let mut wf = WorkflowSpec::new("zero-chain");
        for i in 0..n {
            let mut t = TaskSpec::new(format!("t{i}"), 1);
            if i > 0 {
                t = t.after(format!("t{}", i - 1));
            }
            wf = wf.task(t);
        }
        let scenario = Scenario::new(machines::perlmutter_cpu(), wf);
        let r = simulate(&scenario).expect("chain completes");
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.task_times.len(), n);
        assert!(r.task_times.values().all(|&t| t == 0.0));
        assert_eq!(
            simulate_reference(&scenario).expect("reference completes"),
            r
        );
    }

    /// Mixed zero-phase fan-out under backfill: zero-phase completions
    /// unblock whole layers mid-scan while real tasks hold nodes.
    #[test]
    fn zero_phase_fanout_matches_reference() {
        let mut wf = WorkflowSpec::new("fanout");
        for i in 0..40 {
            let mut t = TaskSpec::new(format!("gate{i}"), 1);
            if i > 0 {
                t = t.after(format!("gate{}", i - 1));
            }
            wf = wf.task(t);
            let mut w = TaskSpec::new(format!("work{i}"), 3)
                .phase(Phase::overhead("o", 1.0 + f64::from(i)));
            w = w.after(format!("gate{i}"));
            wf = wf.task(w);
        }
        let machine = machines::cori_haswell();
        for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::Backfill] {
            let opts = SimOptions {
                node_limit: Some(16),
                scheduler: policy,
                ..SimOptions::default()
            };
            let scenario = Scenario::new(machine.clone(), wf.clone()).with_options(opts);
            assert_eq!(simulate(&scenario), simulate_reference(&scenario));
        }
    }
}
