//! Completion-event calendars for the event loop.
//!
//! The production calendar is a bucketed **calendar queue** (R. Brown,
//! CACM 1988): events hash into a power-of-two ring of unsorted buckets
//! by `end / width`, so insert is O(1) and extract-min scans forward
//! from a cursor — O(1) amortized when the bucket width tracks the mean
//! event spacing, which the queue re-derives from the live ends at every
//! resize. The binary heap it replaced is kept behind the same
//! [`Calendar`] facade as an in-tree equivalence oracle
//! ([`CalendarKind::Heap`]): the engine's results must be bit-identical
//! under either calendar, which the proptest suite
//! (`tests/calendar_props.rs`) enforces.
//!
//! Why the choice of calendar cannot affect results: the engine never
//! relies on pop *order* beyond the minimum end value — `collect_due`
//! drains every event within the tolerance window into a
//! position-ordered pending set before any completion is processed, and
//! events with bit-equal ends land in the same bucket, where the token
//! tiebreak reproduces the heap's total order locally.

use std::collections::BinaryHeap;

/// A calendar entry: an activity's known completion time. Ordered as a
/// min-heap on `end` (ties broken by token for a total order). Flow
/// entries are not removed on rate change; they are lazily discarded
/// when popped with an `end` that no longer matches the flow's cached
/// one.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CalEv {
    pub(crate) end: f64,
    pub(crate) token: u32,
}

impl PartialEq for CalEv {
    fn eq(&self, other: &Self) -> bool {
        self.token == other.token && self.end.total_cmp(&other.end).is_eq()
    }
}
impl Eq for CalEv {}
impl PartialOrd for CalEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest end.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.token.cmp(&self.token))
    }
}

/// `(end, token)` strictly-less, in min-first orientation.
fn ev_lt(a: CalEv, b: CalEv) -> bool {
    a.end
        .total_cmp(&b.end)
        .then_with(|| a.token.cmp(&b.token))
        .is_lt()
}

/// Which calendar implementation an engine run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarKind {
    /// Bucketed calendar queue: O(1) amortized insert and extract-min
    /// (the production default).
    #[default]
    Buckets,
    /// Binary heap: the pre-calendar-queue implementation, kept as an
    /// equivalence oracle for tests and benches.
    Heap,
}

/// Smallest bucket ring; also the shrink floor.
const MIN_BUCKETS: usize = 16;

/// A bucketed calendar queue. Buckets are unsorted; the dequeue cursor
/// remembers which bucket the current "year" scan reached and events map
/// to buckets by `(end / width) mod nbuckets`. The ring resizes (and
/// re-derives `width` from the observed event spacing) whenever the load
/// factor leaves `[1/4, 2]`.
#[derive(Debug, Clone)]
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<CalEv>>,
    /// `buckets.len() - 1`; the ring size is a power of two.
    mask: usize,
    /// Seconds of simulated time each bucket covers.
    width: f64,
    len: usize,
    /// The bucket the next extract-min scan starts from.
    cur: usize,
    /// Upper time edge of `cur`'s window in the current year. Invariant:
    /// every live event's end is `>= bucket_top - width` (pushes below
    /// the window move the cursor back), so the forward year scan cannot
    /// miss the minimum.
    bucket_top: f64,
    /// Cached location of the current minimum `(bucket, slot)`;
    /// invalidated by pop and resize, maintained by push.
    min_cache: Option<(usize, usize)>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            width: 1.0,
            len: 0,
            cur: 0,
            bucket_top: 1.0,
            min_cache: None,
        }
    }
}

impl CalendarQueue {
    fn bucket_of(&self, end: f64) -> usize {
        // The `f64 -> usize` cast saturates (and maps NaN to 0), so
        // non-finite or absurd ends still land in *some* bucket; the
        // direct-search fallback finds them regardless of window math.
        (end / self.width) as usize & self.mask
    }

    /// Moves the cursor to the window containing `end` (or the ring
    /// start for non-finite `end`), preserving the scan invariant.
    fn reposition(&mut self, end: f64) {
        if end.is_finite() {
            let t = (end / self.width).floor();
            self.cur = t as usize & self.mask;
            self.bucket_top = (t + 1.0) * self.width;
        } else {
            self.cur = 0;
            self.bucket_top = self.width;
        }
    }

    pub(crate) fn push(&mut self, ev: CalEv) {
        if self.len >= self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        // An event below the cursor's window (possible when tolerance
        // popping ran slightly ahead of a subsequent spawn) moves the
        // cursor back; scanning from too early is slower, never wrong.
        if ev.end < self.bucket_top - self.width {
            self.reposition(ev.end);
        }
        let b = self.bucket_of(ev.end);
        self.buckets[b].push(ev);
        self.len += 1;
        if let Some((mb, ms)) = self.min_cache {
            if ev_lt(ev, self.buckets[mb][ms]) {
                self.min_cache = Some((b, self.buckets[b].len() - 1));
            }
        }
    }

    pub(crate) fn peek(&mut self) -> Option<CalEv> {
        self.find_min().map(|(b, s)| self.buckets[b][s])
    }

    pub(crate) fn pop(&mut self) -> Option<CalEv> {
        let (b, s) = self.find_min()?;
        let ev = self.buckets[b].swap_remove(s);
        self.len -= 1;
        self.min_cache = None;
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some(ev)
    }

    /// Empties the queue in place, keeping the ring and per-bucket
    /// allocations (and the learned width) for the next run.
    pub(crate) fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cur = 0;
        self.bucket_top = self.width;
        self.min_cache = None;
    }

    /// Locates the minimum event: one "year" scan from the cursor, then
    /// a direct search over everything (the fallback that makes sparse
    /// or pathological float distributions merely slow, never wrong).
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        if self.min_cache.is_some() {
            return self.min_cache;
        }
        let n = self.buckets.len();
        let mut i = self.cur;
        let mut top = self.bucket_top;
        for _ in 0..n {
            let mut best: Option<(usize, CalEv)> = None;
            for (s, &ev) in self.buckets[i].iter().enumerate() {
                if ev.end < top && best.is_none_or(|(_, b)| ev_lt(ev, b)) {
                    best = Some((s, ev));
                }
            }
            if let Some((s, _)) = best {
                self.cur = i;
                self.bucket_top = top;
                self.min_cache = Some((i, s));
                return self.min_cache;
            }
            i = (i + 1) & self.mask;
            top += self.width;
        }
        let mut best: Option<(usize, usize, CalEv)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (s, &ev) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, b)| ev_lt(ev, b)) {
                    best = Some((bi, s, ev));
                }
            }
        }
        let (bi, s, ev) = best.expect("len > 0 implies a minimum exists");
        self.reposition(ev.end);
        self.min_cache = Some((bi, s));
        self.min_cache
    }

    /// Rebuilds the ring at `new_n` buckets with a width re-derived from
    /// the observed spacing of the live events (range / count), clamped
    /// away from zero so bucket indexing stays meaningful when events
    /// cluster at one instant.
    fn resize(&mut self, new_n: usize) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for bucket in &self.buckets {
            for ev in bucket {
                if ev.end.is_finite() {
                    lo = lo.min(ev.end);
                    hi = hi.max(ev.end);
                }
            }
        }
        let spacing = if hi > lo && self.len > 1 {
            (hi - lo) / self.len as f64
        } else {
            self.width
        };
        self.width = spacing.max(f64::EPSILON * hi.abs().max(1.0));
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_n]);
        self.mask = new_n - 1;
        for bucket in old {
            for ev in bucket {
                let b = self.bucket_of(ev.end);
                self.buckets[b].push(ev);
            }
        }
        self.min_cache = None;
        self.reposition(if lo.is_finite() { lo } else { f64::INFINITY });
    }
}

/// The engine-facing calendar facade: one API over both implementations
/// so the equivalence oracle can swap them per run.
#[derive(Debug, Clone)]
pub(crate) enum Calendar {
    /// Binary-heap calendar (oracle).
    Heap(BinaryHeap<CalEv>),
    /// Bucketed calendar queue (production).
    Buckets(CalendarQueue),
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar::Buckets(CalendarQueue::default())
    }
}

impl Calendar {
    /// Empties the calendar for a new run of the given kind, keeping
    /// allocations when the kind matches the current variant.
    pub(crate) fn reset(&mut self, kind: CalendarKind) {
        match (kind, &mut *self) {
            (CalendarKind::Heap, Calendar::Heap(h)) => h.clear(),
            (CalendarKind::Buckets, Calendar::Buckets(q)) => q.clear(),
            (CalendarKind::Heap, slot) => *slot = Calendar::Heap(BinaryHeap::new()),
            (CalendarKind::Buckets, slot) => *slot = Calendar::Buckets(CalendarQueue::default()),
        }
    }

    pub(crate) fn push(&mut self, ev: CalEv) {
        match self {
            Calendar::Heap(h) => h.push(ev),
            Calendar::Buckets(q) => q.push(ev),
        }
    }

    pub(crate) fn peek(&mut self) -> Option<CalEv> {
        match self {
            Calendar::Heap(h) => h.peek().copied(),
            Calendar::Buckets(q) => q.peek(),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<CalEv> {
        match self {
            Calendar::Heap(h) => h.pop(),
            Calendar::Buckets(q) => q.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(end: f64, token: u32) -> CalEv {
        CalEv { end, token }
    }

    /// Drains a calendar, returning `(end, token)` pairs in pop order.
    fn drain(c: &mut Calendar) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = c.pop() {
            out.push((e.end, e.token));
        }
        out
    }

    /// splitmix64, for dependency-free deterministic fuzz.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn pops_in_end_then_token_order() {
        let mut q = Calendar::Buckets(CalendarQueue::default());
        for (end, token) in [(5.0, 1), (1.0, 2), (5.0, 0), (0.5, 3), (2.5, 4)] {
            q.push(ev(end, token));
        }
        assert_eq!(
            drain(&mut q),
            vec![(0.5, 3), (1.0, 2), (2.5, 4), (5.0, 0), (5.0, 1)]
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn matches_heap_on_fuzzed_interleavings() {
        let mut state = 0xC0FF_EE00_u64;
        for round in 0..50 {
            let mut heap = Calendar::Heap(BinaryHeap::new());
            let mut buckets = Calendar::Buckets(CalendarQueue::default());
            let mut now = 0.0f64;
            let n_ops = 20 + (mix(&mut state) % 400) as usize;
            for tok in 0..n_ops as u32 {
                let r = mix(&mut state);
                if r.is_multiple_of(5) {
                    // Interleave pops; both must agree at every step.
                    let (a, b) = (heap.pop(), buckets.pop());
                    assert_eq!(a.map(|e| (e.end, e.token)), b.map(|e| (e.end, e.token)));
                    if let Some(e) = a {
                        if e.end.is_finite() {
                            now = now.max(e.end);
                        }
                    }
                } else {
                    // Mixed scales: sub-second to ~1e6 s, plus bit-equal
                    // duplicate ends and occasional infinities.
                    let end = match r % 7 {
                        0 => now, // born-done events at the current time
                        1 => f64::INFINITY,
                        2 => now + (mix(&mut state) % 1000) as f64 * 1e-9,
                        3 => now + (mix(&mut state) % 1000) as f64 * 1e6,
                        _ => now + (mix(&mut state) % 1_000_000) as f64 * 1e-3,
                    };
                    heap.push(ev(end, tok));
                    buckets.push(ev(end, tok));
                }
                let (a, b) = (heap.peek(), buckets.peek());
                assert_eq!(
                    a.map(|e| (e.end, e.token)),
                    b.map(|e| (e.end, e.token)),
                    "round {round}"
                );
            }
            assert_eq!(drain(&mut heap), drain(&mut buckets), "round {round}");
        }
    }

    #[test]
    fn push_below_cursor_window_is_found() {
        let mut q = CalendarQueue::default();
        // Advance the cursor deep into the ring...
        for t in 0..40u32 {
            q.push(ev(t as f64 * 3.7, t));
        }
        for _ in 0..39 {
            q.pop();
        }
        let high = q.peek().unwrap();
        // ...then insert an event earlier than the cursor's window.
        q.push(ev(high.end - 2.0, 1000));
        assert_eq!(q.pop().unwrap().token, 1000);
        assert_eq!(q.pop().unwrap().token, high.token);
    }

    #[test]
    fn infinities_and_clustered_ends_survive_resizes() {
        let mut q = CalendarQueue::default();
        // All at one instant (degenerate spacing) plus infinities: grow
        // and shrink through several resizes.
        for t in 0..200u32 {
            let end = if t % 10 == 0 { f64::INFINITY } else { 42.0 };
            q.push(ev(end, t));
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some(e) = q.pop() {
            assert!(e.end >= last);
            last = e.end;
            count += 1;
        }
        assert_eq!(count, 200);
        assert!(last.is_infinite());
    }

    #[test]
    fn reset_keeps_kind_and_empties() {
        let mut c = Calendar::default();
        c.push(ev(1.0, 0));
        c.reset(CalendarKind::Buckets);
        assert!(c.pop().is_none());
        c.reset(CalendarKind::Heap);
        assert!(matches!(c, Calendar::Heap(_)));
        c.push(ev(2.0, 1));
        c.reset(CalendarKind::Heap);
        assert!(c.pop().is_none());
    }
}
