//! Max–min fair bandwidth sharing for shared channels (file system,
//! external links, interconnect backbones).
//!
//! When several tasks move data through one shared resource, the
//! simulator assigns each flow a rate by *progressive filling*: capacity
//! is divided equally, flows whose own cap (e.g. a per-stream WAN limit
//! or the NIC aggregate of the task's nodes) is below the fair share keep
//! their cap, and the leftover is redistributed among the rest. This is
//! the classical fluid model of TCP-fair shared links and reproduces the
//! paper's contention behaviour (LCLS "bad days") without per-packet
//! simulation.

/// One flow's demand on a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Opaque flow identity (index into the caller's table).
    pub id: usize,
    /// The flow's own rate limit in bytes/s (`f64::INFINITY` when only
    /// the channel limits it).
    pub cap: f64,
}

/// The rate assigned to one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRate {
    /// Flow identity (copied from the demand).
    pub id: usize,
    /// Assigned rate in bytes/s.
    pub rate: f64,
}

/// Reusable scratch for the `*_rates_into` solver variants: holds the
/// progressive-filling working set so a caller solving thousands of
/// channel instants per run allocates nothing after warm-up.
#[derive(Debug, Clone, Default)]
pub struct RateScratch {
    /// Indices of flows still competing for the remainder.
    open: Vec<usize>,
}

/// Computes max–min fair rates for `flows` on a channel of `capacity`
/// bytes/s.
///
/// Properties (tested below and in the crate's proptests):
/// * no flow exceeds its cap;
/// * the sum of rates never exceeds `capacity`;
/// * the link saturates whenever the total demand allows it;
/// * uncapped flows all receive the same rate, and no capped flow
///   receives more than an uncapped one.
pub fn max_min_rates(capacity: f64, flows: &[FlowDemand]) -> Vec<FlowRate> {
    let mut out = Vec::new();
    max_min_rates_into(capacity, flows, &mut RateScratch::default(), &mut out);
    out
}

/// [`max_min_rates`] into caller-owned buffers: `out` is cleared and
/// refilled (one rate per flow, in flow order), `scratch` is reused
/// across calls. The assigned rates are bit-identical to
/// [`max_min_rates`] — both run the same progressive filling in the
/// same order.
pub fn max_min_rates_into(
    capacity: f64,
    flows: &[FlowDemand],
    scratch: &mut RateScratch,
    out: &mut Vec<FlowRate>,
) {
    assert!(
        capacity >= 0.0 && !capacity.is_nan(),
        "channel capacity must be non-negative"
    );
    out.clear();
    if flows.is_empty() {
        return;
    }

    out.extend(flows.iter().map(|f| FlowRate {
        id: f.id,
        rate: 0.0,
    }));
    let open = &mut scratch.open;
    open.clear();
    open.extend(0..flows.len());
    let mut remaining = capacity;

    loop {
        if open.is_empty() || remaining <= 0.0 {
            break;
        }
        let share = remaining / open.len() as f64;
        // Settle every open flow whose cap is at or below the share.
        let mut settled_any = false;
        open.retain(|&i| {
            if flows[i].cap <= share {
                out[i].rate = flows[i].cap;
                remaining -= flows[i].cap;
                settled_any = true;
                false
            } else {
                true
            }
        });
        if !settled_any {
            // Everyone left is limited by the channel: equal share.
            for &i in &*open {
                out[i].rate = share;
            }
            break;
        }
    }
}

/// Equal-split sharing: the naive alternative (every flow gets
/// `capacity / n`, clipped to its cap). Kept as an ablation baseline for
/// the benchmarks; it under-utilizes the link whenever caps differ.
pub fn equal_split_rates(capacity: f64, flows: &[FlowDemand]) -> Vec<FlowRate> {
    let mut out = Vec::new();
    equal_split_rates_into(capacity, flows, &mut out);
    out
}

/// [`equal_split_rates`] into a caller-owned buffer (cleared and
/// refilled), for allocation-free repeated solving.
pub fn equal_split_rates_into(capacity: f64, flows: &[FlowDemand], out: &mut Vec<FlowRate>) {
    assert!(
        capacity >= 0.0 && !capacity.is_nan(),
        "channel capacity must be non-negative"
    );
    out.clear();
    let share = capacity / flows.len() as f64;
    out.extend(flows.iter().map(|f| FlowRate {
        id: f.id,
        rate: share.min(f.cap),
    }));
}

/// Sharing discipline selector (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sharing {
    /// Max–min fairness by progressive filling (default; work-conserving).
    #[default]
    MaxMin,
    /// Naive equal split clipped to per-flow caps (not work-conserving).
    EqualSplit,
}

impl Sharing {
    /// Dispatches to the selected solver.
    pub fn rates(self, capacity: f64, flows: &[FlowDemand]) -> Vec<FlowRate> {
        match self {
            Sharing::MaxMin => max_min_rates(capacity, flows),
            Sharing::EqualSplit => equal_split_rates(capacity, flows),
        }
    }

    /// Dispatches to the selected solver's buffer-reusing variant; the
    /// rates written to `out` are bit-identical to [`Sharing::rates`].
    pub fn rates_into(
        self,
        capacity: f64,
        flows: &[FlowDemand],
        scratch: &mut RateScratch,
        out: &mut Vec<FlowRate>,
    ) {
        match self {
            Sharing::MaxMin => max_min_rates_into(capacity, flows, scratch, out),
            Sharing::EqualSplit => equal_split_rates_into(capacity, flows, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(id: usize, cap: f64) -> FlowDemand {
        FlowDemand { id, cap }
    }

    #[test]
    fn symmetric_flows_split_evenly() {
        let flows = vec![demand(0, f64::INFINITY); 4]
            .into_iter()
            .enumerate()
            .map(|(i, mut f)| {
                f.id = i;
                f
            })
            .collect::<Vec<_>>();
        let rates = max_min_rates(100.0, &flows);
        for r in &rates {
            assert!((r.rate - 25.0).abs() < 1e-12);
        }
    }

    #[test]
    fn capped_flow_releases_bandwidth() {
        // One flow capped at 10; the others share the rest.
        let flows = vec![
            demand(0, 10.0),
            demand(1, f64::INFINITY),
            demand(2, f64::INFINITY),
        ];
        let rates = max_min_rates(100.0, &flows);
        assert!((rates[0].rate - 10.0).abs() < 1e-12);
        assert!((rates[1].rate - 45.0).abs() < 1e-12);
        assert!((rates[2].rate - 45.0).abs() < 1e-12);
        let total: f64 = rates.iter().map(|r| r.rate).sum();
        assert!((total - 100.0).abs() < 1e-9, "work conserving");
    }

    #[test]
    fn all_caps_below_share_leave_slack() {
        let flows = vec![demand(0, 5.0), demand(1, 7.0)];
        let rates = max_min_rates(100.0, &flows);
        assert!((rates[0].rate - 5.0).abs() < 1e-12);
        assert!((rates[1].rate - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lcls_streams_on_cori() {
        // Five 1 GB/s-capped streams on a link that is not the bottleneck:
        // each gets its 1 GB/s (the paper's good day).
        let flows: Vec<FlowDemand> = (0..5).map(|i| demand(i, 1e9)).collect();
        let rates = max_min_rates(910e9, &flows);
        for r in rates {
            assert!((r.rate - 1e9).abs() < 1e-3);
        }
        // Bad day: the effective per-stream cap drops 5x.
        let flows: Vec<FlowDemand> = (0..5).map(|i| demand(i, 0.2e9)).collect();
        let rates = max_min_rates(910e9, &flows);
        for r in rates {
            assert!((r.rate - 0.2e9).abs() < 1e-3);
        }
    }

    #[test]
    fn equal_split_is_not_work_conserving() {
        let flows = vec![demand(0, 10.0), demand(1, f64::INFINITY)];
        let mm = max_min_rates(100.0, &flows);
        let eq = equal_split_rates(100.0, &flows);
        let mm_total: f64 = mm.iter().map(|r| r.rate).sum();
        let eq_total: f64 = eq.iter().map(|r| r.rate).sum();
        assert!((mm_total - 100.0).abs() < 1e-9);
        assert!((eq_total - 60.0).abs() < 1e-9); // 10 + 50: wastes 40
    }

    #[test]
    fn sharing_dispatch() {
        let flows = vec![demand(0, f64::INFINITY)];
        assert_eq!(Sharing::MaxMin.rates(8.0, &flows)[0].rate, 8.0);
        assert_eq!(Sharing::EqualSplit.rates(8.0, &flows)[0].rate, 8.0);
        assert_eq!(Sharing::default(), Sharing::MaxMin);
    }

    #[test]
    fn empty_and_zero_capacity() {
        assert!(max_min_rates(10.0, &[]).is_empty());
        let flows = vec![demand(0, f64::INFINITY)];
        let rates = max_min_rates(0.0, &flows);
        assert_eq!(rates[0].rate, 0.0);
        assert!(equal_split_rates(10.0, &[]).is_empty());
    }

    #[test]
    fn zero_cap_flow_gets_zero_and_frees_capacity() {
        let flows = vec![demand(0, 0.0), demand(1, f64::INFINITY)];
        let rates = max_min_rates(10.0, &flows);
        assert_eq!(rates[0].rate, 0.0);
        assert!((rates[1].rate - 10.0).abs() < 1e-12);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let flows = vec![demand(0, 10.0), demand(1, f64::INFINITY), demand(2, 3.0)];
        let mut scratch = RateScratch::default();
        let mut out = Vec::new();
        for cap in [0.0, 5.0, 100.0] {
            max_min_rates_into(cap, &flows, &mut scratch, &mut out);
            assert_eq!(out, max_min_rates(cap, &flows));
            equal_split_rates_into(cap, &flows, &mut out);
            assert_eq!(out, equal_split_rates(cap, &flows));
            Sharing::MaxMin.rates_into(cap, &flows, &mut scratch, &mut out);
            assert_eq!(out, Sharing::MaxMin.rates(cap, &flows));
        }
        equal_split_rates_into(1.0, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ids_are_preserved() {
        let flows = vec![demand(42, f64::INFINITY), demand(7, 1.0)];
        let rates = max_min_rates(10.0, &flows);
        assert_eq!(rates[0].id, 42);
        assert_eq!(rates[1].id, 7);
    }
}
