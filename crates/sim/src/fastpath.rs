//! The analytic sweep fast path: longest-path scheduling instead of DES.
//!
//! When a sweep point has no channel contention and no node-limit
//! queueing, the DES does no real work: every fair-share solve settles
//! every flow at exactly its own cap (progressive filling assigns the
//! literal `cap` value, not an arithmetic result), rates never change
//! after first assignment, and — because both engines materialize flow
//! progress only on rate change — every phase end is a closed-form
//! spawn-time expression. The whole run collapses to a longest-path
//! computation over the base index's dependents CSR
//! ([`wrm_dag::longest_path_ends`]), *bit-exact* against the DES.
//!
//! [`try_fastpath`] computes that analytic schedule, then *verifies*
//! the no-contention/no-queueing premise against the schedule itself:
//!
//! 1. **node sweep** — at every event time, the pool must hold all
//!    concurrently-allocated tasks (counting same-instant starters as
//!    concurrent, a conservative over-approximation of the scheduler's
//!    release-then-allocate micro-order);
//! 2. **channel sweep** — whenever two or more flows overlap on a
//!    channel, their caps must sum below the capacity with a relative
//!    `1e-9` margin (which guarantees progressive filling settles all of
//!    them at their caps, exactly, regardless of demand order);
//! 3. **collision check** — distinct analytic event times must be more
//!    than `2 * time_eps` apart, so the DES's completion tolerance
//!    cannot pull an activity to an earlier event than the analytic
//!    schedule assigns it.
//!
//! Any violation — or jitter, non-max-min sharing, background flows, a
//! dependency cycle, a starved or unbounded flow — returns `None` and
//! the caller falls back to the DES. The returned result matches the
//! DES in every scalar and in the trace span *set*; span order within a
//! shared completion instant may differ (the `Trace` contract documents
//! spans as unordered), so comparisons sort spans first.

use crate::channel::Sharing;
use crate::engine::{flow_finished, span_kind, time_eps, SimOptions, SimResult};
use crate::index::{BaseIndex, PhaseIx};
use crate::overlay::IndexOverlay;
use crate::spec::WorkflowSpec;
use std::collections::BTreeMap;
use wrm_trace::{Trace, TraceSpan};

/// One flow interval on a channel, for the channel sweep.
#[derive(Clone)]
struct FlowIval {
    start: f64,
    end: f64,
    cap: f64,
}

/// Attempts the analytic fast path. `None` means "use the DES".
pub(crate) fn try_fastpath(
    workflow: &WorkflowSpec,
    machine_name: &str,
    opts: &SimOptions,
    base: &BaseIndex,
    overlay: &IndexOverlay,
) -> Option<SimResult> {
    if opts.jitter.is_some() || opts.sharing != Sharing::MaxMin {
        return None;
    }
    if overlay.background.iter().any(|b| !b.is_empty()) {
        return None;
    }

    let n_phases = base.phases.len();
    // (start, end) per phase slot, filled in topological order.
    let mut phase_sched = vec![(0.0f64, 0.0f64); n_phases];
    let mut flows: Vec<Vec<FlowIval>> = vec![Vec::new(); overlay.channel_capacity.len()];
    let mut bail = false;

    let sched = wrm_dag::longest_path_ends(
        &base.dep_count,
        &base.dependents_off,
        &base.dependents,
        |t, start| {
            let t = t as usize;
            let mut cur = start;
            for (k, slot) in (base.phase_off[t]..base.phase_off[t + 1]).enumerate() {
                let end = match base.phases[slot as usize] {
                    PhaseIx::Fixed { duration } => {
                        // The engine computes `now + duration * jf`; with
                        // no jitter `jf == 1.0` and `x * 1.0 == x`.
                        let mut end = cur + duration;
                        // A later phase born within tolerance completes
                        // inside the same scan, at the current time.
                        if k > 0 && end <= cur + time_eps(cur) {
                            end = cur;
                        }
                        end
                    }
                    PhaseIx::Flow {
                        channel,
                        bytes,
                        alloc_base,
                        stream_base,
                    } => {
                        let f = overlay.channel_factor[channel as usize];
                        let cap = (alloc_base * f).min(stream_base * f);
                        let capacity = overlay.channel_capacity[channel as usize];
                        // An uncontended max-min solve: a lone flow
                        // settles at its cap, or at the full capacity
                        // when its cap exceeds it (`remaining / 1.0`).
                        let r = if cap <= capacity { cap } else { capacity };
                        let end = if flow_finished(bytes, r, cur) {
                            cur
                        } else if r > 0.0 && r.is_finite() {
                            cur + bytes / r
                        } else {
                            // Starved (the DES would stall) or unbounded.
                            bail = true;
                            cur
                        };
                        flows[channel as usize].push(FlowIval {
                            start: cur,
                            end,
                            cap,
                        });
                        end
                    }
                };
                if !end.is_finite() {
                    bail = true;
                }
                phase_sched[slot as usize] = (cur, end);
                cur = end;
            }
            cur
        },
    )?;
    if bail {
        return None;
    }

    if !verify_nodes(base, overlay, &sched)
        || !verify_channels(overlay, &flows)
        || !verify_no_collisions(&phase_sched)
    {
        return None;
    }

    // Build the result exactly as the DES materializes it.
    let mut trace = Trace::new(workflow.name.clone(), machine_name.to_string());
    let mut task_starts = BTreeMap::new();
    let mut task_ends = BTreeMap::new();
    for (i, task) in workflow.tasks.iter().enumerate() {
        for (k, phase) in task.phases.iter().enumerate() {
            let (s, e) = phase_sched[(base.phase_off[i] as usize) + k];
            trace.push(TraceSpan::new(
                task.name.clone(),
                span_kind(phase),
                s,
                e,
                task.nodes,
            ));
        }
        task_starts.insert(task.name.clone(), sched[i].0);
        task_ends.insert(task.name.clone(), sched[i].1);
    }
    let makespan = trace.makespan();
    let task_times = task_starts
        .iter()
        .filter_map(|(name, start): (&String, &f64)| {
            task_ends.get(name).map(|end| (name.clone(), end - start))
        })
        .collect();
    let task_nodes = workflow
        .tasks
        .iter()
        .map(|t| (t.name.clone(), t.nodes))
        .collect();
    Some(SimResult {
        trace,
        makespan,
        task_times,
        task_starts,
        task_nodes,
        pool_nodes: overlay.pool_total,
    })
}

/// Node sweep: replaying the analytic schedule must never need more
/// nodes than the pool. Same-instant starters are counted as concurrent
/// with each other and with same-instant releases still pending —
/// conservative with respect to the scheduler's actual
/// release-then-allocate order — so a pass guarantees no task ever
/// queues under either policy.
fn verify_nodes(base: &BaseIndex, overlay: &IndexOverlay, sched: &[(f64, f64)]) -> bool {
    // time bits -> (released, allocated, transient) node counts. Times
    // are non-negative finite, so the bit pattern orders like the float.
    let mut events: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for (t, &(start, end)) in sched.iter().enumerate() {
        let need = base.nodes[t];
        let e = events.entry(start.to_bits()).or_default();
        e.1 += need;
        if start == end {
            e.2 += need;
        } else {
            events.entry(end.to_bits()).or_default().0 += need;
        }
    }
    let pool = overlay.pool_total;
    let mut held: u64 = 0;
    for (_, (released, allocated, transient)) in events {
        held -= released;
        held += allocated;
        if held > pool {
            return false;
        }
        held -= transient;
    }
    true
}

/// Channel sweep: wherever two or more flows coexist on a channel,
/// their caps must be finite and sum below the capacity with a relative
/// `1e-9` margin. The margin dwarfs the float drift of both this sweep's
/// running sum and progressive filling's `remaining` accumulator, so it
/// proves every solve settles every flow at exactly its cap. Zero-length
/// flows count at their instant (they participate in one solve round);
/// flows ending exactly when others arrive do not overlap them (the DES
/// completes before it re-solves).
fn verify_channels(overlay: &IndexOverlay, flows: &[Vec<FlowIval>]) -> bool {
    for (ch, ivals) in flows.iter().enumerate() {
        if ivals.len() < 2 {
            continue;
        }
        let capacity = overlay.channel_capacity[ch];
        let limit = capacity * (1.0 - 1e-9);
        let mut order: Vec<usize> = (0..ivals.len()).collect();
        order.sort_unstable_by(|&a, &b| ivals[a].start.total_cmp(&ivals[b].start));
        // Min-heap of (end, cap) for active flows.
        let mut active: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut cap_sum = 0.0f64;
        let mut i = 0;
        while i < order.len() {
            let t = ivals[order[i]].start;
            // Flows ending at or before this arrival instant left before
            // the solve that admits it.
            while let Some(&std::cmp::Reverse((end_bits, cap_bits))) = active.peek() {
                if f64::from_bits(end_bits) <= t {
                    active.pop();
                    cap_sum -= f64::from_bits(cap_bits);
                } else {
                    break;
                }
            }
            // Admit the whole same-instant batch (zero-length flows
            // included: they share one solve round with the batch).
            while i < order.len() && ivals[order[i]].start == t {
                let iv = &ivals[order[i]];
                let end = if iv.end == t {
                    // Present for this batch's solve only; evict at any
                    // strictly later arrival.
                    t
                } else {
                    iv.end
                };
                active.push(std::cmp::Reverse((end.to_bits(), iv.cap.to_bits())));
                cap_sum += iv.cap;
                i += 1;
            }
            if active.len() >= 2 && !(cap_sum.is_finite() && cap_sum <= limit) {
                return false;
            }
            // Zero-length members of this batch must not leak into later
            // batches' counts as "active": they are evicted by the
            // `end <= t` pop at the next strictly-greater arrival time.
        }
    }
    true
}

/// Collision check: distinct analytic event times must be farther apart
/// than twice the DES completion tolerance at the later time, so no
/// activity can be pulled to an earlier event than its analytic end.
fn verify_no_collisions(phase_sched: &[(f64, f64)]) -> bool {
    let mut times: Vec<f64> = Vec::with_capacity(phase_sched.len() + 1);
    times.push(0.0);
    for &(_, end) in phase_sched {
        times.push(end);
    }
    times.sort_unstable_by(f64::total_cmp);
    for w in times.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a < b && b - a <= 2.0 * time_eps(b) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::try_fastpath;
    use crate::engine::{simulate, Scenario, SimOptions, SimResult};
    use crate::index::BaseIndex;
    use crate::overlay::IndexOverlay;
    use crate::reference::simulate_reference;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use proptest::prelude::*;
    use wrm_core::machines;

    fn run_fastpath(scenario: &Scenario) -> Option<SimResult> {
        let base = BaseIndex::build(&scenario.machine, &scenario.workflow).ok()?;
        let overlay = IndexOverlay::build(&base, &scenario.workflow, &scenario.options).ok()?;
        try_fastpath(
            &scenario.workflow,
            &scenario.machine.name,
            &scenario.options,
            &base,
            &overlay,
        )
    }

    /// Sorts a result's spans with a stable key so fast-path and DES
    /// traces (identical as span *sets*, possibly ordered differently at
    /// shared completion instants) compare equal; all scalar fields stay
    /// under exact comparison.
    fn canonicalize(mut r: SimResult) -> SimResult {
        r.trace
            .spans
            .sort_by(|a, b| a.task.cmp(&b.task).then(a.start.total_cmp(&b.start)));
        r
    }

    fn assert_matches_des(scenario: &Scenario) {
        let fast = run_fastpath(scenario).expect("fast path engages");
        let des = simulate(scenario).expect("DES succeeds");
        let refr = simulate_reference(scenario).expect("reference succeeds");
        assert_eq!(canonicalize(fast.clone()), canonicalize(des));
        assert_eq!(canonicalize(fast), canonicalize(refr));
    }

    /// An uncontended pipeline: stream-capped flows far below capacity.
    #[test]
    fn engages_on_uncontended_pipeline_bit_identically() {
        let mut wf = WorkflowSpec::new("uncontended");
        for i in 0..6 {
            let mut t = TaskSpec::new(format!("t{i}"), 4)
                .phase(Phase::overhead("setup", 3.0 + f64::from(i)))
                .phase(Phase::SystemData {
                    resource: wrm_core::ids::EXTERNAL.into(),
                    bytes: 7e9 + f64::from(i) * 1e9,
                    stream_cap: Some(1e9),
                });
            if i > 0 {
                t = t.after(format!("t{}", i - 1));
            }
            wf = wf.task(t);
        }
        let scenario = Scenario::new(machines::cori_haswell(), wf);
        assert_matches_des(&scenario);
    }

    /// Parallel flows whose caps sum below capacity also engage.
    #[test]
    fn engages_on_parallel_uncontended_flows() {
        let mut wf = WorkflowSpec::new("parallel");
        for i in 0..8 {
            wf = wf.task(TaskSpec::new(format!("w{i}"), 2).phase(Phase::SystemData {
                resource: wrm_core::ids::EXTERNAL.into(),
                bytes: 5e9 + f64::from(i) * 1e9,
                // 8 x 0.5 GB/s stays below Cori's 5 GB/s external link.
                stream_cap: Some(5e8),
            }));
        }
        let scenario = Scenario::new(machines::cori_haswell(), wf);
        assert_matches_des(&scenario);
    }

    /// Contention (caps exceeding capacity) must fall back to the DES.
    #[test]
    fn bails_on_contention() {
        let mut wf = WorkflowSpec::new("contended");
        for i in 0..4 {
            wf = wf.task(TaskSpec::new(format!("w{i}"), 2).phase(Phase::SystemData {
                resource: wrm_core::ids::EXTERNAL.into(),
                bytes: 1e12,
                stream_cap: None,
            }));
        }
        let machine = machines::cori_haswell();
        let opts = SimOptions::default().with_contention(wrm_core::ids::EXTERNAL, 0.5);
        let scenario = Scenario::new(machine, wf).with_options(opts);
        assert!(run_fastpath(&scenario).is_none());
    }

    /// Node-limit queueing must fall back to the DES.
    #[test]
    fn bails_on_node_queueing() {
        let mut wf = WorkflowSpec::new("queued");
        for i in 0..5 {
            wf = wf.task(TaskSpec::new(format!("w{i}"), 8).phase(Phase::overhead("o", 10.0)));
        }
        let opts = SimOptions {
            node_limit: Some(16),
            ..SimOptions::default()
        };
        let scenario = Scenario::new(machines::cori_haswell(), wf).with_options(opts);
        assert!(run_fastpath(&scenario).is_none());
    }

    /// Jitter and background flows disable the fast path outright.
    #[test]
    fn bails_on_jitter_and_background() {
        let wf =
            WorkflowSpec::new("j").task(TaskSpec::new("t", 1).phase(Phase::overhead("o", 1.0)));
        let machine = machines::cori_haswell();
        let jitter = SimOptions {
            jitter: Some(crate::engine::Jitter {
                seed: 1,
                amplitude: 0.1,
            }),
            ..SimOptions::default()
        };
        assert!(
            run_fastpath(&Scenario::new(machine.clone(), wf.clone()).with_options(jitter))
                .is_none()
        );
        let bg = SimOptions::default().with_background(wrm_core::ids::EXTERNAL, 1e9);
        assert!(run_fastpath(&Scenario::new(machine, wf).with_options(bg)).is_none());
    }

    /// Generator for scenarios that are uncontended by construction:
    /// small stream-capped flows, loose pool, no jitter/background. The
    /// fast path must engage and match both engines bit-identically.
    fn uncontended_workflow(seed: u64, n_tasks: usize) -> WorkflowSpec {
        let mut s = seed;
        let mut split = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut wf = WorkflowSpec::new(format!("unc[{seed}]"));
        for i in 0..n_tasks {
            let nodes = 1 + split() % 4;
            let mut t = TaskSpec::new(format!("t{i}"), nodes);
            for _ in 0..(split() % 3) {
                t = match split() % 3 {
                    0 => t.phase(Phase::overhead("o", (1 + split() % 400) as f64 / 10.0)),
                    1 => t.phase(Phase::Compute {
                        flops: (1 + split() % 1000) as f64 * 1e9,
                        efficiency: 0.25 + (split() % 100) as f64 / 200.0,
                    }),
                    // Tiny stream caps: 12 tasks x 1e8 B/s stays far
                    // below either machine's external capacity.
                    _ => t.phase(Phase::SystemData {
                        resource: wrm_core::ids::EXTERNAL.into(),
                        bytes: (1 + split() % 500) as f64 * 1e8,
                        stream_cap: Some(1e8),
                    }),
                };
            }
            if i > 0 {
                for _ in 0..(split() % 3).min(i as u64) {
                    let d = (split() as usize) % i;
                    t = t.after(format!("t{d}"));
                }
            }
            wf = wf.task(t);
        }
        wf
    }

    proptest! {
        /// The fast-path satellite contract: on generated uncontended
        /// scenarios the analytic schedule is bit-identical to the DES
        /// and to the reference oracle.
        #[test]
        fn fastpath_is_bit_identical_on_uncontended_scenarios(
            seed in any::<u64>(),
            n_tasks in 1usize..12,
            machine_ix in 0usize..2,
            backfill in any::<bool>(),
        ) {
            let machine = if machine_ix == 0 {
                machines::cori_haswell()
            } else {
                machines::perlmutter_cpu()
            };
            let wf = uncontended_workflow(seed, n_tasks);
            let opts = SimOptions {
                scheduler: if backfill {
                    crate::engine::SchedulerPolicy::Backfill
                } else {
                    crate::engine::SchedulerPolicy::Fifo
                },
                ..SimOptions::default()
            };
            let scenario = Scenario::new(machine, wf).with_options(opts);
            // Random durations can (rarely) land within the collision
            // tolerance, where the fast path soundly bails.
            if let Some(fast) = run_fastpath(&scenario) {
                let des = simulate(&scenario).expect("DES succeeds");
                let refr = simulate_reference(&scenario).expect("reference succeeds");
                prop_assert_eq!(canonicalize(fast.clone()), canonicalize(des));
                prop_assert_eq!(canonicalize(fast), canonicalize(refr));
            } else {
                // Bailing is allowed (sound), but the DES must agree the
                // scenario at least runs.
                simulate(&scenario).expect("DES succeeds");
            }
        }
    }
}
