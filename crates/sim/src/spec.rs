//! Simulation input: workflow specifications as DAGs of phase-structured
//! tasks, plus the scenario knobs (contention, jitter, scheduling).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use wrm_core::{Dist, Machine};
use wrm_dag::{Dag, DagError};

/// One execution phase of a task. Phases run in order within the task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "phase", rename_all = "snake_case")]
pub enum Phase {
    /// Floating-point computation: `flops` total across the task's nodes,
    /// retired at `efficiency x` the node peak.
    Compute {
        /// Total FLOPs for the task.
        flops: f64,
        /// Fraction of peak achieved, in `(0, 1]`.
        efficiency: f64,
    },
    /// Node-local data movement (HBM, DRAM, PCIe): `bytes` total across
    /// the task's nodes at `efficiency x` peak.
    NodeData {
        /// Node resource id.
        resource: String,
        /// Total bytes for the task.
        bytes: f64,
        /// Fraction of peak achieved, in `(0, 1]`.
        efficiency: f64,
    },
    /// Shared-system data movement: a flow of `bytes` on the shared
    /// channel `resource`, rate-limited by max-min fair sharing and an
    /// optional per-flow cap (e.g. a WAN stream limit).
    SystemData {
        /// System resource id.
        resource: String,
        /// Total bytes for the task.
        bytes: f64,
        /// Per-flow rate cap in bytes/s (None = only the channel limits).
        stream_cap: Option<f64>,
    },
    /// Fixed control-flow overhead (bash, python, srun, metadata).
    Overhead {
        /// Label for breakdown charts.
        label: String,
        /// Duration in seconds.
        seconds: f64,
    },
}

impl Phase {
    /// Convenience: compute at full efficiency.
    pub fn compute(flops: f64) -> Self {
        Phase::Compute {
            flops,
            efficiency: 1.0,
        }
    }

    /// Convenience: node data at full efficiency.
    pub fn node_data(resource: impl Into<String>, bytes: f64) -> Self {
        Phase::NodeData {
            resource: resource.into(),
            bytes,
            efficiency: 1.0,
        }
    }

    /// Convenience: uncapped system data flow.
    pub fn system_data(resource: impl Into<String>, bytes: f64) -> Self {
        Phase::SystemData {
            resource: resource.into(),
            bytes,
            stream_cap: None,
        }
    }

    /// Convenience: fixed overhead.
    pub fn overhead(label: impl Into<String>, seconds: f64) -> Self {
        Phase::Overhead {
            label: label.into(),
            seconds,
        }
    }

    /// Validates numeric fields.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        match self {
            Phase::Compute { flops, efficiency } => {
                if !ok(*flops) {
                    return Err(SpecError::Invalid(format!("bad flops {flops}")));
                }
                if !(efficiency.is_finite() && *efficiency > 0.0 && *efficiency <= 1.0) {
                    return Err(SpecError::Invalid(format!(
                        "compute efficiency must be in (0,1], got {efficiency}"
                    )));
                }
            }
            Phase::NodeData {
                bytes, efficiency, ..
            } => {
                if !ok(*bytes) {
                    return Err(SpecError::Invalid(format!("bad bytes {bytes}")));
                }
                if !(efficiency.is_finite() && *efficiency > 0.0 && *efficiency <= 1.0) {
                    return Err(SpecError::Invalid(format!(
                        "node-data efficiency must be in (0,1], got {efficiency}"
                    )));
                }
            }
            Phase::SystemData {
                bytes, stream_cap, ..
            } => {
                if !ok(*bytes) {
                    return Err(SpecError::Invalid(format!("bad bytes {bytes}")));
                }
                if let Some(cap) = stream_cap {
                    if !(cap.is_finite() && *cap > 0.0) {
                        return Err(SpecError::Invalid(format!("bad stream cap {cap}")));
                    }
                }
            }
            Phase::Overhead { seconds, .. } => {
                if !ok(*seconds) {
                    return Err(SpecError::Invalid(format!("bad overhead {seconds}")));
                }
            }
        }
        Ok(())
    }
}

/// A distribution attached to one phase of a task: across Monte-Carlo
/// replications, the phase's headline quantity (FLOPs, bytes, or
/// seconds) is drawn from `dist` instead of using the spec's point
/// value. The plain [`Phase`] keeps the distribution *mean* as its
/// quantity, so deterministic `simulate`/`certify` runs are unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDist {
    /// Index into the task's `phases` vector.
    pub phase: u32,
    /// The quantity distribution, in the phase's natural unit.
    pub dist: Dist,
}

/// One task: a named phase sequence on a node allocation, gated on the
/// completion of other tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique task name.
    pub name: String,
    /// Nodes the task occupies from ready to completion.
    pub nodes: u64,
    /// Ordered phases.
    pub phases: Vec<Phase>,
    /// Names of tasks that must finish first.
    pub after: Vec<String>,
    /// Monte-Carlo phase distributions (empty for deterministic tasks;
    /// skipped in serialization so legacy JSON and fingerprints are
    /// byte-stable).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub dists: Vec<PhaseDist>,
}

impl TaskSpec {
    /// Creates a task with no dependencies.
    pub fn new(name: impl Into<String>, nodes: u64) -> Self {
        Self {
            name: name.into(),
            nodes,
            phases: Vec::new(),
            after: Vec::new(),
            dists: Vec::new(),
        }
    }

    /// Appends a phase.
    pub fn phase(mut self, p: Phase) -> Self {
        self.phases.push(p);
        self
    }

    /// Attaches a quantity distribution to phase `phase` (an index into
    /// the phases appended so far).
    pub fn dist(mut self, phase: u32, dist: Dist) -> Self {
        self.dists.push(PhaseDist { phase, dist });
        self
    }

    /// Adds a dependency by task name.
    pub fn after(mut self, name: impl Into<String>) -> Self {
        self.after.push(name.into());
        self
    }
}

/// A workflow to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub name: String,
    /// All tasks.
    pub tasks: Vec<TaskSpec>,
}

/// Errors from spec validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A numeric or structural field was invalid.
    Invalid(String),
    /// A dependency referenced an unknown task name.
    UnknownDependency {
        /// The depending task.
        task: String,
        /// The missing dependency name.
        dependency: String,
    },
    /// DAG-level error (duplicate names, cycles).
    Dag(DagError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
            SpecError::UnknownDependency { task, dependency } => {
                write!(f, "task {task} depends on unknown task {dependency}")
            }
            SpecError::Dag(e) => write!(f, "workflow graph error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<DagError> for SpecError {
    fn from(e: DagError) -> Self {
        SpecError::Dag(e)
    }
}

impl WorkflowSpec {
    /// Creates an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Adds a task.
    pub fn task(mut self, t: TaskSpec) -> Self {
        self.tasks.push(t);
        self
    }

    /// Validates phases, dependency names, and acyclicity.
    ///
    /// The happy path runs on dense indices (hash-map name resolution
    /// plus an index-based Kahn scan), so validation is
    /// `O(tasks + deps)`. The string-keyed [`Dag`] — whose
    /// duplicate-name scan is quadratic — is only built when a
    /// structural problem is detected, purely to reproduce the exact
    /// error value callers have always seen.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut names: std::collections::HashMap<&str, u32> =
            std::collections::HashMap::with_capacity(self.tasks.len());
        let mut duplicate = false;
        for (i, t) in self.tasks.iter().enumerate() {
            duplicate |= names.insert(t.name.as_str(), i as u32).is_some();
        }
        if duplicate {
            // Let the DAG construction name the duplicate.
            self.to_dag_with(|_| 0.0)?;
        }
        for t in &self.tasks {
            if t.nodes == 0 {
                return Err(SpecError::Invalid(format!(
                    "task {} has zero nodes",
                    t.name
                )));
            }
            for p in &t.phases {
                p.validate()?;
            }
            for pd in &t.dists {
                if pd.phase as usize >= t.phases.len() {
                    return Err(SpecError::Invalid(format!(
                        "task {} attaches a distribution to phase {} but has only {} phases",
                        t.name,
                        pd.phase,
                        t.phases.len()
                    )));
                }
                if let Err(reason) = pd.dist.validate() {
                    return Err(SpecError::Invalid(format!(
                        "task {} phase {}: invalid distribution: {reason}",
                        t.name, pd.phase
                    )));
                }
            }
            for dep in &t.after {
                if !names.contains_key(dep.as_str()) {
                    return Err(SpecError::UnknownDependency {
                        task: t.name.clone(),
                        dependency: dep.clone(),
                    });
                }
            }
        }
        if !self.is_acyclic(&names) {
            // Let the DAG construction name the self-dependency or the
            // first cycle member, exactly as it always has.
            self.to_dag_with(|_| 0.0)?;
        }
        Ok(())
    }

    /// Index-based Kahn scan over the dependency lists (`names` maps
    /// task name to index; every dependency is known to resolve).
    /// Returns `false` on a self-dependency or a cycle; the caller then
    /// rebuilds the [`Dag`] to produce the historical error value.
    fn is_acyclic(&self, names: &std::collections::HashMap<&str, u32>) -> bool {
        let n = self.tasks.len();
        // Per-task predecessor lists, deduplicated ([`Dag`] ignores
        // duplicate edges, so double-counting indegree here would
        // misreport diamond-with-repeated-edge specs as cyclic).
        let mut pred_off = Vec::with_capacity(n + 1);
        pred_off.push(0u32);
        let mut preds: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            scratch.clear();
            for dep in &t.after {
                let p = names[dep.as_str()];
                if p == i as u32 {
                    return false; // self-dependency
                }
                scratch.push(p);
            }
            scratch.sort_unstable();
            scratch.dedup();
            preds.extend_from_slice(&scratch);
            pred_off.push(preds.len() as u32);
        }
        // Invert into CSR successor lists.
        let mut succ_off = vec![0u32; n + 1];
        for &p in &preds {
            succ_off[p as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let mut cursor = succ_off.clone();
        let mut succs = vec![0u32; preds.len()];
        for i in 0..n {
            for &pred in &preds[pred_off[i] as usize..pred_off[i + 1] as usize] {
                let p = pred as usize;
                succs[cursor[p] as usize] = i as u32;
                cursor[p] += 1;
            }
        }
        let mut indegree: Vec<u32> = (0..n).map(|i| pred_off[i + 1] - pred_off[i]).collect();
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            for &s in &succs[succ_off[v] as usize..succ_off[v + 1] as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        queue.len() == n
    }

    /// Builds the dependency [`Dag`], estimating each task's duration via
    /// `duration_of`.
    pub fn to_dag_with<F: Fn(&TaskSpec) -> f64>(&self, duration_of: F) -> Result<Dag, SpecError> {
        let mut dag = Dag::new(self.name.clone());
        let mut ids = BTreeMap::new();
        for t in &self.tasks {
            let id = dag.add_task(t.name.clone(), t.nodes.max(1), duration_of(t))?;
            ids.insert(t.name.as_str(), id);
        }
        for t in &self.tasks {
            for dep in &t.after {
                let Some(&from) = ids.get(dep.as_str()) else {
                    return Err(SpecError::UnknownDependency {
                        task: t.name.clone(),
                        dependency: dep.clone(),
                    });
                };
                dag.add_dep(from, ids[t.name.as_str()])?;
            }
        }
        dag.validate()?;
        Ok(dag)
    }

    /// Ideal (contention-free, full-peak-channel) duration of a task on
    /// `machine`: the sum of its phase lower bounds. Used for duration
    /// estimates in planning DAGs.
    pub fn ideal_task_duration(task: &TaskSpec, machine: &Machine) -> f64 {
        task.phases
            .iter()
            .map(|p| match p {
                Phase::Compute { flops, efficiency } => {
                    match machine.node_resource(wrm_core::ids::COMPUTE) {
                        Some(r) => {
                            flops / (r.peak_per_node.magnitude() * task.nodes as f64 * efficiency)
                        }
                        None => 0.0,
                    }
                }
                Phase::NodeData {
                    resource,
                    bytes,
                    efficiency,
                } => match machine.node_resource(resource) {
                    Some(r) => {
                        bytes / (r.peak_per_node.magnitude() * task.nodes as f64 * efficiency)
                    }
                    None => 0.0,
                },
                Phase::SystemData {
                    resource,
                    bytes,
                    stream_cap,
                } => match machine.system_resource(resource) {
                    Some(r) => {
                        let agg = r.aggregate_for(task.nodes as f64).get();
                        let rate = stream_cap.unwrap_or(f64::INFINITY).min(agg);
                        if rate > 0.0 {
                            bytes / rate
                        } else {
                            f64::INFINITY
                        }
                    }
                    None => 0.0,
                },
                Phase::Overhead { seconds, .. } => *seconds,
            })
            .sum()
    }

    /// The dependency DAG with ideal durations on `machine`.
    pub fn to_dag(&self, machine: &Machine) -> Result<Dag, SpecError> {
        self.to_dag_with(|t| Self::ideal_task_duration(t, machine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{ids, machines};

    fn lcls_spec() -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("LCLS");
        for i in 0..5 {
            wf = wf.task(
                TaskSpec::new(format!("analyze[{i}]"), 32)
                    .phase(Phase::SystemData {
                        resource: ids::EXTERNAL.into(),
                        bytes: 1e12,
                        stream_cap: Some(1e9),
                    })
                    .phase(Phase::node_data(ids::DRAM, 32e9 * 32.0)),
            );
        }
        let mut merge = TaskSpec::new("merge", 1).phase(Phase::system_data(ids::BURST_BUFFER, 5e9));
        for i in 0..5 {
            merge = merge.after(format!("analyze[{i}]"));
        }
        wf.task(merge)
    }

    #[test]
    fn spec_validates_and_builds_dag() {
        let wf = lcls_spec();
        wf.validate().unwrap();
        let dag = wf.to_dag(&machines::cori_haswell()).unwrap();
        assert_eq!(dag.len(), 6);
        assert_eq!(dag.max_width().unwrap(), 5);
        assert_eq!(dag.critical_path_length().unwrap(), 2);
    }

    #[test]
    fn ideal_duration_accounts_for_stream_caps() {
        let wf = lcls_spec();
        let m = machines::cori_haswell();
        // 1 TB at a 1 GB/s stream cap -> 1000 s, plus 32 GB/node DRAM at
        // 129 GB/s -> ~0.25 s.
        let d = WorkflowSpec::ideal_task_duration(&wf.tasks[0], &m);
        assert!((d - 1000.25).abs() < 0.01, "duration {d}");
    }

    #[test]
    fn unknown_dependency_is_reported() {
        let wf = WorkflowSpec::new("w").task(TaskSpec::new("a", 1).after("ghost"));
        assert!(matches!(
            wf.validate(),
            Err(SpecError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn cycles_and_duplicates_are_reported() {
        let wf = WorkflowSpec::new("w")
            .task(TaskSpec::new("a", 1).after("b"))
            .task(TaskSpec::new("b", 1).after("a"));
        assert!(matches!(wf.validate(), Err(SpecError::Dag(_))));

        let wf = WorkflowSpec::new("w")
            .task(TaskSpec::new("a", 1))
            .task(TaskSpec::new("a", 1));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn phase_validation() {
        assert!(Phase::compute(1e15).validate().is_ok());
        assert!(Phase::Compute {
            flops: 1.0,
            efficiency: 0.0
        }
        .validate()
        .is_err());
        assert!(Phase::Compute {
            flops: f64::NAN,
            efficiency: 1.0
        }
        .validate()
        .is_err());
        assert!(Phase::NodeData {
            resource: "hbm".into(),
            bytes: -1.0,
            efficiency: 1.0
        }
        .validate()
        .is_err());
        assert!(Phase::SystemData {
            resource: "fs".into(),
            bytes: 1.0,
            stream_cap: Some(0.0)
        }
        .validate()
        .is_err());
        assert!(Phase::overhead("x", -2.0).validate().is_err());
        let wf = WorkflowSpec::new("w").task(TaskSpec::new("a", 0));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let wf = lcls_spec();
        let json = serde_json::to_string(&wf).unwrap();
        assert!(
            !json.contains("dists"),
            "empty dist tables must not change the serialized form"
        );
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(wf, back);
    }

    #[test]
    fn dist_validation() {
        let ok = WorkflowSpec::new("w").task(
            TaskSpec::new("a", 1)
                .phase(Phase::overhead("x", 5.0))
                .dist(0, Dist::Uniform { lo: 4.0, hi: 6.0 }),
        );
        ok.validate().unwrap();

        // Distribution index past the phase list.
        let bad_ix = WorkflowSpec::new("w").task(
            TaskSpec::new("a", 1)
                .phase(Phase::overhead("x", 5.0))
                .dist(1, Dist::Uniform { lo: 4.0, hi: 6.0 }),
        );
        assert!(matches!(bad_ix.validate(), Err(SpecError::Invalid(_))));

        // Invalid parameters (negative sigma).
        let bad_params = WorkflowSpec::new("w").task(
            TaskSpec::new("a", 1).phase(Phase::overhead("x", 5.0)).dist(
                0,
                Dist::LogNormal {
                    median: 5.0,
                    sigma: -1.0,
                },
            ),
        );
        assert!(matches!(bad_params.validate(), Err(SpecError::Invalid(_))));

        // Dist tables round-trip through serde.
        let json = serde_json::to_string(&ok).unwrap();
        assert!(json.contains("\"dist\":\"uniform\""), "{json}");
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(ok, back);
    }
}
