//! The discrete-event workflow simulator.
//!
//! Executes a [`WorkflowSpec`] on a [`Machine`] as a fluid-flow
//! simulation: node-local phases run at (efficiency-scaled) peak rates of
//! the task's allocation; shared-system phases become flows on shared
//! channels whose rates are re-solved by max–min fair sharing whenever
//! the flow set changes; a Slurm-like scheduler allocates nodes. The
//! output is a `wrm_trace::Trace` — the same format real measurements
//! would use — so the Workflow Roofline dot of a simulated run is derived
//! exactly like the paper derives its empirical dots.
//!
//! Flow progress is *materialized on rate change*: a flow's remaining
//! byte count is only touched when a fair-share solve assigns it a new
//! rate, at which point its completion time is recomputed once and
//! cached. Between rate changes the completion time is a constant, so it
//! lives in the same calendar heap as fixed-phase ends and the event
//! loop never walks the flow set per event. The payoff is twofold: the
//! per-event cost drops from `O(flows)` to `O(log events)`, and an
//! uncontended flow's end becomes a closed-form spawn-time expression —
//! which is what lets [`crate::fastpath`] replace the whole DES with a
//! longest-path computation *bit-exactly* when a sweep point has no
//! contention.

use crate::calendar::{CalEv, Calendar, CalendarKind};
use crate::channel::{FlowDemand, FlowRate, RateScratch, Sharing};
use crate::index::{BaseIndex, PhaseIx};
use crate::overlay::IndexOverlay;
use crate::spec::{Phase, SpecError, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use wrm_core::Machine;
use wrm_trace::{SpanKind, Trace, TraceSpan};

/// Node-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Strict FIFO: the queue head blocks everything behind it until it
    /// fits.
    #[default]
    Fifo,
    /// FIFO with backfill: ready tasks behind a blocked head may start
    /// when they fit (EASY-style, without reservations).
    Backfill,
}

/// Multiplicative duration noise, for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jitter {
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Relative amplitude in `[0, 1)`: each fixed phase duration is
    /// scaled by a factor drawn uniformly from `[1-a, 1+a]`.
    pub amplitude: f64,
}

/// A persistent competing flow on a shared channel, modelling traffic
/// from *other* workflows sharing the system (the source of the paper's
/// LCLS "bad days"). A background flow never completes: it competes for
/// max-min fair bandwidth up to its rate for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundFlow {
    /// The shared resource it loads.
    pub resource: String,
    /// Its demand ceiling in bytes/s (`f64::INFINITY` = greedy).
    pub rate: f64,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Usable node count (None = the machine's total; a Some caps it,
    /// modelling queue limits).
    pub node_limit: Option<u64>,
    /// Shared-channel discipline.
    #[serde(skip)]
    pub sharing: Sharing,
    /// Per-resource capacity factors (e.g. `{"ext": 0.2}` for the LCLS
    /// bad days). Factors apply to the channel capacity *and* to phase
    /// stream caps on that channel, matching "the achievable rate drops
    /// 5x" as observed end to end.
    pub contention: BTreeMap<String, f64>,
    /// Optional duration noise.
    pub jitter: Option<Jitter>,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Persistent competing flows from other workloads.
    pub background: Vec<BackgroundFlow>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            node_limit: None,
            sharing: Sharing::MaxMin,
            contention: BTreeMap::new(),
            jitter: None,
            scheduler: SchedulerPolicy::Fifo,
            background: Vec::new(),
        }
    }
}

impl SimOptions {
    /// Adds a contention factor for one resource.
    pub fn with_contention(mut self, resource: impl Into<String>, factor: f64) -> Self {
        self.contention.insert(resource.into(), factor);
        self
    }

    /// Adds a persistent background flow competing on `resource`.
    pub fn with_background(mut self, resource: impl Into<String>, rate: f64) -> Self {
        self.background.push(BackgroundFlow {
            resource: resource.into(),
            rate,
        });
        self
    }
}

/// A complete simulation input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The machine model.
    pub machine: Machine,
    /// The workflow to execute.
    pub workflow: WorkflowSpec,
    /// Options.
    pub options: SimOptions,
}

impl Scenario {
    /// Scenario with default options.
    pub fn new(machine: Machine, workflow: WorkflowSpec) -> Self {
        Self {
            machine,
            workflow,
            options: SimOptions::default(),
        }
    }

    /// Sets options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid spec.
    Spec(SpecError),
    /// A task needs more nodes than the usable pool.
    TaskTooLarge {
        /// Task name.
        task: String,
        /// Required nodes.
        needs: u64,
        /// Usable pool size.
        pool: u64,
    },
    /// A phase referenced a resource the machine does not define.
    UnknownResource {
        /// Task name.
        task: String,
        /// Resource id.
        resource: String,
    },
    /// Progress stalled (a flow has zero rate forever, e.g. a channel
    /// with zero effective capacity).
    Stalled {
        /// Simulated time at the stall.
        at: f64,
    },
    /// Invalid option value.
    InvalidOption(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(e) => write!(f, "spec error: {e}"),
            SimError::TaskTooLarge { task, needs, pool } => {
                write!(f, "task {task} needs {needs} nodes, pool has {pool}")
            }
            SimError::UnknownResource { task, resource } => {
                write!(f, "task {task} uses unknown resource {resource}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t={at}"),
            SimError::InvalidOption(m) => write!(f, "invalid option: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The execution trace (spans for every phase).
    pub trace: Trace,
    /// End-to-end makespan in seconds.
    pub makespan: f64,
    /// Wall time per task.
    pub task_times: BTreeMap<String, f64>,
    /// Start time per task (after dependencies and node allocation).
    pub task_starts: BTreeMap<String, f64>,
    /// Nodes held per task (echoed from the spec, for accounting).
    pub task_nodes: BTreeMap<String, u64>,
    /// The usable pool size the run was scheduled against.
    pub pool_nodes: u64,
}

impl SimResult {
    /// Total node-seconds of allocation (`sum of nodes x wall time`):
    /// what an accounting system would charge.
    pub fn node_seconds(&self) -> f64 {
        self.task_times
            .iter()
            .map(|(name, t)| *self.task_nodes.get(name).unwrap_or(&1) as f64 * t)
            .sum()
    }

    /// Allocation-weighted pool utilization over the makespan, in
    /// `[0, 1]` for serialized workloads (can be seen as the fraction of
    /// the pool's node-seconds the workflow held).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.pool_nodes == 0 {
            return 0.0;
        }
        self.node_seconds() / (self.pool_nodes as f64 * self.makespan)
    }
}

pub(crate) const EPS: f64 = 1e-9;

/// Relative time tolerance: activities within a (relative) nanosecond of
/// completion are treated as complete. This guards against float
/// absorption: when `now` is large, a flow's final sliver can need a
/// `dt` below `ulp(now)`, so `now + dt == now` and time cannot advance.
/// Any flow whose true remaining time is under `time_eps(now)` finishes
/// "now" instead; the timing error is at most a relative nanosecond per
/// event.
pub(crate) fn time_eps(now: f64) -> f64 {
    1e-9 * now.max(1.0)
}

/// True when a flow with `remaining` bytes at `rate` bytes/s is done for
/// simulation purposes at time `now`.
pub(crate) fn flow_finished(remaining: f64, rate: f64, now: f64) -> bool {
    remaining <= EPS || remaining <= rate * time_eps(now)
}

/// Position/slot sentinel: not present.
const DEAD: u32 = u32::MAX;

/// Names the summary tail keeps (nearest the end task).
const TAIL_CAP: usize = 32;

/// The running set as a struct of arrays: column `i` of every vector
/// describes the entry at running-vector position `i`, so the hot loops
/// (demand collection, rate updates, stale-event checks) each touch only
/// the one or two arrays they need instead of dragging whole
/// 96-byte entries through the cache. Positions reproduce the reference
/// engine's `Vec<RunningTask>` layout (they shift only via
/// `swap_remove`, mirrored exactly); tokens are stable handles used by
/// the calendar and channel member lists.
///
/// `channel[i] == DEAD` marks a fixed-duration phase (its float columns
/// are unused placeholders); `member_slot[i] == DEAD` marks a flow that
/// never joined its channel (born finished inside a completion scan).
#[derive(Debug, Clone, Default)]
struct RunSoa {
    token: Vec<u32>,
    task: Vec<u32>,
    phase: Vec<u32>,
    phase_start: Vec<f64>,
    channel: Vec<u32>,
    remaining: Vec<f64>,
    cap: Vec<f64>,
    /// Current fair-share rate; `remaining` is exact as of `last_set`
    /// and untouched until the next rate change.
    rate: Vec<f64>,
    last_set: Vec<f64>,
    /// Cached completion time under the current rate (`f64::INFINITY`
    /// while starved). Recomputed only on rate change; the calendar
    /// holds a copy, and an event whose time differs from this field is
    /// stale and skipped.
    end: Vec<f64>,
    member_slot: Vec<u32>,
}

impl RunSoa {
    fn len(&self) -> usize {
        self.token.len()
    }

    fn is_empty(&self) -> bool {
        self.token.is_empty()
    }

    fn clear(&mut self) {
        self.token.clear();
        self.task.clear();
        self.phase.clear();
        self.phase_start.clear();
        self.channel.clear();
        self.remaining.clear();
        self.cap.clear();
        self.rate.clear();
        self.last_set.clear();
        self.end.clear();
        self.member_slot.clear();
    }

    fn push_fixed(&mut self, token: u32, task: u32, phase: u32, start: f64) {
        self.token.push(token);
        self.task.push(task);
        self.phase.push(phase);
        self.phase_start.push(start);
        self.channel.push(DEAD);
        self.remaining.push(0.0);
        self.cap.push(0.0);
        self.rate.push(0.0);
        self.last_set.push(start);
        self.end.push(0.0);
        self.member_slot.push(DEAD);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_flow(
        &mut self,
        token: u32,
        task: u32,
        phase: u32,
        start: f64,
        channel: u32,
        bytes: f64,
        cap: f64,
        end: f64,
        member_slot: u32,
    ) {
        self.token.push(token);
        self.task.push(task);
        self.phase.push(phase);
        self.phase_start.push(start);
        self.channel.push(channel);
        self.remaining.push(bytes);
        self.cap.push(cap);
        self.rate.push(0.0);
        self.last_set.push(start);
        self.end.push(end);
        self.member_slot.push(member_slot);
    }

    fn swap_remove(&mut self, i: usize) {
        self.token.swap_remove(i);
        self.task.swap_remove(i);
        self.phase.swap_remove(i);
        self.phase_start.swap_remove(i);
        self.channel.swap_remove(i);
        self.remaining.swap_remove(i);
        self.cap.swap_remove(i);
        self.rate.swap_remove(i);
        self.last_set.swap_remove(i);
        self.end.swap_remove(i);
        self.member_slot.swap_remove(i);
    }
}

/// A sorted-vec ordered set of positions. The pending-completion set
/// only ever holds the entries finishing at one instant (usually one or
/// two), so binary-search insertion into a flat vec beats a `BTreeSet`
/// — and, unlike one, it keeps its allocation across arena reuses.
#[derive(Debug, Clone, Default)]
struct OrdSet(Vec<u32>);

impl OrdSet {
    fn insert(&mut self, v: u32) {
        if let Err(i) = self.0.binary_search(&v) {
            self.0.insert(i, v);
        }
    }

    fn remove(&mut self, v: u32) -> bool {
        match self.0.binary_search(&v) {
            Ok(i) => {
                self.0.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    fn pop_first(&mut self) -> Option<u32> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.remove(0))
        }
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

/// Streaming aggregates accumulated during a [`RunMode::Summary`] run,
/// replicating exactly what would be derived from the full result:
/// the makespan folds (`Trace::makespan`'s min-start/max-end over spans,
/// in span order), per-channel busy time (maximal member-presence
/// intervals, closed in chronological order), and per-channel byte and
/// flow counts (accumulated at each flow completion, i.e. in trace
/// order).
#[derive(Debug, Clone, Default)]
struct SummaryAcc {
    span_min_start: f64,
    span_max_end: f64,
    n_spans: u64,
    /// Time each channel's member count last became non-zero.
    active_since: Vec<f64>,
    busy: Vec<f64>,
    bytes: Vec<f64>,
    flows: Vec<u64>,
}

impl SummaryAcc {
    fn reset(&mut self, n_channels: usize) {
        self.span_min_start = f64::INFINITY;
        self.span_max_end = 0.0;
        self.n_spans = 0;
        self.active_since.clear();
        self.active_since.resize(n_channels, 0.0);
        self.busy.clear();
        self.busy.resize(n_channels, 0.0);
        self.bytes.clear();
        self.bytes.resize(n_channels, 0.0);
        self.flows.clear();
        self.flows.resize(n_channels, 0);
    }
}

/// Every growable buffer an engine run needs, grouped so a
/// [`SimArena`] can keep them warm between runs: after the first run of
/// a similar size, the event loop performs no heap allocation at all
/// (the fair-share solver included, via the `rates_into` variants).
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineState {
    run: RunSoa,
    /// Token -> current position in `run` ([`DEAD`] once removed).
    pos_of: Vec<u32>,
    /// Completion calendar (bucketed calendar queue, or the heap oracle).
    calendar: Calendar,
    /// Tokens of the flows on each channel (unordered).
    members: Vec<Vec<u32>>,
    /// Channels whose demand set or demand order changed since the last
    /// fair-share solve.
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Ready tasks, popped in task-index order (= the reference's sorted
    /// queue).
    ready: BinaryHeap<Reverse<u32>>,
    /// Tasks unblocked by zero-phase completions mid-scan; examined
    /// after the heap in append order, like the reference's queue tail.
    deferred: VecDeque<u32>,
    /// Backfill scratch: ready tasks that did not fit this scan.
    skipped: Vec<u32>,
    /// Positions of finished-but-unprocessed entries during an event's
    /// completion scan.
    pending: OrdSet,
    dep_count: Vec<u32>,
    starts: Vec<f64>,
    ends: Vec<f64>,
    /// The dependency that released each task (its last-completing
    /// predecessor), [`DEAD`] for roots; walking it back from the
    /// last-finishing task yields the critical-path tail of the summary.
    released_by: Vec<u32>,
    demand_scratch: Vec<FlowDemand>,
    rates_out: Vec<FlowRate>,
    rate_scratch: RateScratch,
    sum: SummaryAcc,
}

impl EngineState {
    /// Re-initializes every buffer for a fresh run, keeping capacity.
    fn reset(&mut self, kind: CalendarKind, base: &BaseIndex, overlay: &IndexOverlay) {
        let n = base.n_tasks();
        let n_channels = overlay.channel_capacity.len();
        self.run.clear();
        self.pos_of.clear();
        self.calendar.reset(kind);
        for m in &mut self.members {
            m.clear();
        }
        self.members.resize_with(n_channels, Vec::new);
        self.dirty.clear();
        self.dirty.resize(n_channels, false);
        self.dirty_list.clear();
        self.ready.clear();
        for (t, &d) in base.dep_count.iter().enumerate() {
            if d == 0 {
                self.ready.push(Reverse(t as u32));
            }
        }
        self.deferred.clear();
        self.skipped.clear();
        self.pending.clear();
        self.dep_count.clear();
        self.dep_count.extend_from_slice(&base.dep_count);
        self.starts.clear();
        self.starts.resize(n, f64::NAN);
        self.ends.clear();
        self.ends.resize(n, f64::NAN);
        self.released_by.clear();
        self.released_by.resize(n, DEAD);
        self.demand_scratch.clear();
        self.rates_out.clear();
        self.sum.reset(n_channels);
    }
}

/// A reusable simulation arena: owns every growable buffer the engine
/// needs, so repeated [`simulate_in`] / [`simulate_summary_in`] calls
/// (sweeps, Monte-Carlo batches) stop allocating once the buffers have
/// grown to the workload's high-water mark. A fresh arena per call is
/// exactly [`simulate`].
#[derive(Debug, Default)]
pub struct SimArena {
    state: EngineState,
}

impl SimArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// What a run materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Full results: a trace span per phase plus per-task maps
    /// ([`SimResult`]).
    #[default]
    Full,
    /// Streaming aggregates only ([`SimSummary`]): O(channels) result
    /// memory and no per-span or per-task materialization — the mode
    /// that lets 1M-task DAGs run in bounded memory.
    Summary,
}

/// Aggregate statistics of a [`RunMode::Summary`] run. Every field is
/// bit-identical to the same statistic derived from the corresponding
/// full [`SimResult`] (enforced by `tests/calendar_props.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// End-to-end makespan in seconds (identical to `Trace::makespan`
    /// of the full run).
    pub makespan: f64,
    /// Number of tasks executed.
    pub n_tasks: usize,
    /// Number of trace spans the full run would have emitted.
    pub n_spans: u64,
    /// The usable pool size the run was scheduled against.
    pub pool_nodes: u64,
    /// Total node-seconds of allocation, folded in task order.
    pub node_seconds: f64,
    /// Per-channel aggregates, in machine declaration order.
    pub channels: Vec<ChannelSummary>,
    /// Length of the dependency chain ending at the last-finishing
    /// task (1 = that task has no released dependency).
    pub critical_tail_len: usize,
    /// The last tasks of that chain (at most 32 names, execution
    /// order, ending at the last-finishing task).
    pub critical_tail: Vec<String>,
}

impl SimSummary {
    /// Allocation-weighted pool utilization over the makespan (the
    /// summary-mode counterpart of `SimResult::utilization`).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.pool_nodes == 0 {
            return 0.0;
        }
        self.node_seconds / (self.pool_nodes as f64 * self.makespan)
    }
}

/// Aggregate flow statistics for one shared channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSummary {
    /// Resource id.
    pub resource: String,
    /// Seconds during which at least one workflow flow was live on the
    /// channel (union of flow-presence intervals).
    pub busy: f64,
    /// Total bytes moved by completed workflow flows.
    pub bytes: f64,
    /// Number of completed workflow flows.
    pub flows: u64,
}

/// Runs the simulation.
pub fn simulate(scenario: &Scenario) -> Result<SimResult, SimError> {
    simulate_in(scenario, &mut SimArena::new())
}

/// [`simulate`] against a reusable [`SimArena`]: bit-identical results,
/// no allocation once the arena is warm.
pub fn simulate_in(scenario: &Scenario, arena: &mut SimArena) -> Result<SimResult, SimError> {
    run_full(scenario, arena, CalendarKind::Buckets)
}

/// [`simulate_in`] against a prebuilt [`BaseIndex`] — the resident
/// server's hot path: an index-cache hit skips spec validation and index
/// compilation entirely and goes straight to overlay construction.
///
/// `base` must have been built from this scenario's `(machine,
/// workflow)` pair (e.g. by [`BaseIndex::build`]); results are undefined
/// (though memory-safe) otherwise. Bit-identical to [`simulate`].
pub fn simulate_with_base(
    scenario: &Scenario,
    base: &BaseIndex,
    arena: &mut SimArena,
) -> Result<SimResult, SimError> {
    let overlay = IndexOverlay::build(base, &scenario.workflow, &scenario.options)?;
    run_point_in(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        base,
        &overlay,
        arena,
    )
}

/// [`simulate_summary_in`] against a prebuilt [`BaseIndex`]; same
/// contract as [`simulate_with_base`]. Bit-identical to
/// [`simulate_summary`].
pub fn simulate_summary_with_base(
    scenario: &Scenario,
    base: &BaseIndex,
    arena: &mut SimArena,
) -> Result<SimSummary, SimError> {
    let overlay = IndexOverlay::build(base, &scenario.workflow, &scenario.options)?;
    let mut engine = Engine::new_in(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        base,
        &overlay,
        std::mem::take(&mut arena.state),
        CalendarKind::Buckets,
        RunMode::Summary,
    );
    let result = match engine.advance() {
        Ok(Outcome::Done) => Ok(engine.take_summary()),
        Ok(Outcome::Paused) => unreachable!("no stop_iter set"),
        Err(e) => Err(e),
    };
    arena.state = engine.recycle();
    result
}

/// [`simulate`] with an explicit calendar implementation — the hook the
/// equivalence oracles use to pin calendar-queue results to the heap's.
pub fn simulate_with_calendar(
    scenario: &Scenario,
    kind: CalendarKind,
) -> Result<SimResult, SimError> {
    run_full(scenario, &mut SimArena::new(), kind)
}

/// Runs the simulation in [`RunMode::Summary`]: streaming aggregates
/// only, O(channels) result memory.
pub fn simulate_summary(scenario: &Scenario) -> Result<SimSummary, SimError> {
    simulate_summary_in(scenario, &mut SimArena::new())
}

/// [`simulate_summary`] against a reusable [`SimArena`].
pub fn simulate_summary_in(
    scenario: &Scenario,
    arena: &mut SimArena,
) -> Result<SimSummary, SimError> {
    let base = BaseIndex::build(&scenario.machine, &scenario.workflow)?;
    let overlay = IndexOverlay::build(&base, &scenario.workflow, &scenario.options)?;
    let mut engine = Engine::new_in(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        &base,
        &overlay,
        std::mem::take(&mut arena.state),
        CalendarKind::Buckets,
        RunMode::Summary,
    );
    let result = match engine.advance() {
        Ok(Outcome::Done) => Ok(engine.take_summary()),
        Ok(Outcome::Paused) => unreachable!("no stop_iter set"),
        Err(e) => Err(e),
    };
    arena.state = engine.recycle();
    result
}

fn run_full(
    scenario: &Scenario,
    arena: &mut SimArena,
    kind: CalendarKind,
) -> Result<SimResult, SimError> {
    let base = BaseIndex::build(&scenario.machine, &scenario.workflow)?;
    let overlay = IndexOverlay::build(&base, &scenario.workflow, &scenario.options)?;
    let mut engine = Engine::new_in(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        &base,
        &overlay,
        std::mem::take(&mut arena.state),
        kind,
        RunMode::Full,
    );
    let result = match engine.advance() {
        Ok(Outcome::Done) => Ok(engine.take_result()),
        Ok(Outcome::Paused) => unreachable!("no stop_iter set"),
        Err(e) => Err(e),
    };
    arena.state = engine.recycle();
    result
}

/// Runs one prebuilt `(base, overlay)` point to completion against a
/// reusable arena — the incremental sweep's cold path. Bit-identical to
/// constructing a fresh [`Engine`] (same default calendar, same mode).
pub(crate) fn run_point_in(
    workflow: &WorkflowSpec,
    machine_name: &str,
    opts: &SimOptions,
    base: &BaseIndex,
    overlay: &IndexOverlay,
    arena: &mut SimArena,
) -> Result<SimResult, SimError> {
    let mut engine = Engine::new_in(
        workflow,
        machine_name,
        opts,
        base,
        overlay,
        std::mem::take(&mut arena.state),
        CalendarKind::default(),
        RunMode::Full,
    );
    let result = match engine.advance() {
        Ok(Outcome::Done) => Ok(engine.take_result()),
        Ok(Outcome::Paused) => unreachable!("no stop_iter set"),
        Err(e) => Err(e),
    };
    arena.state = engine.recycle();
    result
}

/// Outcome of [`Engine::advance`].
pub(crate) enum Outcome {
    /// All tasks completed.
    Done,
    /// Stopped at `stop_iter` with the loop body not yet executed.
    Paused,
}

/// The optimized event loop.
///
/// The behavior contract is *bit-identical* output to
/// [`crate::reference::simulate_reference`]: same makespan, same trace
/// spans in the same order, same task times, down to the last ulp. That
/// pins several design points:
///
/// * fair-share rates depend on demand *order* (progressive filling
///   accumulates `remaining -= cap` in order), and the reference orders
///   demands by running-vector position — so channel member lists are
///   re-sorted by position before solving, and a channel is marked dirty
///   not only when its membership changes but also when a `swap_remove`
///   relocates one of its members (relocation can reorder demands);
/// * flow ends are cached at rate-change time with the reference's exact
///   expression (`now + remaining / rate`), and the reference caches the
///   same value at the same instants — both engines materialize flow
///   progress only when a solve changes a rate;
/// * the reference's completion scan processes finished entries in
///   position order under `swap_remove` reshuffling — emulated with an
///   ordered pending set and a position-relocation rule;
/// * the reference's start scan examines the sorted ready queue first
///   and zero-phase dependents in append order afterwards — emulated
///   with an index-ordered heap (phase A) plus an append-order deque
///   (phase B). Completing a zero-phase task leaves `free` unchanged, so
///   entries skipped by backfill cannot newly fit and the reference's
///   quadratic `qi = 0` rescan is equivalent to continuing the scan —
///   which is what this engine does.
///
/// The engine borrows its immutable inputs (`base`, `overlay`) and is
/// `Clone`, which is what the incremental sweep's delta re-simulation
/// uses: run to a chosen loop iteration ([`Engine::pause_at`]), then
/// clone the paused state per grid point with a different overlay
/// ([`Engine::resume_with`]) and replay only the suffix.
#[derive(Clone)]
pub(crate) struct Engine<'a> {
    workflow: &'a WorkflowSpec,
    opts: &'a SimOptions,
    base: &'a BaseIndex,
    overlay: &'a IndexOverlay,
    rng: Option<StdRng>,
    amplitude: f64,
    mode: RunMode,
    /// Every growable buffer, arena-recyclable (see [`SimArena`]).
    st: EngineState,
    free: u64,
    now: f64,
    done: usize,
    trace: Trace,
    /// Channel whose first member join should be recorded (incremental
    /// sweep: the first loop iteration where a contention factor on this
    /// channel can influence the run).
    watch: Option<u32>,
    /// Loop iteration of the first watched-channel join, if any.
    watch_hit: Option<u64>,
    /// Completed loop-body count (the current body's index).
    iter: u64,
    /// Pause before executing this loop body (checkpointing).
    stop_iter: Option<u64>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        workflow: &'a WorkflowSpec,
        machine_name: &'a str,
        opts: &'a SimOptions,
        base: &'a BaseIndex,
        overlay: &'a IndexOverlay,
    ) -> Self {
        Self::new_in(
            workflow,
            machine_name,
            opts,
            base,
            overlay,
            EngineState::default(),
            CalendarKind::default(),
            RunMode::Full,
        )
    }

    /// [`Engine::new`] over recycled buffers (see [`SimArena`]), with an
    /// explicit calendar implementation and run mode.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_in(
        workflow: &'a WorkflowSpec,
        machine_name: &'a str,
        opts: &'a SimOptions,
        base: &'a BaseIndex,
        overlay: &'a IndexOverlay,
        mut state: EngineState,
        kind: CalendarKind,
        mode: RunMode,
    ) -> Self {
        state.reset(kind, base, overlay);
        Engine {
            workflow,
            opts,
            base,
            overlay,
            rng: opts.jitter.map(|j| StdRng::seed_from_u64(j.seed)),
            amplitude: opts.jitter.map_or(0.0, |j| j.amplitude),
            mode,
            st: state,
            free: overlay.pool_total,
            now: 0.0,
            done: 0,
            trace: Trace::new(workflow.name.clone(), machine_name.to_string()),
            watch: None,
            watch_hit: None,
            iter: 0,
            stop_iter: None,
        }
    }

    /// Releases the engine's buffers for arena reuse.
    pub(crate) fn recycle(self) -> EngineState {
        self.st
    }

    /// Arms the watch: records the first loop iteration at which a flow
    /// joins `channel` (i.e. the first time that channel's capacity or
    /// cap factor can influence the run).
    pub(crate) fn with_watch(mut self, channel: u32) -> Self {
        self.watch = Some(channel);
        self
    }

    /// One multiplicative jitter factor; the draw sequence matches the
    /// reference (one draw per non-zero-phase phase spawn).
    fn jitter(&mut self) -> f64 {
        match self.rng.as_mut() {
            Some(r) => 1.0 + self.amplitude * r.random_range(-1.0..=1.0),
            None => 1.0,
        }
    }

    fn mark_dirty(&mut self, channel: u32) {
        let ch = channel as usize;
        if !self.st.dirty[ch] {
            self.st.dirty[ch] = true;
            self.st.dirty_list.push(channel);
        }
    }

    /// Spawns phase `pi` of task `ti` at the current time. Inside the
    /// completion scan (`in_scan`), a phase that is already finished at
    /// birth (zero duration within tolerance, or a zero-byte flow) goes
    /// straight onto the pending set so it is processed by the same scan,
    /// exactly where the reference's forward sweep would reach it.
    fn spawn(&mut self, ti: u32, pi: u32, jf: f64, in_scan: bool) {
        let slot = (self.base.phase_off[ti as usize] + pi) as usize;
        let token = self.st.pos_of.len() as u32;
        let pos = self.st.run.len() as u32;
        self.st.pos_of.push(pos);
        match self.base.phases[slot] {
            PhaseIx::Fixed { duration } => {
                let end = self.now + duration * jf;
                if in_scan && end <= self.now + time_eps(self.now) {
                    self.st.pending.insert(pos);
                } else {
                    self.st.calendar.push(CalEv { end, token });
                }
                self.st.run.push_fixed(token, ti, pi, self.now);
            }
            PhaseIx::Flow {
                channel,
                bytes,
                alloc_base,
                stream_base,
            } => {
                let f = self.overlay.channel_factor[channel as usize];
                let cap = (alloc_base * f).min(stream_base * f);
                let born_done = flow_finished(bytes, 0.0, self.now);
                let member_slot = if in_scan && born_done {
                    self.st.pending.insert(pos);
                    DEAD
                } else {
                    if self.watch == Some(channel) && self.watch_hit.is_none() {
                        self.watch_hit = Some(self.iter);
                    }
                    let ms = self.st.members[channel as usize].len() as u32;
                    if self.mode == RunMode::Summary && ms == 0 {
                        // Channel going idle -> busy: open an interval.
                        self.st.sum.active_since[channel as usize] = self.now;
                    }
                    self.st.members[channel as usize].push(token);
                    self.mark_dirty(channel);
                    ms
                };
                let end = if born_done {
                    // Born finished but (outside the scan) still a
                    // channel member for one solve round; its completion
                    // is a calendar event at the current time.
                    if !in_scan {
                        self.st.calendar.push(CalEv {
                            end: self.now,
                            token,
                        });
                    }
                    self.now
                } else {
                    f64::INFINITY
                };
                self.st.run.push_flow(
                    token,
                    ti,
                    pi,
                    self.now,
                    channel,
                    bytes,
                    cap,
                    end,
                    member_slot,
                );
            }
        }
    }

    /// Allocates nodes to `ti` and starts it (or completes it instantly
    /// when it has no phases, unblocking dependents into `deferred`).
    fn start_task(&mut self, ti: u32) {
        let t = ti as usize;
        let need = self.base.nodes[t];
        self.free -= need;
        self.st.starts[t] = self.now;
        if self.base.n_phases(t) == 0 {
            // Zero-phase task completes instantly.
            self.st.ends[t] = self.now;
            self.free += need;
            self.done += 1;
            let lo = self.base.dependents_off[t] as usize;
            let hi = self.base.dependents_off[t + 1] as usize;
            for k in lo..hi {
                let d = self.base.dependents[k];
                self.st.dep_count[d as usize] -= 1;
                if self.st.dep_count[d as usize] == 0 {
                    self.st.released_by[d as usize] = ti;
                    self.st.deferred.push_back(d);
                }
            }
        } else {
            let jf = self.jitter();
            self.spawn(ti, 0, jf, false);
        }
    }

    /// Starts ready tasks per policy. Examination order matches the
    /// reference: the sorted ready set first, then tasks unblocked by
    /// zero-phase completions in append order.
    fn start_scan(&mut self) {
        let fifo = self.opts.scheduler == SchedulerPolicy::Fifo;
        let mut blocked = false;
        while let Some(Reverse(ti)) = self.st.ready.pop() {
            if self.base.nodes[ti as usize] <= self.free {
                self.start_task(ti);
            } else if fifo {
                self.st.ready.push(Reverse(ti));
                blocked = true;
                break; // head blocks
            } else {
                self.st.skipped.push(ti); // backfill: try the next
            }
        }
        if !blocked {
            while let Some(ti) = self.st.deferred.pop_front() {
                if self.base.nodes[ti as usize] <= self.free {
                    self.start_task(ti);
                } else if fifo {
                    self.st.deferred.push_front(ti);
                    break;
                } else {
                    self.st.skipped.push(ti);
                }
            }
        }
        // Leftovers wait for the next scan (re-sorted by the heap, as
        // the reference re-sorts its queue).
        while let Some(ti) = self.st.skipped.pop() {
            self.st.ready.push(Reverse(ti));
        }
        while let Some(ti) = self.st.deferred.pop_front() {
            self.st.ready.push(Reverse(ti));
        }
    }

    /// Re-solves fair sharing on channels whose demands changed. Demands
    /// are ordered by running-vector position — the reference's order. A
    /// flow whose rate actually changes has its progress materialized
    /// (`remaining` brought up to date) and its completion time
    /// recomputed and pushed onto the calendar; unchanged rates touch
    /// nothing, so their calendar entries stay valid.
    fn recompute(&mut self) {
        let sharing = self.opts.sharing;
        let now = self.now;
        for di in 0..self.st.dirty_list.len() {
            let ch = self.st.dirty_list[di] as usize;
            self.st.dirty[ch] = false;
            if self.st.members[ch].is_empty() {
                continue;
            }
            self.st.demand_scratch.clear();
            for &tok in &self.st.members[ch] {
                let p = self.st.pos_of[tok as usize] as usize;
                self.st.demand_scratch.push(FlowDemand {
                    id: p,
                    cap: self.st.run.cap[p],
                });
            }
            self.st.demand_scratch.sort_unstable_by_key(|d| d.id);
            let first_bg = self.st.demand_scratch.len();
            for (k, &rate) in self.overlay.background[ch].iter().enumerate() {
                self.st.demand_scratch.push(FlowDemand {
                    id: usize::MAX - k,
                    cap: rate,
                });
            }
            sharing.rates_into(
                self.overlay.channel_capacity[ch],
                &self.st.demand_scratch,
                &mut self.st.rate_scratch,
                &mut self.st.rates_out,
            );
            for k in 0..first_bg {
                let fr = self.st.rates_out[k];
                let i = fr.id;
                if fr.rate != self.st.run.rate[i] {
                    let rem = (self.st.run.remaining[i]
                        - self.st.run.rate[i] * (now - self.st.run.last_set[i]))
                        .max(0.0);
                    self.st.run.remaining[i] = rem;
                    self.st.run.last_set[i] = now;
                    self.st.run.rate[i] = fr.rate;
                    let end = if flow_finished(rem, fr.rate, now) {
                        now
                    } else if fr.rate > 0.0 {
                        now + rem / fr.rate
                    } else {
                        f64::INFINITY
                    };
                    self.st.run.end[i] = end;
                    if end.is_finite() {
                        self.st.calendar.push(CalEv {
                            end,
                            token: self.st.run.token[i],
                        });
                    }
                }
            }
        }
        self.st.dirty_list.clear();
    }

    /// Earliest pending completion: the calendar top, after lazily
    /// discarding events for removed entries and superseded flow ends.
    /// Returns infinity when nothing is scheduled (every live flow is
    /// starved).
    fn next_event(&mut self) -> f64 {
        while let Some(top) = self.st.calendar.peek() {
            let pos = self.st.pos_of[top.token as usize];
            if pos == DEAD {
                self.st.calendar.pop();
                continue;
            }
            let p = pos as usize;
            if self.st.run.channel[p] != DEAD && self.st.run.end[p].total_cmp(&top.end).is_ne() {
                self.st.calendar.pop();
                continue;
            }
            return top.end;
        }
        f64::INFINITY
    }

    /// Pops every activity due at the current time into `pending`,
    /// skipping stale calendar entries.
    fn collect_due(&mut self) {
        let threshold = self.now + time_eps(self.now);
        while let Some(top) = self.st.calendar.peek() {
            // `!(<=)` rather than `>` so a NaN end stops the scan instead
            // of being popped as complete, matching the reference loop.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let not_due = !(top.end <= threshold);
            if not_due {
                break;
            }
            let ev = self.st.calendar.pop().expect("peeked");
            let pos = self.st.pos_of[ev.token as usize];
            if pos == DEAD {
                continue;
            }
            let p = pos as usize;
            if self.st.run.channel[p] != DEAD && self.st.run.end[p].total_cmp(&ev.end).is_ne() {
                continue; // superseded by a later rate change
            }
            self.st.pending.insert(pos);
        }
    }

    /// Processes the pending set in ascending position order, which is
    /// provably the order the reference's forward scan visits finished
    /// entries (`swap_remove` only moves entries from the tail down, so
    /// the scan always reaches the smallest finished position next).
    fn complete_pending(&mut self) {
        while let Some(p) = self.st.pending.pop_first() {
            let i = p as usize;
            // Copy the finished column out before swap_remove overwrites
            // it with the tail entry.
            let token = self.st.run.token[i];
            let task_ix = self.st.run.task[i];
            let phase_ix = self.st.run.phase[i];
            let phase_start = self.st.run.phase_start[i];
            let channel = self.st.run.channel[i];
            let member_slot = self.st.run.member_slot[i];
            self.st.run.swap_remove(i);
            self.st.pos_of[token as usize] = DEAD;
            if i < self.st.run.len() {
                // The old tail entry moved into position i.
                let old_last = self.st.run.len() as u32;
                let moved_token = self.st.run.token[i];
                self.st.pos_of[moved_token as usize] = p;
                if self.st.run.channel[i] != DEAD {
                    // Relocation reorders this channel's demand list.
                    self.mark_dirty(self.st.run.channel[i]);
                }
                if self.st.pending.remove(old_last) {
                    self.st.pending.insert(p);
                }
            }
            if channel != DEAD && member_slot != DEAD {
                let ch = channel as usize;
                let ms = member_slot as usize;
                self.st.members[ch].swap_remove(ms);
                if ms < self.st.members[ch].len() {
                    let tok = self.st.members[ch][ms] as usize;
                    let q = self.st.pos_of[tok] as usize;
                    self.st.run.member_slot[q] = ms as u32;
                }
                self.mark_dirty(channel);
                if self.mode == RunMode::Summary && self.st.members[ch].is_empty() {
                    // Channel going busy -> idle: close the interval.
                    self.st.sum.busy[ch] += self.now - self.st.sum.active_since[ch];
                }
            }

            let t = task_ix as usize;
            match self.mode {
                RunMode::Full => {
                    let task = &self.workflow.tasks[t];
                    let phase = &task.phases[phase_ix as usize];
                    self.trace.push(TraceSpan::new(
                        task.name.clone(),
                        span_kind(phase),
                        phase_start,
                        self.now,
                        task.nodes,
                    ));
                }
                RunMode::Summary => {
                    // The folds `Trace::makespan` would perform over the
                    // span this branch does not emit, plus per-channel
                    // byte/flow accounting.
                    self.st.sum.n_spans += 1;
                    self.st.sum.span_min_start = self.st.sum.span_min_start.min(phase_start);
                    self.st.sum.span_max_end = self.st.sum.span_max_end.max(self.now);
                    if channel != DEAD {
                        let slot = (self.base.phase_off[t] + phase_ix) as usize;
                        if let PhaseIx::Flow { bytes, .. } = self.base.phases[slot] {
                            self.st.sum.bytes[channel as usize] += bytes;
                            self.st.sum.flows[channel as usize] += 1;
                        }
                    }
                }
            }
            let next_phase = phase_ix + 1;
            if next_phase < self.base.n_phases(t) {
                let jf = self.jitter();
                self.spawn(task_ix, next_phase, jf, true);
            } else {
                self.st.ends[t] = self.now;
                self.free += self.base.nodes[t];
                self.done += 1;
                let lo = self.base.dependents_off[t] as usize;
                let hi = self.base.dependents_off[t + 1] as usize;
                for k in lo..hi {
                    let d = self.base.dependents[k];
                    self.st.dep_count[d as usize] -= 1;
                    if self.st.dep_count[d as usize] == 0 {
                        self.st.released_by[d as usize] = task_ix;
                        self.st.ready.push(Reverse(d));
                    }
                }
            }
        }
    }

    /// Runs loop bodies until completion, a stall, or `stop_iter`.
    pub(crate) fn advance(&mut self) -> Result<Outcome, SimError> {
        let n_tasks = self.base.n_tasks();
        loop {
            if self.stop_iter == Some(self.iter) {
                return Ok(Outcome::Paused);
            }
            self.start_scan();
            if self.done == n_tasks {
                return Ok(Outcome::Done);
            }
            if self.st.run.is_empty() {
                // Tasks remain but nothing runs and nothing can start.
                debug_assert!(!self.st.ready.is_empty() || self.done < n_tasks);
                return Err(SimError::Stalled { at: self.now });
            }

            self.recompute();

            let next = self.next_event();
            if !next.is_finite() {
                return Err(SimError::Stalled { at: self.now });
            }
            self.now = next;

            self.collect_due();
            self.complete_pending();
            self.iter += 1;
        }
    }

    /// Materializes the final [`SimResult`] after [`Outcome::Done`],
    /// leaving the engine's buffers recyclable. One name-sorted pass
    /// fills all three key/value streams, then `BTreeMap::from_iter`
    /// bulk-builds each tree from its pre-sorted stream in O(n) —
    /// repeated B-tree inserts in random name order are measurably
    /// slower on sweep-sized results.
    pub(crate) fn take_result(&mut self) -> SimResult {
        let makespan = self.trace.makespan();
        let tasks = &self.workflow.tasks;
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| tasks[a as usize].name.cmp(&tasks[b as usize].name));
        let mut starts_kv = Vec::with_capacity(order.len());
        let mut times_kv = Vec::with_capacity(order.len());
        let mut nodes_kv = Vec::with_capacity(order.len());
        for &i in &order {
            let i = i as usize;
            let name = &tasks[i].name;
            starts_kv.push((name.clone(), self.st.starts[i]));
            times_kv.push((name.clone(), self.st.ends[i] - self.st.starts[i]));
            nodes_kv.push((name.clone(), tasks[i].nodes));
        }
        SimResult {
            trace: std::mem::replace(&mut self.trace, Trace::new(String::new(), String::new())),
            makespan,
            task_times: BTreeMap::from_iter(times_kv),
            task_starts: BTreeMap::from_iter(starts_kv),
            task_nodes: BTreeMap::from_iter(nodes_kv),
            pool_nodes: self.overlay.pool_total,
        }
    }

    /// Materializes the [`SimSummary`] of a [`RunMode::Summary`] run
    /// after [`Outcome::Done`].
    pub(crate) fn take_summary(&mut self) -> SimSummary {
        let sum = &self.st.sum;
        let makespan = if sum.span_min_start.is_finite() {
            sum.span_max_end - sum.span_min_start
        } else {
            0.0
        };
        let n = self.base.n_tasks();
        let mut node_seconds = 0.0;
        for t in 0..n {
            node_seconds += self.base.nodes[t] as f64 * (self.st.ends[t] - self.st.starts[t]);
        }
        let channels = self
            .base
            .channel_ids
            .iter()
            .enumerate()
            .map(|(ci, id)| ChannelSummary {
                resource: id.clone(),
                busy: sum.busy[ci],
                bytes: sum.bytes[ci],
                flows: sum.flows[ci],
            })
            .collect();
        // Critical-path tail: walk released-by links back from the
        // first task attaining the maximum end time.
        let mut critical_tail = Vec::new();
        let mut critical_tail_len = 0;
        if n > 0 {
            let mut best = 0usize;
            for t in 1..n {
                if self.st.ends[t] > self.st.ends[best] {
                    best = t;
                }
            }
            let mut cur = best as u32;
            loop {
                if critical_tail.len() < TAIL_CAP {
                    critical_tail.push(self.workflow.tasks[cur as usize].name.clone());
                }
                critical_tail_len += 1;
                match self.st.released_by[cur as usize] {
                    DEAD => break,
                    prev => cur = prev,
                }
            }
            // The walk goes end -> root; report in execution order.
            critical_tail.reverse();
        }
        SimSummary {
            makespan,
            n_tasks: n,
            n_spans: sum.n_spans,
            pool_nodes: self.overlay.pool_total,
            node_seconds,
            channels,
            critical_tail_len,
            critical_tail,
        }
    }

    /// Runs to completion.
    pub(crate) fn run(mut self) -> Result<SimResult, SimError> {
        match self.advance()? {
            Outcome::Done => Ok(self.take_result()),
            Outcome::Paused => unreachable!("run() is never called with stop_iter set"),
        }
    }

    /// Runs to completion but materializes only the makespan, skipping
    /// [`Engine::take_result`]'s per-task map construction. The value is
    /// identical to `run()?.makespan`; the bracketing oracle calls this
    /// thousands of times per grid, so the maps would dominate.
    pub(crate) fn run_makespan(mut self) -> Result<f64, SimError> {
        match self.advance()? {
            Outcome::Done => Ok(self.trace.makespan()),
            Outcome::Paused => {
                unreachable!("run_makespan() is never called with stop_iter set")
            }
        }
    }

    /// Runs to completion, also reporting the loop iteration of the
    /// first watched-channel join (see [`Engine::with_watch`]).
    pub(crate) fn run_watched(mut self) -> (Result<SimResult, SimError>, Option<u64>) {
        match self.advance() {
            Err(e) => {
                let hit = self.watch_hit;
                (Err(e), hit)
            }
            Ok(_) => {
                let hit = self.watch_hit;
                (Ok(self.take_result()), hit)
            }
        }
    }

    /// Runs loop bodies `0..iter` and pauses, returning the checkpointed
    /// engine. The checkpoint is taken *before* body `iter` executes.
    pub(crate) fn pause_at(mut self, iter: u64) -> Result<Engine<'a>, SimError> {
        self.stop_iter = Some(iter);
        self.advance()?;
        Ok(self)
    }

    /// Clones a paused engine with a different overlay and clears the
    /// pause, ready to replay the suffix. Sound only when the prefix up
    /// to the pause provably does not depend on the parts of the overlay
    /// that differ (the incremental sweep guarantees this via the
    /// watched-channel first-join iteration).
    pub(crate) fn resume_with(&self, overlay: &'a IndexOverlay) -> Engine<'a> {
        let mut e = self.clone();
        e.overlay = overlay;
        e.stop_iter = None;
        e
    }
}

pub(crate) fn span_kind(phase: &Phase) -> SpanKind {
    match phase {
        Phase::Compute { flops, .. } => SpanKind::Compute { flops: *flops },
        Phase::NodeData {
            resource, bytes, ..
        } => SpanKind::NodeData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::SystemData {
            resource, bytes, ..
        } => SpanKind::SystemData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::Overhead { label, .. } => SpanKind::Overhead {
            label: label.clone(),
        },
    }
}
