//! The discrete-event workflow simulator.
//!
//! Executes a [`WorkflowSpec`] on a [`Machine`] as a fluid-flow
//! simulation: node-local phases run at (efficiency-scaled) peak rates of
//! the task's allocation; shared-system phases become flows on shared
//! channels whose rates are re-solved by max–min fair sharing whenever
//! the flow set changes; a Slurm-like scheduler allocates nodes. The
//! output is a `wrm_trace::Trace` — the same format real measurements
//! would use — so the Workflow Roofline dot of a simulated run is derived
//! exactly like the paper derives its empirical dots.

use crate::channel::{FlowDemand, Sharing};
use crate::index::{PhaseIx, ScenarioIndex};
use crate::spec::{Phase, SpecError, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use wrm_core::Machine;
use wrm_trace::{SpanKind, Trace, TraceSpan};

/// Node-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Strict FIFO: the queue head blocks everything behind it until it
    /// fits.
    #[default]
    Fifo,
    /// FIFO with backfill: ready tasks behind a blocked head may start
    /// when they fit (EASY-style, without reservations).
    Backfill,
}

/// Multiplicative duration noise, for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jitter {
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Relative amplitude in `[0, 1)`: each fixed phase duration is
    /// scaled by a factor drawn uniformly from `[1-a, 1+a]`.
    pub amplitude: f64,
}

/// A persistent competing flow on a shared channel, modelling traffic
/// from *other* workflows sharing the system (the source of the paper's
/// LCLS "bad days"). A background flow never completes: it competes for
/// max-min fair bandwidth up to its rate for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundFlow {
    /// The shared resource it loads.
    pub resource: String,
    /// Its demand ceiling in bytes/s (`f64::INFINITY` = greedy).
    pub rate: f64,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Usable node count (None = the machine's total; a Some caps it,
    /// modelling queue limits).
    pub node_limit: Option<u64>,
    /// Shared-channel discipline.
    #[serde(skip)]
    pub sharing: Sharing,
    /// Per-resource capacity factors (e.g. `{"ext": 0.2}` for the LCLS
    /// bad days). Factors apply to the channel capacity *and* to phase
    /// stream caps on that channel, matching "the achievable rate drops
    /// 5x" as observed end to end.
    pub contention: BTreeMap<String, f64>,
    /// Optional duration noise.
    pub jitter: Option<Jitter>,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Persistent competing flows from other workloads.
    pub background: Vec<BackgroundFlow>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            node_limit: None,
            sharing: Sharing::MaxMin,
            contention: BTreeMap::new(),
            jitter: None,
            scheduler: SchedulerPolicy::Fifo,
            background: Vec::new(),
        }
    }
}

impl SimOptions {
    /// Adds a contention factor for one resource.
    pub fn with_contention(mut self, resource: impl Into<String>, factor: f64) -> Self {
        self.contention.insert(resource.into(), factor);
        self
    }

    /// Adds a persistent background flow competing on `resource`.
    pub fn with_background(mut self, resource: impl Into<String>, rate: f64) -> Self {
        self.background.push(BackgroundFlow {
            resource: resource.into(),
            rate,
        });
        self
    }
}

/// A complete simulation input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The machine model.
    pub machine: Machine,
    /// The workflow to execute.
    pub workflow: WorkflowSpec,
    /// Options.
    pub options: SimOptions,
}

impl Scenario {
    /// Scenario with default options.
    pub fn new(machine: Machine, workflow: WorkflowSpec) -> Self {
        Self {
            machine,
            workflow,
            options: SimOptions::default(),
        }
    }

    /// Sets options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid spec.
    Spec(SpecError),
    /// A task needs more nodes than the usable pool.
    TaskTooLarge {
        /// Task name.
        task: String,
        /// Required nodes.
        needs: u64,
        /// Usable pool size.
        pool: u64,
    },
    /// A phase referenced a resource the machine does not define.
    UnknownResource {
        /// Task name.
        task: String,
        /// Resource id.
        resource: String,
    },
    /// Progress stalled (a flow has zero rate forever, e.g. a channel
    /// with zero effective capacity).
    Stalled {
        /// Simulated time at the stall.
        at: f64,
    },
    /// Invalid option value.
    InvalidOption(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(e) => write!(f, "spec error: {e}"),
            SimError::TaskTooLarge { task, needs, pool } => {
                write!(f, "task {task} needs {needs} nodes, pool has {pool}")
            }
            SimError::UnknownResource { task, resource } => {
                write!(f, "task {task} uses unknown resource {resource}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t={at}"),
            SimError::InvalidOption(m) => write!(f, "invalid option: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The execution trace (spans for every phase).
    pub trace: Trace,
    /// End-to-end makespan in seconds.
    pub makespan: f64,
    /// Wall time per task.
    pub task_times: BTreeMap<String, f64>,
    /// Start time per task (after dependencies and node allocation).
    pub task_starts: BTreeMap<String, f64>,
    /// Nodes held per task (echoed from the spec, for accounting).
    pub task_nodes: BTreeMap<String, u64>,
    /// The usable pool size the run was scheduled against.
    pub pool_nodes: u64,
}

impl SimResult {
    /// Total node-seconds of allocation (`sum of nodes x wall time`):
    /// what an accounting system would charge.
    pub fn node_seconds(&self) -> f64 {
        self.task_times
            .iter()
            .map(|(name, t)| *self.task_nodes.get(name).unwrap_or(&1) as f64 * t)
            .sum()
    }

    /// Allocation-weighted pool utilization over the makespan, in
    /// `[0, 1]` for serialized workloads (can be seen as the fraction of
    /// the pool's node-seconds the workflow held).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.pool_nodes == 0 {
            return 0.0;
        }
        self.node_seconds() / (self.pool_nodes as f64 * self.makespan)
    }
}

pub(crate) const EPS: f64 = 1e-9;

/// Relative time tolerance: activities within a (relative) nanosecond of
/// completion are treated as complete. This guards against float
/// absorption: when `now` is large, a flow's final sliver can need a
/// `dt` below `ulp(now)`, so `now + dt == now` and time cannot advance.
/// Any flow whose true remaining time is under `time_eps(now)` finishes
/// "now" instead; the timing error is at most a relative nanosecond per
/// event.
pub(crate) fn time_eps(now: f64) -> f64 {
    1e-9 * now.max(1.0)
}

/// True when a flow with `remaining` bytes at `rate` bytes/s is done for
/// simulation purposes at time `now`.
pub(crate) fn flow_finished(remaining: f64, rate: f64, now: f64) -> bool {
    remaining <= EPS || remaining <= rate * time_eps(now)
}

/// Position/slot sentinel: not present.
const DEAD: u32 = u32::MAX;

/// How a running phase progresses.
#[derive(Debug, Clone, Copy)]
enum EntryKind {
    /// Fixed-duration phase; its end sits in the completion calendar.
    Fixed,
    /// A flow on a shared channel.
    Flow {
        channel: u32,
        remaining: f64,
        cap: f64,
        rate: f64,
        /// Index into `members[channel]`, or [`DEAD`] when the flow was
        /// born finished and never joined the channel.
        member_slot: u32,
    },
}

/// One running phase. Its *position* in the running vector reproduces
/// the reference engine's `Vec<RunningTask>` layout (positions shift
/// only via `swap_remove`, mirrored exactly); its *token* is a stable
/// handle used by the calendar and channel member lists.
#[derive(Debug, Clone, Copy)]
struct RunEntry {
    token: u32,
    task: u32,
    phase: u32,
    phase_start: f64,
    kind: EntryKind,
}

/// A calendar entry: a fixed activity's known completion time. Ordered
/// as a min-heap on `end` (ties broken by token for a total order).
#[derive(Debug, Clone, Copy)]
struct FixedEv {
    end: f64,
    token: u32,
}

impl PartialEq for FixedEv {
    fn eq(&self, other: &Self) -> bool {
        self.token == other.token && self.end.total_cmp(&other.end).is_eq()
    }
}
impl Eq for FixedEv {}
impl PartialOrd for FixedEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FixedEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest end.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.token.cmp(&self.token))
    }
}

/// Runs the simulation.
pub fn simulate(scenario: &Scenario) -> Result<SimResult, SimError> {
    let idx = ScenarioIndex::build(scenario)?;
    Engine::new(scenario, &idx).run()
}

/// The optimized event loop.
///
/// The behavior contract is *bit-identical* output to
/// [`crate::reference::simulate_reference`]: same makespan, same trace
/// spans in the same order, same task times, down to the last ulp. That
/// pins several design points:
///
/// * fair-share rates depend on demand *order* (progressive filling
///   accumulates `remaining -= cap` in order), and the reference orders
///   demands by running-vector position — so channel member lists are
///   re-sorted by position before solving, and a channel is marked dirty
///   not only when its membership changes but also when a `swap_remove`
///   relocates one of its members (relocation can reorder demands);
/// * flow completion times are recomputed per event with the reference's
///   exact expression (`now + remaining / rate`) rather than cached,
///   because a cached ETA differs from the recomputed one in the last
///   ulp; only fixed activities, whose ends are spawn-time constants, go
///   into the calendar heap;
/// * the reference's completion scan processes finished entries in
///   position order under `swap_remove` reshuffling — emulated with an
///   ordered pending set and a position-relocation rule;
/// * the reference's start scan examines the sorted ready queue first
///   and zero-phase dependents in append order afterwards — emulated
///   with an index-ordered heap (phase A) plus an append-order deque
///   (phase B). Completing a zero-phase task leaves `free` unchanged, so
///   entries skipped by backfill cannot newly fit and the reference's
///   quadratic `qi = 0` rescan is equivalent to continuing the scan —
///   which is what this engine does.
struct Engine<'a> {
    scenario: &'a Scenario,
    idx: &'a ScenarioIndex,
    rng: Option<StdRng>,
    amplitude: f64,
    /// Running phases; positions mirror the reference engine exactly.
    running: Vec<RunEntry>,
    /// Token -> current position in `running` ([`DEAD`] once removed).
    pos_of: Vec<u32>,
    /// Min-heap of fixed-activity completion times.
    calendar: BinaryHeap<FixedEv>,
    /// Tokens of the flows on each channel (unordered).
    members: Vec<Vec<u32>>,
    /// Channels whose demand set or demand order changed since the last
    /// fair-share solve.
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Ready tasks, popped in task-index order (= the reference's sorted
    /// queue).
    ready: BinaryHeap<Reverse<u32>>,
    /// Tasks unblocked by zero-phase completions mid-scan; examined
    /// after the heap in append order, like the reference's queue tail.
    deferred: VecDeque<u32>,
    /// Backfill scratch: ready tasks that did not fit this scan.
    skipped: Vec<u32>,
    /// Positions of finished-but-unprocessed entries during an event's
    /// completion scan.
    pending: BTreeSet<u32>,
    dep_count: Vec<u32>,
    free: u64,
    now: f64,
    done: usize,
    trace: Trace,
    starts: Vec<f64>,
    ends: Vec<f64>,
    demand_scratch: Vec<FlowDemand>,
}

impl<'a> Engine<'a> {
    fn new(scenario: &'a Scenario, idx: &'a ScenarioIndex) -> Self {
        let opts = &scenario.options;
        let n = idx.n_tasks();
        let mut ready = BinaryHeap::with_capacity(n);
        for (t, &d) in idx.dep_count.iter().enumerate() {
            if d == 0 {
                ready.push(Reverse(t as u32));
            }
        }
        Engine {
            scenario,
            idx,
            rng: opts.jitter.map(|j| StdRng::seed_from_u64(j.seed)),
            amplitude: opts.jitter.map_or(0.0, |j| j.amplitude),
            running: Vec::new(),
            pos_of: Vec::new(),
            calendar: BinaryHeap::new(),
            members: vec![Vec::new(); idx.channel_capacity.len()],
            dirty: vec![false; idx.channel_capacity.len()],
            dirty_list: Vec::new(),
            ready,
            deferred: VecDeque::new(),
            skipped: Vec::new(),
            pending: BTreeSet::new(),
            dep_count: idx.dep_count.clone(),
            free: idx.pool_total,
            now: 0.0,
            done: 0,
            trace: Trace::new(
                scenario.workflow.name.clone(),
                scenario.machine.name.clone(),
            ),
            starts: vec![f64::NAN; n],
            ends: vec![f64::NAN; n],
            demand_scratch: Vec::new(),
        }
    }

    /// One multiplicative jitter factor; the draw sequence matches the
    /// reference (one draw per non-zero-phase phase spawn).
    fn jitter(&mut self) -> f64 {
        match self.rng.as_mut() {
            Some(r) => 1.0 + self.amplitude * r.random_range(-1.0..=1.0),
            None => 1.0,
        }
    }

    fn mark_dirty(&mut self, channel: u32) {
        let ch = channel as usize;
        if !self.dirty[ch] {
            self.dirty[ch] = true;
            self.dirty_list.push(channel);
        }
    }

    /// Spawns phase `pi` of task `ti` at the current time. Inside the
    /// completion scan (`in_scan`), a phase that is already finished at
    /// birth (zero duration within tolerance, or a zero-byte flow) goes
    /// straight onto the pending set so it is processed by the same scan,
    /// exactly where the reference's forward sweep would reach it.
    fn spawn(&mut self, ti: u32, pi: u32, jf: f64, in_scan: bool) {
        let slot = (self.idx.phase_off[ti as usize] + pi) as usize;
        let token = self.pos_of.len() as u32;
        let pos = self.running.len() as u32;
        self.pos_of.push(pos);
        let kind = match self.idx.phases[slot] {
            PhaseIx::Fixed { duration } => {
                let end = self.now + duration * jf;
                if in_scan && end <= self.now + time_eps(self.now) {
                    self.pending.insert(pos);
                } else {
                    self.calendar.push(FixedEv { end, token });
                }
                EntryKind::Fixed
            }
            PhaseIx::Flow {
                channel,
                bytes,
                cap,
            } => {
                let member_slot = if in_scan && flow_finished(bytes, 0.0, self.now) {
                    self.pending.insert(pos);
                    DEAD
                } else {
                    let ms = self.members[channel as usize].len() as u32;
                    self.members[channel as usize].push(token);
                    self.mark_dirty(channel);
                    ms
                };
                EntryKind::Flow {
                    channel,
                    remaining: bytes,
                    cap,
                    rate: 0.0,
                    member_slot,
                }
            }
        };
        self.running.push(RunEntry {
            token,
            task: ti,
            phase: pi,
            phase_start: self.now,
            kind,
        });
    }

    /// Allocates nodes to `ti` and starts it (or completes it instantly
    /// when it has no phases, unblocking dependents into `deferred`).
    fn start_task(&mut self, ti: u32) {
        let t = ti as usize;
        let need = self.idx.nodes[t];
        self.free -= need;
        self.starts[t] = self.now;
        if self.idx.n_phases(t) == 0 {
            // Zero-phase task completes instantly.
            self.ends[t] = self.now;
            self.free += need;
            self.done += 1;
            let lo = self.idx.dependents_off[t] as usize;
            let hi = self.idx.dependents_off[t + 1] as usize;
            for k in lo..hi {
                let d = self.idx.dependents[k];
                self.dep_count[d as usize] -= 1;
                if self.dep_count[d as usize] == 0 {
                    self.deferred.push_back(d);
                }
            }
        } else {
            let jf = self.jitter();
            self.spawn(ti, 0, jf, false);
        }
    }

    /// Starts ready tasks per policy. Examination order matches the
    /// reference: the sorted ready set first, then tasks unblocked by
    /// zero-phase completions in append order.
    fn start_scan(&mut self) {
        let fifo = self.scenario.options.scheduler == SchedulerPolicy::Fifo;
        let mut blocked = false;
        while let Some(Reverse(ti)) = self.ready.pop() {
            if self.idx.nodes[ti as usize] <= self.free {
                self.start_task(ti);
            } else if fifo {
                self.ready.push(Reverse(ti));
                blocked = true;
                break; // head blocks
            } else {
                self.skipped.push(ti); // backfill: try the next
            }
        }
        if !blocked {
            while let Some(ti) = self.deferred.pop_front() {
                if self.idx.nodes[ti as usize] <= self.free {
                    self.start_task(ti);
                } else if fifo {
                    self.deferred.push_front(ti);
                    break;
                } else {
                    self.skipped.push(ti);
                }
            }
        }
        // Leftovers wait for the next scan (re-sorted by the heap, as
        // the reference re-sorts its queue).
        while let Some(ti) = self.skipped.pop() {
            self.ready.push(Reverse(ti));
        }
        while let Some(ti) = self.deferred.pop_front() {
            self.ready.push(Reverse(ti));
        }
    }

    /// Re-solves fair sharing on channels whose demands changed. Demands
    /// are ordered by running-vector position — the reference's order.
    fn recompute(&mut self) {
        let sharing = self.scenario.options.sharing;
        for di in 0..self.dirty_list.len() {
            let ch = self.dirty_list[di] as usize;
            self.dirty[ch] = false;
            if self.members[ch].is_empty() {
                continue;
            }
            self.demand_scratch.clear();
            for &tok in &self.members[ch] {
                let p = self.pos_of[tok as usize] as usize;
                if let EntryKind::Flow { cap, .. } = self.running[p].kind {
                    self.demand_scratch.push(FlowDemand { id: p, cap });
                }
            }
            self.demand_scratch.sort_unstable_by_key(|d| d.id);
            let first_bg = self.demand_scratch.len();
            for (k, &rate) in self.idx.background[ch].iter().enumerate() {
                self.demand_scratch.push(FlowDemand {
                    id: usize::MAX - k,
                    cap: rate,
                });
            }
            let rates = sharing.rates(self.idx.channel_capacity[ch], &self.demand_scratch);
            for fr in rates.into_iter().take(first_bg) {
                if let EntryKind::Flow { rate, .. } = &mut self.running[fr.id].kind {
                    *rate = fr.rate;
                }
            }
        }
        self.dirty_list.clear();
    }

    /// Earliest completion among running activities: the calendar top
    /// for fixed phases, the reference's exact per-flow expression for
    /// flows (`f64::min` over the same value set as the reference's
    /// whole-vector fold).
    fn next_event(&self) -> f64 {
        let mut next = f64::INFINITY;
        if let Some(top) = self.calendar.peek() {
            next = next.min(top.end);
        }
        for ms in &self.members {
            for &tok in ms {
                let p = self.pos_of[tok as usize] as usize;
                if let EntryKind::Flow {
                    remaining, rate, ..
                } = self.running[p].kind
                {
                    let t = if flow_finished(remaining, rate, self.now) {
                        self.now
                    } else if rate > 0.0 {
                        self.now + remaining / rate
                    } else {
                        f64::INFINITY
                    };
                    next = next.min(t);
                }
            }
        }
        next
    }

    /// Advances every flow by `dt` and queues the finished ones.
    fn advance_flows(&mut self, dt: f64) {
        for ci in 0..self.members.len() {
            for mi in 0..self.members[ci].len() {
                let tok = self.members[ci][mi];
                let p = self.pos_of[tok as usize];
                if let EntryKind::Flow {
                    remaining, rate, ..
                } = &mut self.running[p as usize].kind
                {
                    *remaining = (*remaining - *rate * dt).max(0.0);
                    if flow_finished(*remaining, *rate, self.now) {
                        self.pending.insert(p);
                    }
                }
            }
        }
    }

    /// Pops every fixed activity due at the current time into `pending`.
    fn collect_due_fixed(&mut self) {
        let threshold = self.now + time_eps(self.now);
        while let Some(top) = self.calendar.peek() {
            // `!(<=)` rather than `>` so a NaN end stops the scan instead
            // of being popped as complete, matching the reference loop.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let not_due = !(top.end <= threshold);
            if not_due {
                break;
            }
            let ev = self.calendar.pop().expect("peeked");
            self.pending.insert(self.pos_of[ev.token as usize]);
        }
    }

    /// Processes the pending set in ascending position order, which is
    /// provably the order the reference's forward scan visits finished
    /// entries (`swap_remove` only moves entries from the tail down, so
    /// the scan always reaches the smallest finished position next).
    fn complete_pending(&mut self) {
        while let Some(p) = self.pending.pop_first() {
            let i = p as usize;
            let entry = self.running.swap_remove(i);
            self.pos_of[entry.token as usize] = DEAD;
            if i < self.running.len() {
                // The old tail entry moved into position i.
                let old_last = self.running.len() as u32;
                let moved = self.running[i];
                self.pos_of[moved.token as usize] = p;
                if let EntryKind::Flow { channel, .. } = moved.kind {
                    // Relocation reorders this channel's demand list.
                    self.mark_dirty(channel);
                }
                if self.pending.remove(&old_last) {
                    self.pending.insert(p);
                }
            }
            if let EntryKind::Flow {
                channel,
                member_slot,
                ..
            } = entry.kind
            {
                if member_slot != DEAD {
                    let ch = channel as usize;
                    let ms = member_slot as usize;
                    self.members[ch].swap_remove(ms);
                    if ms < self.members[ch].len() {
                        let tok = self.members[ch][ms] as usize;
                        let q = self.pos_of[tok] as usize;
                        if let EntryKind::Flow { member_slot, .. } = &mut self.running[q].kind {
                            *member_slot = ms as u32;
                        }
                    }
                    self.mark_dirty(channel);
                }
            }

            let t = entry.task as usize;
            let task = &self.scenario.workflow.tasks[t];
            let phase = &task.phases[entry.phase as usize];
            self.trace.push(TraceSpan::new(
                task.name.clone(),
                span_kind(phase),
                entry.phase_start,
                self.now,
                task.nodes,
            ));
            let next_phase = entry.phase + 1;
            if (next_phase as usize) < task.phases.len() {
                let jf = self.jitter();
                self.spawn(entry.task, next_phase, jf, true);
            } else {
                self.ends[t] = self.now;
                self.free += task.nodes;
                self.done += 1;
                let lo = self.idx.dependents_off[t] as usize;
                let hi = self.idx.dependents_off[t + 1] as usize;
                for k in lo..hi {
                    let d = self.idx.dependents[k];
                    self.dep_count[d as usize] -= 1;
                    if self.dep_count[d as usize] == 0 {
                        self.ready.push(Reverse(d));
                    }
                }
            }
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let n_tasks = self.idx.n_tasks();
        loop {
            self.start_scan();
            if self.done == n_tasks {
                break;
            }
            if self.running.is_empty() {
                // Tasks remain but nothing runs and nothing can start.
                debug_assert!(!self.ready.is_empty() || self.done < n_tasks);
                return Err(SimError::Stalled { at: self.now });
            }

            self.recompute();

            let next = self.next_event();
            if !next.is_finite() {
                return Err(SimError::Stalled { at: self.now });
            }
            let dt = (next - self.now).max(0.0);
            self.now = next;

            self.advance_flows(dt);
            self.collect_due_fixed();
            self.complete_pending();
        }

        let makespan = self.trace.makespan();
        let tasks = &self.scenario.workflow.tasks;
        let mut task_starts = BTreeMap::new();
        let mut task_ends = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            task_starts.insert(t.name.clone(), self.starts[i]);
            task_ends.insert(t.name.clone(), self.ends[i]);
        }
        let task_times = task_starts
            .iter()
            .filter_map(|(name, start): (&String, &f64)| {
                task_ends.get(name).map(|end| (name.clone(), end - start))
            })
            .collect();
        let task_nodes = tasks.iter().map(|t| (t.name.clone(), t.nodes)).collect();
        Ok(SimResult {
            trace: self.trace,
            makespan,
            task_times,
            task_starts,
            task_nodes,
            pool_nodes: self.idx.pool_total,
        })
    }
}

pub(crate) fn span_kind(phase: &Phase) -> SpanKind {
    match phase {
        Phase::Compute { flops, .. } => SpanKind::Compute { flops: *flops },
        Phase::NodeData {
            resource, bytes, ..
        } => SpanKind::NodeData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::SystemData {
            resource, bytes, ..
        } => SpanKind::SystemData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::Overhead { label, .. } => SpanKind::Overhead {
            label: label.clone(),
        },
    }
}
