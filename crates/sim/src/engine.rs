//! The discrete-event workflow simulator.
//!
//! Executes a [`WorkflowSpec`] on a [`Machine`] as a fluid-flow
//! simulation: node-local phases run at (efficiency-scaled) peak rates of
//! the task's allocation; shared-system phases become flows on shared
//! channels whose rates are re-solved by max–min fair sharing whenever
//! the flow set changes; a Slurm-like scheduler allocates nodes. The
//! output is a `wrm_trace::Trace` — the same format real measurements
//! would use — so the Workflow Roofline dot of a simulated run is derived
//! exactly like the paper derives its empirical dots.

use crate::channel::{FlowDemand, Sharing};
use crate::spec::{Phase, SpecError, TaskSpec, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use wrm_core::{Machine, SystemScaling};
use wrm_trace::{SpanKind, Trace, TraceSpan};

/// Node-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Strict FIFO: the queue head blocks everything behind it until it
    /// fits.
    #[default]
    Fifo,
    /// FIFO with backfill: ready tasks behind a blocked head may start
    /// when they fit (EASY-style, without reservations).
    Backfill,
}

/// Multiplicative duration noise, for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jitter {
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Relative amplitude in `[0, 1)`: each fixed phase duration is
    /// scaled by a factor drawn uniformly from `[1-a, 1+a]`.
    pub amplitude: f64,
}

/// A persistent competing flow on a shared channel, modelling traffic
/// from *other* workflows sharing the system (the source of the paper's
/// LCLS "bad days"). A background flow never completes: it competes for
/// max-min fair bandwidth up to its rate for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundFlow {
    /// The shared resource it loads.
    pub resource: String,
    /// Its demand ceiling in bytes/s (`f64::INFINITY` = greedy).
    pub rate: f64,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Usable node count (None = the machine's total; a Some caps it,
    /// modelling queue limits).
    pub node_limit: Option<u64>,
    /// Shared-channel discipline.
    #[serde(skip)]
    pub sharing: Sharing,
    /// Per-resource capacity factors (e.g. `{"ext": 0.2}` for the LCLS
    /// bad days). Factors apply to the channel capacity *and* to phase
    /// stream caps on that channel, matching "the achievable rate drops
    /// 5x" as observed end to end.
    pub contention: BTreeMap<String, f64>,
    /// Optional duration noise.
    pub jitter: Option<Jitter>,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Persistent competing flows from other workloads.
    pub background: Vec<BackgroundFlow>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            node_limit: None,
            sharing: Sharing::MaxMin,
            contention: BTreeMap::new(),
            jitter: None,
            scheduler: SchedulerPolicy::Fifo,
            background: Vec::new(),
        }
    }
}

impl SimOptions {
    /// Adds a contention factor for one resource.
    pub fn with_contention(mut self, resource: impl Into<String>, factor: f64) -> Self {
        self.contention.insert(resource.into(), factor);
        self
    }

    /// Adds a persistent background flow competing on `resource`.
    pub fn with_background(mut self, resource: impl Into<String>, rate: f64) -> Self {
        self.background.push(BackgroundFlow {
            resource: resource.into(),
            rate,
        });
        self
    }
}

/// A complete simulation input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The machine model.
    pub machine: Machine,
    /// The workflow to execute.
    pub workflow: WorkflowSpec,
    /// Options.
    pub options: SimOptions,
}

impl Scenario {
    /// Scenario with default options.
    pub fn new(machine: Machine, workflow: WorkflowSpec) -> Self {
        Self {
            machine,
            workflow,
            options: SimOptions::default(),
        }
    }

    /// Sets options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid spec.
    Spec(SpecError),
    /// A task needs more nodes than the usable pool.
    TaskTooLarge {
        /// Task name.
        task: String,
        /// Required nodes.
        needs: u64,
        /// Usable pool size.
        pool: u64,
    },
    /// A phase referenced a resource the machine does not define.
    UnknownResource {
        /// Task name.
        task: String,
        /// Resource id.
        resource: String,
    },
    /// Progress stalled (a flow has zero rate forever, e.g. a channel
    /// with zero effective capacity).
    Stalled {
        /// Simulated time at the stall.
        at: f64,
    },
    /// Invalid option value.
    InvalidOption(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(e) => write!(f, "spec error: {e}"),
            SimError::TaskTooLarge { task, needs, pool } => {
                write!(f, "task {task} needs {needs} nodes, pool has {pool}")
            }
            SimError::UnknownResource { task, resource } => {
                write!(f, "task {task} uses unknown resource {resource}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t={at}"),
            SimError::InvalidOption(m) => write!(f, "invalid option: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The execution trace (spans for every phase).
    pub trace: Trace,
    /// End-to-end makespan in seconds.
    pub makespan: f64,
    /// Wall time per task.
    pub task_times: BTreeMap<String, f64>,
    /// Start time per task (after dependencies and node allocation).
    pub task_starts: BTreeMap<String, f64>,
    /// Nodes held per task (echoed from the spec, for accounting).
    pub task_nodes: BTreeMap<String, u64>,
    /// The usable pool size the run was scheduled against.
    pub pool_nodes: u64,
}

impl SimResult {
    /// Total node-seconds of allocation (`sum of nodes x wall time`):
    /// what an accounting system would charge.
    pub fn node_seconds(&self) -> f64 {
        self.task_times
            .iter()
            .map(|(name, t)| *self.task_nodes.get(name).unwrap_or(&1) as f64 * t)
            .sum()
    }

    /// Allocation-weighted pool utilization over the makespan, in
    /// `[0, 1]` for serialized workloads (can be seen as the fraction of
    /// the pool's node-seconds the workflow held).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.pool_nodes == 0 {
            return 0.0;
        }
        self.node_seconds() / (self.pool_nodes as f64 * self.makespan)
    }
}

enum Activity {
    /// Fixed-duration phase: ends at a known time.
    Fixed { end: f64 },
    /// A flow on a shared channel.
    Flow {
        channel: usize,
        remaining: f64,
        cap: f64,
        rate: f64,
    },
}

struct RunningTask {
    spec_idx: usize,
    phase_idx: usize,
    phase_start: f64,
    activity: Activity,
}

struct Channel {
    capacity: f64,
}

const EPS: f64 = 1e-9;

/// Relative time tolerance: activities within a (relative) nanosecond of
/// completion are treated as complete. This guards against float
/// absorption: when `now` is large, a flow's final sliver can need a
/// `dt` below `ulp(now)`, so `now + dt == now` and time cannot advance.
/// Any flow whose true remaining time is under `time_eps(now)` finishes
/// "now" instead; the timing error is at most a relative nanosecond per
/// event.
fn time_eps(now: f64) -> f64 {
    1e-9 * now.max(1.0)
}

/// True when a flow with `remaining` bytes at `rate` bytes/s is done for
/// simulation purposes at time `now`.
fn flow_finished(remaining: f64, rate: f64, now: f64) -> bool {
    remaining <= EPS || remaining <= rate * time_eps(now)
}

/// Runs the simulation.
pub fn simulate(scenario: &Scenario) -> Result<SimResult, SimError> {
    scenario.workflow.validate()?;
    let machine = &scenario.machine;
    let opts = &scenario.options;
    for (res, f) in &opts.contention {
        if !(f.is_finite() && *f > 0.0) {
            return Err(SimError::InvalidOption(format!(
                "contention factor for {res} must be positive, got {f}"
            )));
        }
    }
    if let Some(j) = &opts.jitter {
        if !(j.amplitude.is_finite() && (0.0..1.0).contains(&j.amplitude)) {
            return Err(SimError::InvalidOption(format!(
                "jitter amplitude must be in [0,1), got {}",
                j.amplitude
            )));
        }
    }
    for bg in &opts.background {
        if bg.rate.is_nan() || bg.rate <= 0.0 {
            return Err(SimError::InvalidOption(format!(
                "background flow on {} must have a positive rate, got {}",
                bg.resource, bg.rate
            )));
        }
        if machine.system_resource(&bg.resource).is_none() {
            return Err(SimError::UnknownResource {
                task: "<background>".into(),
                resource: bg.resource.clone(),
            });
        }
    }

    let pool_total = opts
        .node_limit
        .unwrap_or(machine.total_nodes)
        .min(machine.total_nodes);
    let tasks = &scenario.workflow.tasks;
    for t in tasks {
        if t.nodes > pool_total {
            return Err(SimError::TaskTooLarge {
                task: t.name.clone(),
                needs: t.nodes,
                pool: pool_total,
            });
        }
        // Resolve every referenced resource up front.
        for p in &t.phases {
            match p {
                Phase::Compute { .. } => {
                    if machine.node_resource(wrm_core::ids::COMPUTE).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: wrm_core::ids::COMPUTE.into(),
                        });
                    }
                }
                Phase::NodeData { resource, .. } => {
                    if machine.node_resource(resource).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: resource.clone(),
                        });
                    }
                }
                Phase::SystemData { resource, .. } => {
                    if machine.system_resource(resource).is_none() {
                        return Err(SimError::UnknownResource {
                            task: t.name.clone(),
                            resource: resource.clone(),
                        });
                    }
                }
                Phase::Overhead { .. } => {}
            }
        }
    }

    // Channels: one per system resource the machine defines.
    let mut channels: Vec<Channel> = Vec::new();
    let mut channel_idx: BTreeMap<String, usize> = BTreeMap::new();
    for sr in &machine.system_resources {
        let factor = opts.contention.get(sr.id.as_str()).copied().unwrap_or(1.0);
        let capacity = match sr.scaling {
            SystemScaling::Aggregate => sr.peak.get() * factor,
            // The interconnect's backbone: every node can inject at once.
            SystemScaling::PerNodeInUse => sr.peak.get() * machine.total_nodes as f64 * factor,
        };
        channel_idx.insert(sr.id.to_string(), channels.len());
        channels.push(Channel { capacity });
    }

    let mut rng = opts.jitter.map(|j| StdRng::seed_from_u64(j.seed));
    let amplitude = opts.jitter.map_or(0.0, |j| j.amplitude);
    let mut jitter_factor = move || -> f64 {
        match rng.as_mut() {
            Some(r) => 1.0 + amplitude * r.random_range(-1.0..=1.0),
            None => 1.0,
        }
    };

    // Fixed-phase duration for a task on this machine.
    let fixed_duration = |task: &TaskSpec, phase: &Phase| -> Option<f64> {
        match phase {
            Phase::Compute { flops, efficiency } => {
                let peak = machine
                    .node_resource(wrm_core::ids::COMPUTE)
                    .expect("checked above")
                    .peak_per_node
                    .magnitude();
                Some(flops / (peak * task.nodes as f64 * efficiency))
            }
            Phase::NodeData {
                resource,
                bytes,
                efficiency,
            } => {
                let peak = machine
                    .node_resource(resource)
                    .expect("checked above")
                    .peak_per_node
                    .magnitude();
                Some(bytes / (peak * task.nodes as f64 * efficiency))
            }
            Phase::Overhead { seconds, .. } => Some(*seconds),
            Phase::SystemData { .. } => None,
        }
    };

    // Dependency bookkeeping.
    let name_to_idx: BTreeMap<&str, usize> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.as_str(), i))
        .collect();
    let mut remaining_deps: Vec<usize> = tasks.iter().map(|t| t.after.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    for (i, t) in tasks.iter().enumerate() {
        for dep in &t.after {
            dependents[name_to_idx[dep.as_str()]].push(i);
        }
    }

    let mut queue: Vec<usize> = (0..tasks.len())
        .filter(|&i| remaining_deps[i] == 0)
        .collect();
    let mut running: Vec<RunningTask> = Vec::new();
    let mut free = pool_total;
    let mut now = 0.0f64;
    let mut done = 0usize;
    let mut trace = Trace::new(scenario.workflow.name.clone(), machine.name.clone());
    let mut task_starts: BTreeMap<String, f64> = BTreeMap::new();
    let mut task_ends: BTreeMap<String, f64> = BTreeMap::new();

    // Begins a task's phase `phase_idx` at time `at`, producing the
    // Activity.
    let make_activity = |task: &TaskSpec, phase_idx: usize, jf: f64, at: f64| -> Activity {
        let phase = &task.phases[phase_idx];
        match phase {
            Phase::SystemData {
                resource,
                bytes,
                stream_cap,
            } => {
                let sr = machine.system_resource(resource).expect("checked");
                let factor = opts
                    .contention
                    .get(resource.as_str())
                    .copied()
                    .unwrap_or(1.0);
                // The task's own injection limit: for per-node-scaled
                // resources it is its allocation's aggregate NIC rate.
                let alloc_cap = match sr.scaling {
                    SystemScaling::Aggregate => f64::INFINITY,
                    SystemScaling::PerNodeInUse => sr.peak.get() * task.nodes as f64 * factor,
                };
                let stream = stream_cap.unwrap_or(f64::INFINITY) * factor;
                Activity::Flow {
                    channel: channel_idx[resource.as_str()],
                    remaining: *bytes,
                    cap: alloc_cap.min(stream),
                    rate: 0.0,
                }
            }
            _ => Activity::Fixed {
                end: at + fixed_duration(task, phase).expect("fixed phase") * jf,
            },
        }
    };

    // Background demands per channel (persistent pseudo-flows with ids
    // past the running-task range).
    let mut background_per_channel: Vec<Vec<f64>> = vec![Vec::new(); channels.len()];
    for bg in &opts.background {
        background_per_channel[channel_idx[bg.resource.as_str()]].push(bg.rate);
    }

    // Recomputes all flow rates per channel.
    let recompute = |running: &mut [RunningTask], channels: &[Channel], sharing: Sharing| {
        for (ci, ch) in channels.iter().enumerate() {
            let mut demands: Vec<FlowDemand> = running
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match &r.activity {
                    Activity::Flow { channel, cap, .. } if *channel == ci => {
                        Some(FlowDemand { id: i, cap: *cap })
                    }
                    _ => None,
                })
                .collect();
            if demands.is_empty() {
                continue;
            }
            let first_bg = demands.len();
            for (k, &rate) in background_per_channel[ci].iter().enumerate() {
                demands.push(FlowDemand {
                    id: usize::MAX - k,
                    cap: rate,
                });
            }
            let rates = sharing.rates(ch.capacity, &demands);
            for fr in rates.into_iter().take(first_bg) {
                if let Activity::Flow { rate, .. } = &mut running[fr.id].activity {
                    *rate = fr.rate;
                }
            }
        }
    };

    loop {
        // Start ready tasks per policy.
        queue.sort_unstable();
        let mut qi = 0;
        while qi < queue.len() {
            let ti = queue[qi];
            let need = tasks[ti].nodes;
            if need <= free {
                free -= need;
                queue.remove(qi);
                task_starts.insert(tasks[ti].name.clone(), now);
                if tasks[ti].phases.is_empty() {
                    // Zero-phase task completes instantly.
                    task_ends.insert(tasks[ti].name.clone(), now);
                    free += need;
                    done += 1;
                    for &d in &dependents[ti] {
                        remaining_deps[d] -= 1;
                        if remaining_deps[d] == 0 {
                            queue.push(d);
                        }
                    }
                    // Restart the scan: new tasks may be ready.
                    qi = 0;
                    continue;
                }
                let jf = jitter_factor();
                running.push(RunningTask {
                    spec_idx: ti,
                    phase_idx: 0,
                    phase_start: now,
                    activity: make_activity(&tasks[ti], 0, jf, now),
                });
            } else if opts.scheduler == SchedulerPolicy::Fifo {
                break; // head blocks
            } else {
                qi += 1; // backfill: try the next
            }
        }
        if done == tasks.len() {
            break;
        }
        if running.is_empty() {
            // Tasks remain but nothing runs and nothing can start.
            debug_assert!(!queue.is_empty() || done < tasks.len());
            return Err(SimError::Stalled { at: now });
        }

        recompute(&mut running, &channels, opts.sharing);

        // Earliest completion among running activities.
        let mut next = f64::INFINITY;
        for r in &running {
            let t = match &r.activity {
                Activity::Fixed { end } => *end,
                Activity::Flow {
                    remaining, rate, ..
                } => {
                    if flow_finished(*remaining, *rate, now) {
                        now
                    } else if *rate > 0.0 {
                        now + remaining / rate
                    } else {
                        f64::INFINITY
                    }
                }
            };
            next = next.min(t);
        }
        if !next.is_finite() {
            return Err(SimError::Stalled { at: now });
        }
        let dt = (next - now).max(0.0);
        now = next;

        // Advance flows.
        for r in &mut running {
            if let Activity::Flow {
                remaining, rate, ..
            } = &mut r.activity
            {
                *remaining = (*remaining - *rate * dt).max(0.0);
            }
        }

        // Complete activities that finished (within EPS).
        let mut i = 0;
        while i < running.len() {
            let finished = match &running[i].activity {
                Activity::Fixed { end } => *end <= now + time_eps(now),
                Activity::Flow {
                    remaining, rate, ..
                } => flow_finished(*remaining, *rate, now),
            };
            if !finished {
                i += 1;
                continue;
            }
            let r = running.swap_remove(i);
            let task = &tasks[r.spec_idx];
            let phase = &task.phases[r.phase_idx];
            trace.push(TraceSpan::new(
                task.name.clone(),
                span_kind(phase),
                r.phase_start,
                now,
                task.nodes,
            ));
            let next_phase = r.phase_idx + 1;
            if next_phase < task.phases.len() {
                let jf = jitter_factor();
                running.push(RunningTask {
                    spec_idx: r.spec_idx,
                    phase_idx: next_phase,
                    phase_start: now,
                    activity: make_activity(task, next_phase, jf, now),
                });
                // The pushed activity lands at the end; do not advance i
                // past the element swapped into position i.
            } else {
                task_ends.insert(task.name.clone(), now);
                free += task.nodes;
                done += 1;
                for &d in &dependents[r.spec_idx] {
                    remaining_deps[d] -= 1;
                    if remaining_deps[d] == 0 {
                        queue.push(d);
                    }
                }
            }
        }
    }

    let makespan = trace.makespan();
    let task_times = task_starts
        .iter()
        .filter_map(|(name, start)| task_ends.get(name).map(|end| (name.clone(), end - start)))
        .collect();
    let task_nodes = tasks.iter().map(|t| (t.name.clone(), t.nodes)).collect();
    Ok(SimResult {
        trace,
        makespan,
        task_times,
        task_starts,
        task_nodes,
        pool_nodes: pool_total,
    })
}

fn span_kind(phase: &Phase) -> SpanKind {
    match phase {
        Phase::Compute { flops, .. } => SpanKind::Compute { flops: *flops },
        Phase::NodeData {
            resource, bytes, ..
        } => SpanKind::NodeData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::SystemData {
            resource, bytes, ..
        } => SpanKind::SystemData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::Overhead { label, .. } => SpanKind::Overhead {
            label: label.clone(),
        },
    }
}
