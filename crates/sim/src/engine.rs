//! The discrete-event workflow simulator.
//!
//! Executes a [`WorkflowSpec`] on a [`Machine`] as a fluid-flow
//! simulation: node-local phases run at (efficiency-scaled) peak rates of
//! the task's allocation; shared-system phases become flows on shared
//! channels whose rates are re-solved by max–min fair sharing whenever
//! the flow set changes; a Slurm-like scheduler allocates nodes. The
//! output is a `wrm_trace::Trace` — the same format real measurements
//! would use — so the Workflow Roofline dot of a simulated run is derived
//! exactly like the paper derives its empirical dots.
//!
//! Flow progress is *materialized on rate change*: a flow's remaining
//! byte count is only touched when a fair-share solve assigns it a new
//! rate, at which point its completion time is recomputed once and
//! cached. Between rate changes the completion time is a constant, so it
//! lives in the same calendar heap as fixed-phase ends and the event
//! loop never walks the flow set per event. The payoff is twofold: the
//! per-event cost drops from `O(flows)` to `O(log events)`, and an
//! uncontended flow's end becomes a closed-form spawn-time expression —
//! which is what lets [`crate::fastpath`] replace the whole DES with a
//! longest-path computation *bit-exactly* when a sweep point has no
//! contention.

use crate::channel::{FlowDemand, Sharing};
use crate::index::{BaseIndex, PhaseIx};
use crate::overlay::IndexOverlay;
use crate::spec::{Phase, SpecError, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use wrm_core::Machine;
use wrm_trace::{SpanKind, Trace, TraceSpan};

/// Node-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Strict FIFO: the queue head blocks everything behind it until it
    /// fits.
    #[default]
    Fifo,
    /// FIFO with backfill: ready tasks behind a blocked head may start
    /// when they fit (EASY-style, without reservations).
    Backfill,
}

/// Multiplicative duration noise, for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jitter {
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Relative amplitude in `[0, 1)`: each fixed phase duration is
    /// scaled by a factor drawn uniformly from `[1-a, 1+a]`.
    pub amplitude: f64,
}

/// A persistent competing flow on a shared channel, modelling traffic
/// from *other* workflows sharing the system (the source of the paper's
/// LCLS "bad days"). A background flow never completes: it competes for
/// max-min fair bandwidth up to its rate for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundFlow {
    /// The shared resource it loads.
    pub resource: String,
    /// Its demand ceiling in bytes/s (`f64::INFINITY` = greedy).
    pub rate: f64,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Usable node count (None = the machine's total; a Some caps it,
    /// modelling queue limits).
    pub node_limit: Option<u64>,
    /// Shared-channel discipline.
    #[serde(skip)]
    pub sharing: Sharing,
    /// Per-resource capacity factors (e.g. `{"ext": 0.2}` for the LCLS
    /// bad days). Factors apply to the channel capacity *and* to phase
    /// stream caps on that channel, matching "the achievable rate drops
    /// 5x" as observed end to end.
    pub contention: BTreeMap<String, f64>,
    /// Optional duration noise.
    pub jitter: Option<Jitter>,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Persistent competing flows from other workloads.
    pub background: Vec<BackgroundFlow>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            node_limit: None,
            sharing: Sharing::MaxMin,
            contention: BTreeMap::new(),
            jitter: None,
            scheduler: SchedulerPolicy::Fifo,
            background: Vec::new(),
        }
    }
}

impl SimOptions {
    /// Adds a contention factor for one resource.
    pub fn with_contention(mut self, resource: impl Into<String>, factor: f64) -> Self {
        self.contention.insert(resource.into(), factor);
        self
    }

    /// Adds a persistent background flow competing on `resource`.
    pub fn with_background(mut self, resource: impl Into<String>, rate: f64) -> Self {
        self.background.push(BackgroundFlow {
            resource: resource.into(),
            rate,
        });
        self
    }
}

/// A complete simulation input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The machine model.
    pub machine: Machine,
    /// The workflow to execute.
    pub workflow: WorkflowSpec,
    /// Options.
    pub options: SimOptions,
}

impl Scenario {
    /// Scenario with default options.
    pub fn new(machine: Machine, workflow: WorkflowSpec) -> Self {
        Self {
            machine,
            workflow,
            options: SimOptions::default(),
        }
    }

    /// Sets options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid spec.
    Spec(SpecError),
    /// A task needs more nodes than the usable pool.
    TaskTooLarge {
        /// Task name.
        task: String,
        /// Required nodes.
        needs: u64,
        /// Usable pool size.
        pool: u64,
    },
    /// A phase referenced a resource the machine does not define.
    UnknownResource {
        /// Task name.
        task: String,
        /// Resource id.
        resource: String,
    },
    /// Progress stalled (a flow has zero rate forever, e.g. a channel
    /// with zero effective capacity).
    Stalled {
        /// Simulated time at the stall.
        at: f64,
    },
    /// Invalid option value.
    InvalidOption(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(e) => write!(f, "spec error: {e}"),
            SimError::TaskTooLarge { task, needs, pool } => {
                write!(f, "task {task} needs {needs} nodes, pool has {pool}")
            }
            SimError::UnknownResource { task, resource } => {
                write!(f, "task {task} uses unknown resource {resource}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t={at}"),
            SimError::InvalidOption(m) => write!(f, "invalid option: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The execution trace (spans for every phase).
    pub trace: Trace,
    /// End-to-end makespan in seconds.
    pub makespan: f64,
    /// Wall time per task.
    pub task_times: BTreeMap<String, f64>,
    /// Start time per task (after dependencies and node allocation).
    pub task_starts: BTreeMap<String, f64>,
    /// Nodes held per task (echoed from the spec, for accounting).
    pub task_nodes: BTreeMap<String, u64>,
    /// The usable pool size the run was scheduled against.
    pub pool_nodes: u64,
}

impl SimResult {
    /// Total node-seconds of allocation (`sum of nodes x wall time`):
    /// what an accounting system would charge.
    pub fn node_seconds(&self) -> f64 {
        self.task_times
            .iter()
            .map(|(name, t)| *self.task_nodes.get(name).unwrap_or(&1) as f64 * t)
            .sum()
    }

    /// Allocation-weighted pool utilization over the makespan, in
    /// `[0, 1]` for serialized workloads (can be seen as the fraction of
    /// the pool's node-seconds the workflow held).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.pool_nodes == 0 {
            return 0.0;
        }
        self.node_seconds() / (self.pool_nodes as f64 * self.makespan)
    }
}

pub(crate) const EPS: f64 = 1e-9;

/// Relative time tolerance: activities within a (relative) nanosecond of
/// completion are treated as complete. This guards against float
/// absorption: when `now` is large, a flow's final sliver can need a
/// `dt` below `ulp(now)`, so `now + dt == now` and time cannot advance.
/// Any flow whose true remaining time is under `time_eps(now)` finishes
/// "now" instead; the timing error is at most a relative nanosecond per
/// event.
pub(crate) fn time_eps(now: f64) -> f64 {
    1e-9 * now.max(1.0)
}

/// True when a flow with `remaining` bytes at `rate` bytes/s is done for
/// simulation purposes at time `now`.
pub(crate) fn flow_finished(remaining: f64, rate: f64, now: f64) -> bool {
    remaining <= EPS || remaining <= rate * time_eps(now)
}

/// Position/slot sentinel: not present.
const DEAD: u32 = u32::MAX;

/// How a running phase progresses.
#[derive(Debug, Clone, Copy)]
enum EntryKind {
    /// Fixed-duration phase; its end sits in the completion calendar.
    Fixed,
    /// A flow on a shared channel.
    Flow {
        channel: u32,
        remaining: f64,
        cap: f64,
        rate: f64,
        /// Time the current rate was assigned; `remaining` is exact as
        /// of this instant and untouched until the next rate change.
        last_set: f64,
        /// Cached completion time under the current rate
        /// (`f64::INFINITY` while starved). Recomputed only on rate
        /// change; the calendar holds a copy, and an event whose time
        /// differs from this field is stale and skipped.
        end: f64,
        /// Index into `members[channel]`, or [`DEAD`] when the flow was
        /// born finished and never joined the channel.
        member_slot: u32,
    },
}

/// One running phase. Its *position* in the running vector reproduces
/// the reference engine's `Vec<RunningTask>` layout (positions shift
/// only via `swap_remove`, mirrored exactly); its *token* is a stable
/// handle used by the calendar and channel member lists.
#[derive(Debug, Clone, Copy)]
struct RunEntry {
    token: u32,
    task: u32,
    phase: u32,
    phase_start: f64,
    kind: EntryKind,
}

/// A calendar entry: an activity's known completion time. Ordered as a
/// min-heap on `end` (ties broken by token for a total order). Flow
/// entries are not removed on rate change; they are lazily discarded
/// when popped with an `end` that no longer matches the flow's cached
/// one.
#[derive(Debug, Clone, Copy)]
struct CalEv {
    end: f64,
    token: u32,
}

impl PartialEq for CalEv {
    fn eq(&self, other: &Self) -> bool {
        self.token == other.token && self.end.total_cmp(&other.end).is_eq()
    }
}
impl Eq for CalEv {}
impl PartialOrd for CalEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest end.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.token.cmp(&self.token))
    }
}

/// Runs the simulation.
pub fn simulate(scenario: &Scenario) -> Result<SimResult, SimError> {
    let base = BaseIndex::build(&scenario.machine, &scenario.workflow)?;
    let overlay = IndexOverlay::build(&base, &scenario.workflow, &scenario.options)?;
    Engine::new(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        &base,
        &overlay,
    )
    .run()
}

/// Outcome of [`Engine::advance`].
pub(crate) enum Outcome {
    /// All tasks completed.
    Done,
    /// Stopped at `stop_iter` with the loop body not yet executed.
    Paused,
}

/// The optimized event loop.
///
/// The behavior contract is *bit-identical* output to
/// [`crate::reference::simulate_reference`]: same makespan, same trace
/// spans in the same order, same task times, down to the last ulp. That
/// pins several design points:
///
/// * fair-share rates depend on demand *order* (progressive filling
///   accumulates `remaining -= cap` in order), and the reference orders
///   demands by running-vector position — so channel member lists are
///   re-sorted by position before solving, and a channel is marked dirty
///   not only when its membership changes but also when a `swap_remove`
///   relocates one of its members (relocation can reorder demands);
/// * flow ends are cached at rate-change time with the reference's exact
///   expression (`now + remaining / rate`), and the reference caches the
///   same value at the same instants — both engines materialize flow
///   progress only when a solve changes a rate;
/// * the reference's completion scan processes finished entries in
///   position order under `swap_remove` reshuffling — emulated with an
///   ordered pending set and a position-relocation rule;
/// * the reference's start scan examines the sorted ready queue first
///   and zero-phase dependents in append order afterwards — emulated
///   with an index-ordered heap (phase A) plus an append-order deque
///   (phase B). Completing a zero-phase task leaves `free` unchanged, so
///   entries skipped by backfill cannot newly fit and the reference's
///   quadratic `qi = 0` rescan is equivalent to continuing the scan —
///   which is what this engine does.
///
/// The engine borrows its immutable inputs (`base`, `overlay`) and is
/// `Clone`, which is what the incremental sweep's delta re-simulation
/// uses: run to a chosen loop iteration ([`Engine::pause_at`]), then
/// clone the paused state per grid point with a different overlay
/// ([`Engine::resume_with`]) and replay only the suffix.
#[derive(Clone)]
pub(crate) struct Engine<'a> {
    workflow: &'a WorkflowSpec,
    opts: &'a SimOptions,
    base: &'a BaseIndex,
    overlay: &'a IndexOverlay,
    rng: Option<StdRng>,
    amplitude: f64,
    /// Running phases; positions mirror the reference engine exactly.
    running: Vec<RunEntry>,
    /// Token -> current position in `running` ([`DEAD`] once removed).
    pos_of: Vec<u32>,
    /// Min-heap of activity completion times (fixed and flow).
    calendar: BinaryHeap<CalEv>,
    /// Tokens of the flows on each channel (unordered).
    members: Vec<Vec<u32>>,
    /// Channels whose demand set or demand order changed since the last
    /// fair-share solve.
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Ready tasks, popped in task-index order (= the reference's sorted
    /// queue).
    ready: BinaryHeap<Reverse<u32>>,
    /// Tasks unblocked by zero-phase completions mid-scan; examined
    /// after the heap in append order, like the reference's queue tail.
    deferred: VecDeque<u32>,
    /// Backfill scratch: ready tasks that did not fit this scan.
    skipped: Vec<u32>,
    /// Positions of finished-but-unprocessed entries during an event's
    /// completion scan.
    pending: BTreeSet<u32>,
    dep_count: Vec<u32>,
    free: u64,
    now: f64,
    done: usize,
    trace: Trace,
    starts: Vec<f64>,
    ends: Vec<f64>,
    demand_scratch: Vec<FlowDemand>,
    /// Channel whose first member join should be recorded (incremental
    /// sweep: the first loop iteration where a contention factor on this
    /// channel can influence the run).
    watch: Option<u32>,
    /// Loop iteration of the first watched-channel join, if any.
    watch_hit: Option<u64>,
    /// Completed loop-body count (the current body's index).
    iter: u64,
    /// Pause before executing this loop body (checkpointing).
    stop_iter: Option<u64>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        workflow: &'a WorkflowSpec,
        machine_name: &'a str,
        opts: &'a SimOptions,
        base: &'a BaseIndex,
        overlay: &'a IndexOverlay,
    ) -> Self {
        let n = base.n_tasks();
        let mut ready = BinaryHeap::with_capacity(n);
        for (t, &d) in base.dep_count.iter().enumerate() {
            if d == 0 {
                ready.push(Reverse(t as u32));
            }
        }
        Engine {
            workflow,
            opts,
            base,
            overlay,
            rng: opts.jitter.map(|j| StdRng::seed_from_u64(j.seed)),
            amplitude: opts.jitter.map_or(0.0, |j| j.amplitude),
            running: Vec::new(),
            pos_of: Vec::new(),
            calendar: BinaryHeap::new(),
            members: vec![Vec::new(); overlay.channel_capacity.len()],
            dirty: vec![false; overlay.channel_capacity.len()],
            dirty_list: Vec::new(),
            ready,
            deferred: VecDeque::new(),
            skipped: Vec::new(),
            pending: BTreeSet::new(),
            dep_count: base.dep_count.clone(),
            free: overlay.pool_total,
            now: 0.0,
            done: 0,
            trace: Trace::new(workflow.name.clone(), machine_name.to_string()),
            starts: vec![f64::NAN; n],
            ends: vec![f64::NAN; n],
            demand_scratch: Vec::new(),
            watch: None,
            watch_hit: None,
            iter: 0,
            stop_iter: None,
        }
    }

    /// Arms the watch: records the first loop iteration at which a flow
    /// joins `channel` (i.e. the first time that channel's capacity or
    /// cap factor can influence the run).
    pub(crate) fn with_watch(mut self, channel: u32) -> Self {
        self.watch = Some(channel);
        self
    }

    /// One multiplicative jitter factor; the draw sequence matches the
    /// reference (one draw per non-zero-phase phase spawn).
    fn jitter(&mut self) -> f64 {
        match self.rng.as_mut() {
            Some(r) => 1.0 + self.amplitude * r.random_range(-1.0..=1.0),
            None => 1.0,
        }
    }

    fn mark_dirty(&mut self, channel: u32) {
        let ch = channel as usize;
        if !self.dirty[ch] {
            self.dirty[ch] = true;
            self.dirty_list.push(channel);
        }
    }

    /// Spawns phase `pi` of task `ti` at the current time. Inside the
    /// completion scan (`in_scan`), a phase that is already finished at
    /// birth (zero duration within tolerance, or a zero-byte flow) goes
    /// straight onto the pending set so it is processed by the same scan,
    /// exactly where the reference's forward sweep would reach it.
    fn spawn(&mut self, ti: u32, pi: u32, jf: f64, in_scan: bool) {
        let slot = (self.base.phase_off[ti as usize] + pi) as usize;
        let token = self.pos_of.len() as u32;
        let pos = self.running.len() as u32;
        self.pos_of.push(pos);
        let kind = match self.base.phases[slot] {
            PhaseIx::Fixed { duration } => {
                let end = self.now + duration * jf;
                if in_scan && end <= self.now + time_eps(self.now) {
                    self.pending.insert(pos);
                } else {
                    self.calendar.push(CalEv { end, token });
                }
                EntryKind::Fixed
            }
            PhaseIx::Flow {
                channel,
                bytes,
                alloc_base,
                stream_base,
            } => {
                let f = self.overlay.channel_factor[channel as usize];
                let cap = (alloc_base * f).min(stream_base * f);
                let born_done = flow_finished(bytes, 0.0, self.now);
                let member_slot = if in_scan && born_done {
                    self.pending.insert(pos);
                    DEAD
                } else {
                    if self.watch == Some(channel) && self.watch_hit.is_none() {
                        self.watch_hit = Some(self.iter);
                    }
                    let ms = self.members[channel as usize].len() as u32;
                    self.members[channel as usize].push(token);
                    self.mark_dirty(channel);
                    ms
                };
                let end = if born_done {
                    // Born finished but (outside the scan) still a
                    // channel member for one solve round; its completion
                    // is a calendar event at the current time.
                    if !in_scan {
                        self.calendar.push(CalEv {
                            end: self.now,
                            token,
                        });
                    }
                    self.now
                } else {
                    f64::INFINITY
                };
                EntryKind::Flow {
                    channel,
                    remaining: bytes,
                    cap,
                    rate: 0.0,
                    last_set: self.now,
                    end,
                    member_slot,
                }
            }
        };
        self.running.push(RunEntry {
            token,
            task: ti,
            phase: pi,
            phase_start: self.now,
            kind,
        });
    }

    /// Allocates nodes to `ti` and starts it (or completes it instantly
    /// when it has no phases, unblocking dependents into `deferred`).
    fn start_task(&mut self, ti: u32) {
        let t = ti as usize;
        let need = self.base.nodes[t];
        self.free -= need;
        self.starts[t] = self.now;
        if self.base.n_phases(t) == 0 {
            // Zero-phase task completes instantly.
            self.ends[t] = self.now;
            self.free += need;
            self.done += 1;
            let lo = self.base.dependents_off[t] as usize;
            let hi = self.base.dependents_off[t + 1] as usize;
            for k in lo..hi {
                let d = self.base.dependents[k];
                self.dep_count[d as usize] -= 1;
                if self.dep_count[d as usize] == 0 {
                    self.deferred.push_back(d);
                }
            }
        } else {
            let jf = self.jitter();
            self.spawn(ti, 0, jf, false);
        }
    }

    /// Starts ready tasks per policy. Examination order matches the
    /// reference: the sorted ready set first, then tasks unblocked by
    /// zero-phase completions in append order.
    fn start_scan(&mut self) {
        let fifo = self.opts.scheduler == SchedulerPolicy::Fifo;
        let mut blocked = false;
        while let Some(Reverse(ti)) = self.ready.pop() {
            if self.base.nodes[ti as usize] <= self.free {
                self.start_task(ti);
            } else if fifo {
                self.ready.push(Reverse(ti));
                blocked = true;
                break; // head blocks
            } else {
                self.skipped.push(ti); // backfill: try the next
            }
        }
        if !blocked {
            while let Some(ti) = self.deferred.pop_front() {
                if self.base.nodes[ti as usize] <= self.free {
                    self.start_task(ti);
                } else if fifo {
                    self.deferred.push_front(ti);
                    break;
                } else {
                    self.skipped.push(ti);
                }
            }
        }
        // Leftovers wait for the next scan (re-sorted by the heap, as
        // the reference re-sorts its queue).
        while let Some(ti) = self.skipped.pop() {
            self.ready.push(Reverse(ti));
        }
        while let Some(ti) = self.deferred.pop_front() {
            self.ready.push(Reverse(ti));
        }
    }

    /// Re-solves fair sharing on channels whose demands changed. Demands
    /// are ordered by running-vector position — the reference's order. A
    /// flow whose rate actually changes has its progress materialized
    /// (`remaining` brought up to date) and its completion time
    /// recomputed and pushed onto the calendar; unchanged rates touch
    /// nothing, so their calendar entries stay valid.
    fn recompute(&mut self) {
        let sharing = self.opts.sharing;
        let now = self.now;
        for di in 0..self.dirty_list.len() {
            let ch = self.dirty_list[di] as usize;
            self.dirty[ch] = false;
            if self.members[ch].is_empty() {
                continue;
            }
            self.demand_scratch.clear();
            for &tok in &self.members[ch] {
                let p = self.pos_of[tok as usize] as usize;
                if let EntryKind::Flow { cap, .. } = self.running[p].kind {
                    self.demand_scratch.push(FlowDemand { id: p, cap });
                }
            }
            self.demand_scratch.sort_unstable_by_key(|d| d.id);
            let first_bg = self.demand_scratch.len();
            for (k, &rate) in self.overlay.background[ch].iter().enumerate() {
                self.demand_scratch.push(FlowDemand {
                    id: usize::MAX - k,
                    cap: rate,
                });
            }
            let rates = sharing.rates(self.overlay.channel_capacity[ch], &self.demand_scratch);
            for fr in rates.into_iter().take(first_bg) {
                let token = self.running[fr.id].token;
                if let EntryKind::Flow {
                    remaining,
                    rate,
                    last_set,
                    end,
                    ..
                } = &mut self.running[fr.id].kind
                {
                    if fr.rate != *rate {
                        *remaining = (*remaining - *rate * (now - *last_set)).max(0.0);
                        *last_set = now;
                        *rate = fr.rate;
                        *end = if flow_finished(*remaining, *rate, now) {
                            now
                        } else if *rate > 0.0 {
                            now + *remaining / *rate
                        } else {
                            f64::INFINITY
                        };
                        if end.is_finite() {
                            self.calendar.push(CalEv { end: *end, token });
                        }
                    }
                }
            }
        }
        self.dirty_list.clear();
    }

    /// Earliest pending completion: the calendar top, after lazily
    /// discarding events for removed entries and superseded flow ends.
    /// Returns infinity when nothing is scheduled (every live flow is
    /// starved).
    fn next_event(&mut self) -> f64 {
        while let Some(top) = self.calendar.peek() {
            let pos = self.pos_of[top.token as usize];
            if pos == DEAD {
                self.calendar.pop();
                continue;
            }
            if let EntryKind::Flow { end, .. } = self.running[pos as usize].kind {
                if end.total_cmp(&top.end).is_ne() {
                    self.calendar.pop();
                    continue;
                }
            }
            return top.end;
        }
        f64::INFINITY
    }

    /// Pops every activity due at the current time into `pending`,
    /// skipping stale calendar entries.
    fn collect_due(&mut self) {
        let threshold = self.now + time_eps(self.now);
        while let Some(top) = self.calendar.peek() {
            // `!(<=)` rather than `>` so a NaN end stops the scan instead
            // of being popped as complete, matching the reference loop.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let not_due = !(top.end <= threshold);
            if not_due {
                break;
            }
            let ev = self.calendar.pop().expect("peeked");
            let pos = self.pos_of[ev.token as usize];
            if pos == DEAD {
                continue;
            }
            if let EntryKind::Flow { end, .. } = self.running[pos as usize].kind {
                if end.total_cmp(&ev.end).is_ne() {
                    continue; // superseded by a later rate change
                }
            }
            self.pending.insert(pos);
        }
    }

    /// Processes the pending set in ascending position order, which is
    /// provably the order the reference's forward scan visits finished
    /// entries (`swap_remove` only moves entries from the tail down, so
    /// the scan always reaches the smallest finished position next).
    fn complete_pending(&mut self) {
        while let Some(p) = self.pending.pop_first() {
            let i = p as usize;
            let entry = self.running.swap_remove(i);
            self.pos_of[entry.token as usize] = DEAD;
            if i < self.running.len() {
                // The old tail entry moved into position i.
                let old_last = self.running.len() as u32;
                let moved = self.running[i];
                self.pos_of[moved.token as usize] = p;
                if let EntryKind::Flow { channel, .. } = moved.kind {
                    // Relocation reorders this channel's demand list.
                    self.mark_dirty(channel);
                }
                if self.pending.remove(&old_last) {
                    self.pending.insert(p);
                }
            }
            if let EntryKind::Flow {
                channel,
                member_slot,
                ..
            } = entry.kind
            {
                if member_slot != DEAD {
                    let ch = channel as usize;
                    let ms = member_slot as usize;
                    self.members[ch].swap_remove(ms);
                    if ms < self.members[ch].len() {
                        let tok = self.members[ch][ms] as usize;
                        let q = self.pos_of[tok] as usize;
                        if let EntryKind::Flow { member_slot, .. } = &mut self.running[q].kind {
                            *member_slot = ms as u32;
                        }
                    }
                    self.mark_dirty(channel);
                }
            }

            let t = entry.task as usize;
            let task = &self.workflow.tasks[t];
            let phase = &task.phases[entry.phase as usize];
            self.trace.push(TraceSpan::new(
                task.name.clone(),
                span_kind(phase),
                entry.phase_start,
                self.now,
                task.nodes,
            ));
            let next_phase = entry.phase + 1;
            if (next_phase as usize) < task.phases.len() {
                let jf = self.jitter();
                self.spawn(entry.task, next_phase, jf, true);
            } else {
                self.ends[t] = self.now;
                self.free += task.nodes;
                self.done += 1;
                let lo = self.base.dependents_off[t] as usize;
                let hi = self.base.dependents_off[t + 1] as usize;
                for k in lo..hi {
                    let d = self.base.dependents[k];
                    self.dep_count[d as usize] -= 1;
                    if self.dep_count[d as usize] == 0 {
                        self.ready.push(Reverse(d));
                    }
                }
            }
        }
    }

    /// Runs loop bodies until completion, a stall, or `stop_iter`.
    fn advance(&mut self) -> Result<Outcome, SimError> {
        let n_tasks = self.base.n_tasks();
        loop {
            if self.stop_iter == Some(self.iter) {
                return Ok(Outcome::Paused);
            }
            self.start_scan();
            if self.done == n_tasks {
                return Ok(Outcome::Done);
            }
            if self.running.is_empty() {
                // Tasks remain but nothing runs and nothing can start.
                debug_assert!(!self.ready.is_empty() || self.done < n_tasks);
                return Err(SimError::Stalled { at: self.now });
            }

            self.recompute();

            let next = self.next_event();
            if !next.is_finite() {
                return Err(SimError::Stalled { at: self.now });
            }
            self.now = next;

            self.collect_due();
            self.complete_pending();
            self.iter += 1;
        }
    }

    /// Materializes the final [`SimResult`] after [`Outcome::Done`].
    fn into_result(self) -> SimResult {
        let makespan = self.trace.makespan();
        let tasks = &self.workflow.tasks;
        // One name-sorted pass, then O(n) bulk map construction —
        // repeated B-tree inserts in random name order are measurably
        // slower on sweep-sized results.
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| tasks[a as usize].name.cmp(&tasks[b as usize].name));
        let task_starts: BTreeMap<String, f64> = order
            .iter()
            .map(|&i| (tasks[i as usize].name.clone(), self.starts[i as usize]))
            .collect();
        let task_times: BTreeMap<String, f64> = order
            .iter()
            .map(|&i| {
                let i = i as usize;
                (tasks[i].name.clone(), self.ends[i] - self.starts[i])
            })
            .collect();
        let task_nodes: BTreeMap<String, u64> = order
            .iter()
            .map(|&i| (tasks[i as usize].name.clone(), tasks[i as usize].nodes))
            .collect();
        SimResult {
            trace: self.trace,
            makespan,
            task_times,
            task_starts,
            task_nodes,
            pool_nodes: self.overlay.pool_total,
        }
    }

    /// Runs to completion.
    pub(crate) fn run(mut self) -> Result<SimResult, SimError> {
        match self.advance()? {
            Outcome::Done => Ok(self.into_result()),
            Outcome::Paused => unreachable!("run() is never called with stop_iter set"),
        }
    }

    /// Runs to completion but materializes only the makespan, skipping
    /// [`Engine::into_result`]'s per-task map construction. The value is
    /// identical to `run()?.makespan`; the bracketing oracle calls this
    /// thousands of times per grid, so the maps would dominate.
    pub(crate) fn run_makespan(mut self) -> Result<f64, SimError> {
        match self.advance()? {
            Outcome::Done => Ok(self.trace.makespan()),
            Outcome::Paused => {
                unreachable!("run_makespan() is never called with stop_iter set")
            }
        }
    }

    /// Runs to completion, also reporting the loop iteration of the
    /// first watched-channel join (see [`Engine::with_watch`]).
    pub(crate) fn run_watched(mut self) -> (Result<SimResult, SimError>, Option<u64>) {
        match self.advance() {
            Err(e) => {
                let hit = self.watch_hit;
                (Err(e), hit)
            }
            Ok(_) => {
                let hit = self.watch_hit;
                (Ok(self.into_result()), hit)
            }
        }
    }

    /// Runs loop bodies `0..iter` and pauses, returning the checkpointed
    /// engine. The checkpoint is taken *before* body `iter` executes.
    pub(crate) fn pause_at(mut self, iter: u64) -> Result<Engine<'a>, SimError> {
        self.stop_iter = Some(iter);
        self.advance()?;
        Ok(self)
    }

    /// Clones a paused engine with a different overlay and clears the
    /// pause, ready to replay the suffix. Sound only when the prefix up
    /// to the pause provably does not depend on the parts of the overlay
    /// that differ (the incremental sweep guarantees this via the
    /// watched-channel first-join iteration).
    pub(crate) fn resume_with(&self, overlay: &'a IndexOverlay) -> Engine<'a> {
        let mut e = self.clone();
        e.overlay = overlay;
        e.stop_iter = None;
        e
    }
}

pub(crate) fn span_kind(phase: &Phase) -> SpanKind {
    match phase {
        Phase::Compute { flops, .. } => SpanKind::Compute { flops: *flops },
        Phase::NodeData {
            resource, bytes, ..
        } => SpanKind::NodeData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::SystemData {
            resource, bytes, ..
        } => SpanKind::SystemData {
            resource: resource.clone(),
            bytes: *bytes,
        },
        Phase::Overhead { label, .. } => SpanKind::Overhead {
            label: label.clone(),
        },
    }
}
