//! Dense-integer indexing of a [`Scenario`] for the simulator hot path.
//!
//! [`ScenarioIndex::build`] validates a scenario once (in exactly the
//! same order as the reference engine, so both engines report the same
//! first error) and lowers it to flat arrays keyed by `u32` ids: CSR
//! phase tables with precomputed fixed-phase durations and flow caps,
//! CSR dependency lists, and per-channel capacities with contention
//! factors applied. The event loop in [`crate::engine`] then never
//! touches a string or a map: names reappear only when the final
//! [`crate::SimResult`] is materialized.
//!
//! Every floating-point expression here is kept verbatim from the
//! reference engine — the precomputed values must be bit-identical to
//! what the reference computes per event, because the behavior contract
//! between the two engines is exact equality of makespans and traces.

use crate::engine::{Scenario, SimError};
use crate::spec::Phase;
use std::collections::BTreeMap;
use wrm_core::SystemScaling;

/// One phase, lowered to the quantities the event loop needs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PhaseIx {
    /// A fixed-duration phase (compute, node-local data, overhead); the
    /// duration is pre-divided by the allocation's peak rate.
    Fixed {
        /// Unjittered duration in seconds.
        duration: f64,
    },
    /// A flow on a shared channel.
    Flow {
        /// Channel id (index into [`ScenarioIndex::channel_capacity`]).
        channel: u32,
        /// Bytes to move.
        bytes: f64,
        /// The flow's own rate limit (allocation NIC aggregate and/or
        /// stream cap, contention-scaled), `f64::INFINITY` if none.
        cap: f64,
    },
}

/// A scenario lowered to dense integer ids and flat arrays.
pub(crate) struct ScenarioIndex {
    /// Usable node pool (node_limit-capped machine total).
    pub pool_total: u64,
    /// Nodes required per task.
    pub nodes: Vec<u64>,
    /// CSR offsets into [`Self::phases`], one entry per task plus one.
    pub phase_off: Vec<u32>,
    /// All phases of all tasks, in task order.
    pub phases: Vec<PhaseIx>,
    /// Unresolved-dependency count per task.
    pub dep_count: Vec<u32>,
    /// CSR offsets into [`Self::dependents`], one entry per task plus one.
    pub dependents_off: Vec<u32>,
    /// Task ids unblocked by each task's completion.
    pub dependents: Vec<u32>,
    /// Effective capacity per channel (contention-scaled).
    pub channel_capacity: Vec<f64>,
    /// Background demand rates per channel.
    pub background: Vec<Vec<f64>>,
}

impl ScenarioIndex {
    /// Validates `scenario` and lowers it. Error kinds and ordering
    /// mirror the reference engine exactly.
    pub(crate) fn build(scenario: &Scenario) -> Result<Self, SimError> {
        scenario.workflow.validate()?;
        let machine = &scenario.machine;
        let opts = &scenario.options;
        for (res, f) in &opts.contention {
            if !(f.is_finite() && *f > 0.0) {
                return Err(SimError::InvalidOption(format!(
                    "contention factor for {res} must be positive, got {f}"
                )));
            }
        }
        if let Some(j) = &opts.jitter {
            if !(j.amplitude.is_finite() && (0.0..1.0).contains(&j.amplitude)) {
                return Err(SimError::InvalidOption(format!(
                    "jitter amplitude must be in [0,1), got {}",
                    j.amplitude
                )));
            }
        }
        for bg in &opts.background {
            if bg.rate.is_nan() || bg.rate <= 0.0 {
                return Err(SimError::InvalidOption(format!(
                    "background flow on {} must have a positive rate, got {}",
                    bg.resource, bg.rate
                )));
            }
            if machine.system_resource(&bg.resource).is_none() {
                return Err(SimError::UnknownResource {
                    task: "<background>".into(),
                    resource: bg.resource.clone(),
                });
            }
        }

        let pool_total = opts
            .node_limit
            .unwrap_or(machine.total_nodes)
            .min(machine.total_nodes);
        let tasks = &scenario.workflow.tasks;
        for t in tasks {
            if t.nodes > pool_total {
                return Err(SimError::TaskTooLarge {
                    task: t.name.clone(),
                    needs: t.nodes,
                    pool: pool_total,
                });
            }
            // Resolve every referenced resource up front.
            for p in &t.phases {
                match p {
                    Phase::Compute { .. } => {
                        if machine.node_resource(wrm_core::ids::COMPUTE).is_none() {
                            return Err(SimError::UnknownResource {
                                task: t.name.clone(),
                                resource: wrm_core::ids::COMPUTE.into(),
                            });
                        }
                    }
                    Phase::NodeData { resource, .. } => {
                        if machine.node_resource(resource).is_none() {
                            return Err(SimError::UnknownResource {
                                task: t.name.clone(),
                                resource: resource.clone(),
                            });
                        }
                    }
                    Phase::SystemData { resource, .. } => {
                        if machine.system_resource(resource).is_none() {
                            return Err(SimError::UnknownResource {
                                task: t.name.clone(),
                                resource: resource.clone(),
                            });
                        }
                    }
                    Phase::Overhead { .. } => {}
                }
            }
        }

        // Channels: one per system resource the machine defines.
        let mut channel_capacity = Vec::with_capacity(machine.system_resources.len());
        let mut channel_idx: BTreeMap<&str, u32> = BTreeMap::new();
        for sr in &machine.system_resources {
            let factor = opts.contention.get(sr.id.as_str()).copied().unwrap_or(1.0);
            let capacity = match sr.scaling {
                SystemScaling::Aggregate => sr.peak.get() * factor,
                // The interconnect's backbone: every node can inject at
                // once.
                SystemScaling::PerNodeInUse => sr.peak.get() * machine.total_nodes as f64 * factor,
            };
            channel_idx.insert(sr.id.as_str(), channel_capacity.len() as u32);
            channel_capacity.push(capacity);
        }

        // Phases, lowered. The duration and cap expressions replicate
        // the reference's `fixed_duration` / `make_activity` bit for
        // bit.
        let mut phase_off = Vec::with_capacity(tasks.len() + 1);
        let mut phases = Vec::new();
        phase_off.push(0u32);
        for t in tasks {
            for p in &t.phases {
                let lowered = match p {
                    Phase::Compute { flops, efficiency } => {
                        let peak = machine
                            .node_resource(wrm_core::ids::COMPUTE)
                            .expect("checked above")
                            .peak_per_node
                            .magnitude();
                        PhaseIx::Fixed {
                            duration: flops / (peak * t.nodes as f64 * efficiency),
                        }
                    }
                    Phase::NodeData {
                        resource,
                        bytes,
                        efficiency,
                    } => {
                        let peak = machine
                            .node_resource(resource)
                            .expect("checked above")
                            .peak_per_node
                            .magnitude();
                        PhaseIx::Fixed {
                            duration: bytes / (peak * t.nodes as f64 * efficiency),
                        }
                    }
                    Phase::Overhead { seconds, .. } => PhaseIx::Fixed { duration: *seconds },
                    Phase::SystemData {
                        resource,
                        bytes,
                        stream_cap,
                    } => {
                        let sr = machine.system_resource(resource).expect("checked above");
                        let factor = opts
                            .contention
                            .get(resource.as_str())
                            .copied()
                            .unwrap_or(1.0);
                        // The task's own injection limit: for
                        // per-node-scaled resources it is its
                        // allocation's aggregate NIC rate.
                        let alloc_cap = match sr.scaling {
                            SystemScaling::Aggregate => f64::INFINITY,
                            SystemScaling::PerNodeInUse => sr.peak.get() * t.nodes as f64 * factor,
                        };
                        let stream = stream_cap.unwrap_or(f64::INFINITY) * factor;
                        PhaseIx::Flow {
                            channel: channel_idx[resource.as_str()],
                            bytes: *bytes,
                            cap: alloc_cap.min(stream),
                        }
                    }
                };
                phases.push(lowered);
            }
            phase_off.push(phases.len() as u32);
        }

        // Dependency CSR.
        let name_to_idx: BTreeMap<&str, u32> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i as u32))
            .collect();
        let dep_count: Vec<u32> = tasks.iter().map(|t| t.after.len() as u32).collect();
        let mut out_degree = vec![0u32; tasks.len()];
        for t in tasks {
            for dep in &t.after {
                out_degree[name_to_idx[dep.as_str()] as usize] += 1;
            }
        }
        let mut dependents_off = Vec::with_capacity(tasks.len() + 1);
        dependents_off.push(0u32);
        for &d in &out_degree {
            dependents_off.push(dependents_off.last().unwrap() + d);
        }
        let mut cursor: Vec<u32> = dependents_off[..tasks.len()].to_vec();
        let mut dependents = vec![0u32; dependents_off[tasks.len()] as usize];
        for (i, t) in tasks.iter().enumerate() {
            for dep in &t.after {
                let d = name_to_idx[dep.as_str()] as usize;
                dependents[cursor[d] as usize] = i as u32;
                cursor[d] += 1;
            }
        }

        let mut background = vec![Vec::new(); channel_capacity.len()];
        for bg in &opts.background {
            background[channel_idx[bg.resource.as_str()] as usize].push(bg.rate);
        }

        Ok(ScenarioIndex {
            pool_total,
            nodes: tasks.iter().map(|t| t.nodes).collect(),
            phase_off,
            phases,
            dep_count,
            dependents_off,
            dependents,
            channel_capacity,
            background,
        })
    }

    /// Number of tasks.
    pub(crate) fn n_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of phases of task `t`.
    pub(crate) fn n_phases(&self, t: usize) -> u32 {
        self.phase_off[t + 1] - self.phase_off[t]
    }
}
