//! Dense-integer indexing of a scenario for the simulator hot path.
//!
//! Since the incremental-sweep work the index is split in two:
//!
//! * [`BaseIndex`] (this module) holds everything that depends only on
//!   the `(machine, workflow)` pair — CSR phase tables, CSR dependency
//!   lists, unscaled channel capacities and flow-cap bases — so a sweep
//!   over thousands of option points builds it exactly once;
//! * [`crate::overlay::IndexOverlay`] holds the per-point deltas
//!   (contention-scaled capacities, the usable node pool, background
//!   demands) and is cheap to rebuild per grid point.
//!
//! Validation is split the same way without changing what error a caller
//! sees: the reference engine interleaves `TaskTooLarge` (which needs
//! the per-point pool) with `UnknownResource` (which does not) in one
//! forward scan over tasks. The base records the first resource error
//! *without failing*, plus a running prefix-maximum of task node counts;
//! the overlay then reproduces the reference's first-error choice with a
//! binary search over that prefix maximum.
//!
//! Every floating-point expression here is kept verbatim from the
//! reference engine — the precomputed values must be bit-identical to
//! what the reference computes per event, because the behavior contract
//! between the two engines is exact equality of makespans and traces.

use crate::engine::SimError;
use crate::spec::{Phase, WorkflowSpec};
use std::collections::BTreeMap;
use wrm_core::{Machine, SystemScaling};

/// One phase, lowered to the quantities the event loop needs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PhaseIx {
    /// A fixed-duration phase (compute, node-local data, overhead); the
    /// duration is pre-divided by the allocation's peak rate.
    Fixed {
        /// Unjittered duration in seconds.
        duration: f64,
    },
    /// A flow on a shared channel.
    Flow {
        /// Channel id (index into [`BaseIndex::capacity_base`]).
        channel: u32,
        /// Bytes to move.
        bytes: f64,
        /// The allocation's aggregate injection limit *before* the
        /// per-point contention factor (`f64::INFINITY` if none).
        alloc_base: f64,
        /// The stream cap before the contention factor
        /// (`f64::INFINITY` if none).
        stream_base: f64,
    },
}

/// The option-independent part of a lowered scenario: topology, CSR
/// dependents, durations and cap bases. Built once per `(machine,
/// workflow)` pair and shared by every [`crate::overlay::IndexOverlay`].
///
/// Public as an *opaque* handle so long-lived callers (the `wrm serve`
/// index cache) can compile once, wrap in an `Arc`, and answer many
/// requests concurrently via [`crate::simulate_with_base`] /
/// [`crate::sweep_grid_with_base`]; the lowered tables themselves stay
/// crate-private.
#[derive(Clone)]
pub struct BaseIndex {
    /// The machine's total node count (pool ceiling).
    pub(crate) total_nodes: u64,
    /// Nodes required per task.
    pub(crate) nodes: Vec<u64>,
    /// Running maximum of [`Self::nodes`] by task index; used by the
    /// overlay to find the first too-large task in `O(log n)`.
    pub(crate) nodes_prefix_max: Vec<u64>,
    /// CSR offsets into [`Self::phases`], one entry per task plus one.
    pub(crate) phase_off: Vec<u32>,
    /// All phases of all tasks, in task order.
    pub(crate) phases: Vec<PhaseIx>,
    /// Unresolved-dependency count per task.
    pub(crate) dep_count: Vec<u32>,
    /// CSR offsets into [`Self::dependents`], one entry per task plus one.
    pub(crate) dependents_off: Vec<u32>,
    /// Task ids unblocked by each task's completion.
    pub(crate) dependents: Vec<u32>,
    /// Channel ids in machine declaration order.
    pub(crate) channel_ids: Vec<String>,
    /// Capacity per channel *before* the contention factor.
    pub(crate) capacity_base: Vec<f64>,
    /// Resource id -> channel index.
    pub(crate) channel_idx: BTreeMap<String, u32>,
    /// The first `UnknownResource` error in task order (scan position =
    /// task index), recorded but not raised: whether it wins over a
    /// `TaskTooLarge` depends on the per-point pool, so the overlay
    /// decides.
    pub(crate) first_resource_error: Option<(usize, SimError)>,
}

impl BaseIndex {
    /// Validates the option-independent parts of a scenario and lowers
    /// them. Resource errors are recorded, not raised (see the module
    /// docs); tasks carrying one get placeholder phases, which is sound
    /// because every overlay built on such a base refuses to run.
    ///
    /// This is the expensive, cacheable step: the same `BaseIndex`
    /// serves every option point of the `(machine, workflow)` pair.
    pub fn build(machine: &Machine, workflow: &WorkflowSpec) -> Result<Self, SimError> {
        workflow.validate()?;
        let tasks = &workflow.tasks;

        let mut first_resource_error: Option<(usize, SimError)> = None;
        for (i, t) in tasks.iter().enumerate() {
            if first_resource_error.is_some() {
                break;
            }
            for p in &t.phases {
                let bad: Option<String> = match p {
                    Phase::Compute { .. } => {
                        if machine.node_resource(wrm_core::ids::COMPUTE).is_none() {
                            Some(wrm_core::ids::COMPUTE.into())
                        } else {
                            None
                        }
                    }
                    Phase::NodeData { resource, .. } => {
                        if machine.node_resource(resource).is_none() {
                            Some(resource.clone())
                        } else {
                            None
                        }
                    }
                    Phase::SystemData { resource, .. } => {
                        if machine.system_resource(resource).is_none() {
                            Some(resource.clone())
                        } else {
                            None
                        }
                    }
                    Phase::Overhead { .. } => None,
                };
                if let Some(resource) = bad {
                    first_resource_error = Some((
                        i,
                        SimError::UnknownResource {
                            task: t.name.clone(),
                            resource,
                        },
                    ));
                    break;
                }
            }
        }

        // Channels: one per system resource the machine defines. The
        // capacity expression keeps the reference's association order:
        // the per-point factor multiplies *this* product on the right.
        let mut channel_ids = Vec::with_capacity(machine.system_resources.len());
        let mut capacity_base = Vec::with_capacity(machine.system_resources.len());
        let mut channel_idx: BTreeMap<String, u32> = BTreeMap::new();
        for sr in &machine.system_resources {
            let capacity = match sr.scaling {
                SystemScaling::Aggregate => sr.peak.get(),
                // The interconnect's backbone: every node can inject at
                // once.
                SystemScaling::PerNodeInUse => sr.peak.get() * machine.total_nodes as f64,
            };
            channel_idx.insert(sr.id.to_string(), capacity_base.len() as u32);
            channel_ids.push(sr.id.to_string());
            capacity_base.push(capacity);
        }

        // Phases, lowered. The duration and cap-base expressions
        // replicate the reference's `fixed_duration` / `make_activity`
        // bit for bit (the factor multiplies the base on the right, as
        // the reference's left-associative products do).
        let mut phase_off = Vec::with_capacity(tasks.len() + 1);
        let mut phases = Vec::new();
        phase_off.push(0u32);
        for t in tasks {
            for p in &t.phases {
                let lowered = match p {
                    Phase::Compute { flops, efficiency } => {
                        match machine.node_resource(wrm_core::ids::COMPUTE) {
                            Some(nr) => PhaseIx::Fixed {
                                duration: flops
                                    / (nr.peak_per_node.magnitude() * t.nodes as f64 * efficiency),
                            },
                            None => PhaseIx::Fixed { duration: 0.0 },
                        }
                    }
                    Phase::NodeData {
                        resource,
                        bytes,
                        efficiency,
                    } => match machine.node_resource(resource) {
                        Some(nr) => PhaseIx::Fixed {
                            duration: bytes
                                / (nr.peak_per_node.magnitude() * t.nodes as f64 * efficiency),
                        },
                        None => PhaseIx::Fixed { duration: 0.0 },
                    },
                    Phase::Overhead { seconds, .. } => PhaseIx::Fixed { duration: *seconds },
                    Phase::SystemData {
                        resource,
                        bytes,
                        stream_cap,
                    } => match machine.system_resource(resource) {
                        Some(sr) => {
                            // The task's own injection limit: for
                            // per-node-scaled resources it is its
                            // allocation's aggregate NIC rate.
                            let alloc_base = match sr.scaling {
                                SystemScaling::Aggregate => f64::INFINITY,
                                SystemScaling::PerNodeInUse => sr.peak.get() * t.nodes as f64,
                            };
                            PhaseIx::Flow {
                                channel: channel_idx[resource.as_str()],
                                bytes: *bytes,
                                alloc_base,
                                stream_base: stream_cap.unwrap_or(f64::INFINITY),
                            }
                        }
                        // Unreachable at run time: the recorded resource
                        // error fails every overlay built on this base.
                        None => PhaseIx::Fixed { duration: 0.0 },
                    },
                };
                phases.push(lowered);
            }
            phase_off.push(phases.len() as u32);
        }

        // Dependency CSR. The name map is only probed (never iterated),
        // so a hash map's O(1) lookups are safe and make this build
        // O(tasks + deps) instead of O(deps log tasks).
        let name_to_idx: std::collections::HashMap<&str, u32> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i as u32))
            .collect();
        let dep_count: Vec<u32> = tasks.iter().map(|t| t.after.len() as u32).collect();
        let mut out_degree = vec![0u32; tasks.len()];
        for t in tasks {
            for dep in &t.after {
                out_degree[name_to_idx[dep.as_str()] as usize] += 1;
            }
        }
        let mut dependents_off = Vec::with_capacity(tasks.len() + 1);
        dependents_off.push(0u32);
        for &d in &out_degree {
            dependents_off.push(dependents_off.last().unwrap() + d);
        }
        let mut cursor: Vec<u32> = dependents_off[..tasks.len()].to_vec();
        let mut dependents = vec![0u32; dependents_off[tasks.len()] as usize];
        for (i, t) in tasks.iter().enumerate() {
            for dep in &t.after {
                let d = name_to_idx[dep.as_str()] as usize;
                dependents[cursor[d] as usize] = i as u32;
                cursor[d] += 1;
            }
        }

        let nodes: Vec<u64> = tasks.iter().map(|t| t.nodes).collect();
        let mut nodes_prefix_max = Vec::with_capacity(nodes.len());
        let mut running_max = 0u64;
        for &n in &nodes {
            running_max = running_max.max(n);
            nodes_prefix_max.push(running_max);
        }

        Ok(BaseIndex {
            total_nodes: machine.total_nodes,
            nodes,
            nodes_prefix_max,
            phase_off,
            phases,
            dep_count,
            dependents_off,
            dependents,
            channel_ids,
            capacity_base,
            channel_idx,
            first_resource_error,
        })
    }

    /// Number of tasks.
    pub(crate) fn n_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of phases of task `t`.
    pub(crate) fn n_phases(&self, t: usize) -> u32 {
        self.phase_off[t + 1] - self.phase_off[t]
    }
}
