//! Two-sided makespan certification: `lo <= makespan <= hi` for every
//! admissible schedule of a scenario, with a witness decomposition.
//!
//! Where `wrm_lint`'s interval dataflow certifies only the *lower* end
//! (its upper end degenerates to `+inf` under contention), this module
//! derives a finite contention-aware upper bound directly from the
//! simulator's own lowered form ([`crate::index::BaseIndex`] +
//! [`crate::overlay::IndexOverlay`]), so both ends are certified against
//! the exact semantics the DES executes:
//!
//! * **Lower bound** `lo = max(CP_lo, max_ch sum(bytes)/C_ch, W_lo/P)`:
//!   the critical path with every task alone on every channel, each
//!   channel's aggregate byte volume over its capacity, and the
//!   node-pool occupancy floor.
//! * **Upper bound** `hi = min(sum d_hi, CP_hi + W_hi/(P - q_max + 1))`:
//!   full serialization, and a Graham/list-scheduling bound. Per-task
//!   `d_hi` prices worst-case contention through a *guaranteed floor
//!   rate* per flow: under max-min sharing a flow on a channel of
//!   capacity `C` with at most `n` concurrent demands always receives at
//!   least `min(cap, max(C/n, C - S_other))` where `S_other` sums the
//!   other demands' caps; under equal-split only `min(cap, C/n)` (the
//!   `C - S_other` refinement is unsound there — equal split is not
//!   work-conserving). `n` is capped by node-pool co-schedulability
//!   ([`wrm_dag::max_coschedulable`]): flows whose tasks cannot hold
//!   nodes simultaneously never compete.
//!
//! The Graham argument, engine-exact: split time into instants where
//! `free >= q_max` (any ready task starts immediately under both Fifo
//! and Backfill, so a critical-chain task is always running — at most
//! `CP_hi` such time) and instants where `free < q_max` (at least
//! `P - q_max + 1` nodes are busy, so node-seconds bound that time by
//! `W_hi / (P - q_max + 1)`).
//!
//! Soundness is not an argument on paper only: the bracketing oracle
//! (`tests/bracketing.rs`, plus the workflow- and lint-crate oracles)
//! asserts `lo <= simulate(spec).makespan <= hi` across the paper
//! workflows, every shipped spec, sweep grids, and proptest-random DAGs.

use crate::channel::Sharing;
use crate::engine::{Engine, Scenario, SimError, SimOptions};
use crate::index::{BaseIndex, PhaseIx};
use crate::overlay::IndexOverlay;
use crate::spec::{Phase, WorkflowSpec};
use serde::Serialize;
use std::collections::BTreeMap;
use wrm_core::attribution::{classify_terms, BoundClass};
use wrm_core::Machine;

/// One term of a bound decomposition, with its position on the
/// must-bind / may-bind lattice (see [`wrm_core::attribution`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TermBound {
    /// Term class (`chain`, `system-channel`, `node-pool`, `compute`,
    /// `node-resource`, `overhead`).
    pub class: String,
    /// Resource id for channel/node-resource terms.
    pub resource: Option<String>,
    /// Least time this term can account for.
    pub lo: f64,
    /// Most time this term can account for.
    pub hi: f64,
    /// `"must"`, `"may"`, or `"no"`: whether the term binds in all,
    /// some, or no admissible schedules.
    pub binds: String,
}

/// Certified duration interval of one task, with per-class attribution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskBound {
    /// Task name (post-expansion, e.g. `analyze[3]`).
    pub name: String,
    /// Node allocation.
    pub nodes: u64,
    /// Duration with every channel to itself.
    pub lo: f64,
    /// Duration under worst admissible contention.
    pub hi: f64,
    /// Phase-class decomposition with binding strengths.
    pub terms: Vec<TermBound>,
}

/// One channel's aggregate-volume floor on makespan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChannelFloor {
    /// Resource id.
    pub resource: String,
    /// Total bytes the workflow moves through the channel.
    pub bytes: f64,
    /// Effective capacity (contention-scaled) in bytes/s.
    pub capacity: f64,
    /// `bytes / capacity`: a lower bound on makespan.
    pub floor: f64,
}

/// A certified two-sided makespan interval with its witness
/// decomposition. Every field is deterministic for a given scenario
/// (orderings follow spec/machine declaration order), so rendering a
/// certificate is byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Certificate {
    /// Certified lower bound: no admissible schedule finishes earlier.
    pub lo: f64,
    /// Certified upper bound: every admissible schedule finishes by
    /// here. Finite whenever every flow has a positive floor rate.
    pub hi: f64,
    /// Critical-path length under `lo`-end task durations.
    pub cp_lo: f64,
    /// Critical-path length under `hi`-end task durations.
    pub cp_hi: f64,
    /// The chain attaining `cp_hi`, in dependency order.
    pub cp_witness: Vec<String>,
    /// Full-serialization upper bound (`sum d_hi`).
    pub serial_hi: f64,
    /// Graham bound (`cp_hi + work_hi / (pool - max_task_nodes + 1)`).
    pub graham_hi: f64,
    /// Worst-case node-seconds (`sum nodes * d_hi`).
    pub work_hi: f64,
    /// The usable node pool the bound is computed against.
    pub pool_nodes: u64,
    /// Largest single-task allocation.
    pub max_task_nodes: u64,
    /// Node-pool occupancy floor (`sum nodes * d_lo / pool`).
    pub pool_floor: f64,
    /// The pool floor with every channel flow priced at zero.
    pub pool_floor_fixed: f64,
    /// Lower bound with all channel flows priced at zero: what remains
    /// infeasible here is infeasible under *any* channel provisioning.
    pub lo_zero_channel: f64,
    /// Per-channel aggregate floors, in machine declaration order.
    pub channel_floors: Vec<ChannelFloor>,
    /// Workflow-level attribution: chain vs. channels vs. node pool.
    pub terms: Vec<TermBound>,
    /// Per-task intervals in spec order.
    pub tasks: Vec<TaskBound>,
}

impl Certificate {
    /// True when the interval is non-degenerate and finite on top.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }
}

/// Per-channel contention context shared by every flow on the channel.
struct ChannelCtx {
    /// Effective capacity (contention-scaled).
    capacity: f64,
    /// Max concurrent demands: co-schedulable flow tasks + background.
    n_tot: usize,
    /// Sum of the *finite* per-task caps plus background rates; a flow
    /// subtracts its own task's cap to get its `S_other`.
    finite_cap_sum: f64,
    /// Number of unbounded (infinite) per-task caps and background
    /// rates: any competitor without a cap voids the work-conservation
    /// refinement.
    inf_caps: usize,
    /// Total bytes through the channel (for the aggregate floor).
    bytes: f64,
}

/// Certifies `lo <= makespan <= hi` for `(machine, workflow, options)`.
/// Validation matches [`crate::simulate`] exactly: any scenario the
/// engine rejects is rejected here with the same error.
pub fn certify(
    machine: &Machine,
    workflow: &WorkflowSpec,
    options: &SimOptions,
) -> Result<Certificate, SimError> {
    let base = BaseIndex::build(machine, workflow)?;
    let overlay = IndexOverlay::build(&base, workflow, options)?;
    Ok(certify_indexed(workflow, options, &base, &overlay))
}

/// Like [`certify`] over a scenario.
pub fn certify_scenario(scenario: &Scenario) -> Result<Certificate, SimError> {
    certify(&scenario.machine, &scenario.workflow, &scenario.options)
}

/// [`certify`] against a prebuilt [`BaseIndex`] — the resident server's
/// certify path, where the index comes out of a cache instead of being
/// rebuilt per request. `base` must have been built from this
/// `(machine, workflow)` pair; results are bit-identical to [`certify`].
pub fn certify_with_base(
    workflow: &WorkflowSpec,
    options: &SimOptions,
    base: &BaseIndex,
) -> Result<Certificate, SimError> {
    let overlay = IndexOverlay::build(base, workflow, options)?;
    Ok(certify_indexed(workflow, options, base, &overlay))
}

/// Simulates and returns only the makespan: the oracle-side entry point
/// (skips the per-task result maps the full [`crate::simulate`] builds).
pub fn simulate_makespan(scenario: &Scenario) -> Result<f64, SimError> {
    let base = BaseIndex::build(&scenario.machine, &scenario.workflow)?;
    let overlay = IndexOverlay::build(&base, &scenario.workflow, &scenario.options)?;
    Engine::new(
        &scenario.workflow,
        &scenario.machine.name,
        &scenario.options,
        &base,
        &overlay,
    )
    .run_makespan()
}

fn certify_indexed(
    workflow: &WorkflowSpec,
    options: &SimOptions,
    base: &BaseIndex,
    overlay: &IndexOverlay,
) -> Certificate {
    let n = base.n_tasks();
    let pool = overlay.pool_total;
    let amplitude = options.jitter.map_or(0.0, |j| j.amplitude);

    // Per-channel contention context. A task with several flow phases on
    // one channel runs them sequentially, so it contributes one
    // concurrent demand (at its largest cap).
    let n_channels = overlay.channel_capacity.len();
    let mut task_cap_on: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); n];
    let mut channel_bytes = vec![0.0f64; n_channels];
    for (t, caps) in task_cap_on.iter_mut().enumerate() {
        for slot in base.phase_off[t] as usize..base.phase_off[t + 1] as usize {
            if let PhaseIx::Flow {
                channel,
                bytes,
                alloc_base,
                stream_base,
            } = base.phases[slot]
            {
                let f = overlay.channel_factor[channel as usize];
                let cap = (alloc_base * f).min(stream_base * f);
                let e = caps.entry(channel).or_insert(0.0);
                *e = e.max(cap);
                channel_bytes[channel as usize] += bytes.max(0.0);
            }
        }
    }
    let channels: Vec<ChannelCtx> = (0..n_channels)
        .map(|ch| {
            let nodes_on: Vec<u64> = (0..n)
                .filter(|&t| task_cap_on[t].contains_key(&(ch as u32)))
                .map(|t| base.nodes[t])
                .collect();
            let bg = &overlay.background[ch];
            let k_pool = wrm_dag::max_coschedulable(&nodes_on, pool);
            let mut finite_cap_sum = 0.0f64;
            let mut inf_caps = 0usize;
            for c in (0..n)
                .filter_map(|t| task_cap_on[t].get(&(ch as u32)))
                .chain(bg.iter())
            {
                if c.is_finite() {
                    finite_cap_sum += c;
                } else {
                    inf_caps += 1;
                }
            }
            ChannelCtx {
                capacity: overlay.channel_capacity[ch],
                n_tot: nodes_on.len().min(k_pool) + bg.len(),
                finite_cap_sum,
                inf_caps,
                bytes: channel_bytes[ch],
            }
        })
        .collect();

    // Per-phase duration intervals, aligned with `base.phases`.
    let mut phase_lo = vec![0.0f64; base.phases.len()];
    let mut phase_hi = vec![0.0f64; base.phases.len()];
    for (t, caps) in task_cap_on.iter().enumerate() {
        for slot in base.phase_off[t] as usize..base.phase_off[t + 1] as usize {
            let (lo, hi) = match base.phases[slot] {
                PhaseIx::Fixed { duration } => {
                    let d = duration.max(0.0);
                    (d * (1.0 - amplitude), d * (1.0 + amplitude))
                }
                PhaseIx::Flow {
                    channel,
                    bytes,
                    alloc_base,
                    stream_base,
                } => {
                    let ctx = &channels[channel as usize];
                    let f = overlay.channel_factor[channel as usize];
                    let cap = (alloc_base * f).min(stream_base * f);
                    let alone = cap.min(ctx.capacity);
                    let own = caps[&channel];
                    let floor = floor_rate(options.sharing, ctx, cap, own);
                    (flow_time(bytes, alone), flow_time(bytes, floor))
                }
            };
            phase_lo[slot] = lo;
            phase_hi[slot] = hi;
        }
    }

    // Per-task intervals and the fixed-only (channels-zeroed) variant.
    let mut d_lo = vec![0.0f64; n];
    let mut d_hi = vec![0.0f64; n];
    let mut d_fixed_lo = vec![0.0f64; n];
    for t in 0..n {
        for slot in base.phase_off[t] as usize..base.phase_off[t + 1] as usize {
            d_lo[t] += phase_lo[slot];
            d_hi[t] += phase_hi[slot];
            if matches!(base.phases[slot], PhaseIx::Fixed { .. }) {
                d_fixed_lo[t] += phase_lo[slot];
            }
        }
    }

    let (cp_lo, _) = longest_path(base, &d_lo);
    let (cp_hi, witness) = longest_path(base, &d_hi);
    let (cp_fixed_lo, _) = longest_path(base, &d_fixed_lo);

    let work_lo = wrm_dag::resource_work(&base.nodes, &d_lo);
    let work_hi = wrm_dag::resource_work(&base.nodes, &d_hi);
    let work_fixed_lo = wrm_dag::resource_work(&base.nodes, &d_fixed_lo);
    let pool_f = pool.max(1) as f64;
    let pool_floor = work_lo / pool_f;
    let pool_floor_fixed = work_fixed_lo / pool_f;

    let channel_floors: Vec<ChannelFloor> = (0..n_channels)
        .filter(|&ch| channels[ch].bytes > 0.0)
        .map(|ch| ChannelFloor {
            resource: base.channel_ids[ch].clone(),
            bytes: channels[ch].bytes,
            capacity: channels[ch].capacity,
            floor: flow_time(channels[ch].bytes, channels[ch].capacity),
        })
        .collect();
    let channel_floor_max = channel_floors.iter().map(|c| c.floor).fold(0.0, f64::max);

    let lo = cp_lo.max(channel_floor_max).max(pool_floor);
    let lo_zero_channel = cp_fixed_lo.max(pool_floor_fixed);

    let q_max = base.nodes.iter().copied().max().unwrap_or(0);
    // Validation guarantees pool >= q_max; the +1 keeps the divisor
    // positive even when one task spans the whole pool.
    let graham_div = (pool.saturating_sub(q_max) + 1) as f64;
    let serial_hi: f64 = d_hi.iter().sum();
    let graham_hi = cp_hi + work_hi / graham_div;
    let hi = serial_hi.min(graham_hi).max(lo);

    // Workflow-level attribution: the chain's contribution ranges over
    // [cp_lo, cp_hi]; the floors are exact.
    let mut term_data: Vec<(BoundClass, Option<String>, f64, f64)> =
        vec![(BoundClass::Chain, None, cp_lo, cp_hi)];
    for cf in &channel_floors {
        term_data.push((
            BoundClass::SystemChannel,
            Some(cf.resource.clone()),
            cf.floor,
            cf.floor,
        ));
    }
    term_data.push((BoundClass::NodePool, None, pool_floor, pool_floor));
    let terms = attribute(term_data);

    let tasks: Vec<TaskBound> = (0..n)
        .map(|t| TaskBound {
            name: workflow.tasks[t].name.clone(),
            nodes: base.nodes[t],
            lo: d_lo[t],
            hi: d_hi[t],
            terms: attribute(task_terms(workflow, base, t, &phase_lo, &phase_hi)),
        })
        .collect();

    Certificate {
        lo,
        hi,
        cp_lo,
        cp_hi,
        cp_witness: witness
            .into_iter()
            .map(|t| workflow.tasks[t].name.clone())
            .collect(),
        serial_hi,
        graham_hi,
        work_hi,
        pool_nodes: pool,
        max_task_nodes: q_max,
        pool_floor,
        pool_floor_fixed,
        lo_zero_channel,
        channel_floors,
        terms,
        tasks,
    }
}

/// The guaranteed floor rate of one flow whose own cap is `cap`, where
/// `own` is its task's largest cap on the channel (the task's entry in
/// the channel's cap sums).
fn floor_rate(sharing: Sharing, ctx: &ChannelCtx, cap: f64, own: f64) -> f64 {
    let equal_share = ctx.capacity / ctx.n_tot.max(1) as f64;
    match sharing {
        Sharing::MaxMin => {
            // Work conservation: the flow gets whatever the others'
            // caps leave over, if that beats the equal share. An
            // unbounded competitor voids the refinement (its demand can
            // absorb everything above the fair share).
            let others_inf = ctx.inf_caps - usize::from(!own.is_finite());
            let leftover = if others_inf > 0 {
                f64::NEG_INFINITY
            } else {
                let s_other = ctx.finite_cap_sum - if own.is_finite() { own } else { 0.0 };
                ctx.capacity - s_other
            };
            cap.min(equal_share.max(leftover))
        }
        // Equal split is not work-conserving: leftover capacity from
        // capped competitors is wasted, so only the 1/n share is
        // guaranteed.
        Sharing::EqualSplit => cap.min(equal_share),
    }
}

/// `bytes / rate` with the degenerate ends pinned: no bytes takes no
/// time, bytes with no rate never finish.
fn flow_time(bytes: f64, rate: f64) -> f64 {
    let bytes = bytes.max(0.0);
    if bytes == 0.0 {
        0.0
    } else if rate > 0.0 {
        bytes / rate
    } else {
        f64::INFINITY
    }
}

/// Longest path over the base CSR with the given per-task durations,
/// plus the argmax chain (ties resolve to the lowest task index, so the
/// witness is deterministic).
fn longest_path(base: &BaseIndex, dur: &[f64]) -> (f64, Vec<usize>) {
    let n = base.n_tasks();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let mut remaining = base.dep_count.clone();
    let mut start = vec![0.0f64; n];
    let mut end = vec![0.0f64; n];
    let mut via: Vec<Option<usize>> = vec![None; n];
    // Ascending-index processing for witness determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&t| remaining[t] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut visited = 0usize;
    while let Some(std::cmp::Reverse(t)) = ready.pop() {
        visited += 1;
        end[t] = start[t] + dur[t];
        let lo = base.dependents_off[t] as usize;
        let hi = base.dependents_off[t + 1] as usize;
        for &d in &base.dependents[lo..hi] {
            let du = d as usize;
            if end[t] > start[du] {
                start[du] = end[t];
                via[du] = Some(t);
            }
            remaining[du] -= 1;
            if remaining[du] == 0 {
                ready.push(std::cmp::Reverse(du));
            }
        }
    }
    debug_assert_eq!(visited, n, "spec validation rejects cycles");
    let last = (0..n)
        .max_by(|&a, &b| end[a].total_cmp(&end[b]).then(b.cmp(&a)))
        .expect("n > 0");
    let mut chain = vec![last];
    let mut cur = last;
    while let Some(p) = via[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    (end[last], chain)
}

/// Per-task phase-class decomposition: `(class, resource, lo, hi)` per
/// distinct (class, resource) pair, in class order.
fn task_terms(
    workflow: &WorkflowSpec,
    base: &BaseIndex,
    t: usize,
    phase_lo: &[f64],
    phase_hi: &[f64],
) -> Vec<(BoundClass, Option<String>, f64, f64)> {
    let mut agg: BTreeMap<(BoundClass, Option<String>), (f64, f64)> = BTreeMap::new();
    for (pi, phase) in workflow.tasks[t].phases.iter().enumerate() {
        let slot = base.phase_off[t] as usize + pi;
        let key = match phase {
            Phase::Compute { .. } => (BoundClass::Compute, None),
            Phase::NodeData { resource, .. } => (BoundClass::NodeResource, Some(resource.clone())),
            Phase::SystemData { resource, .. } => {
                (BoundClass::SystemChannel, Some(resource.clone()))
            }
            Phase::Overhead { .. } => (BoundClass::Overhead, None),
        };
        let e = agg.entry(key).or_insert((0.0, 0.0));
        e.0 += phase_lo[slot];
        e.1 += phase_hi[slot];
    }
    agg.into_iter()
        .map(|((class, resource), (lo, hi))| (class, resource, lo, hi))
        .collect()
}

/// Classifies a term decomposition on the binding lattice.
fn attribute(data: Vec<(BoundClass, Option<String>, f64, f64)>) -> Vec<TermBound> {
    let intervals: Vec<(f64, f64)> = data.iter().map(|&(_, _, lo, hi)| (lo, hi)).collect();
    let strengths = classify_terms(&intervals);
    data.into_iter()
        .zip(strengths)
        .map(|((class, resource, lo, hi), s)| TermBound {
            class: class.as_str().to_owned(),
            resource,
            lo,
            hi,
            binds: s.as_str().to_owned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use wrm_core::machines;

    fn lcls_like(streams: usize) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("lcls-lite");
        for i in 0..streams {
            wf = wf.task(
                TaskSpec::new(format!("analyze[{i}]"), 32).phase(Phase::SystemData {
                    resource: wrm_core::ids::EXTERNAL.into(),
                    bytes: 1e12,
                    stream_cap: Some(1e9),
                }),
            );
        }
        wf
    }

    #[test]
    fn brackets_the_capped_stream_case() {
        let machine = machines::cori_haswell();
        let wf = lcls_like(5);
        let scenario = Scenario::new(machine.clone(), wf.clone());
        let cert = certify(&machine, &wf, &SimOptions::default()).unwrap();
        let makespan = simulate(&scenario).unwrap().makespan;
        assert!(
            cert.lo * (1.0 - 1e-6) <= makespan,
            "{} > {makespan}",
            cert.lo
        );
        assert!(makespan <= cert.hi, "{makespan} > {}", cert.hi);
        assert!(cert.hi.is_finite());
        // Five capped 1 GB/s streams on a 5 GB/s link: the caps prevent
        // any contention slowdown, so `hi` is the Graham bound
        // `cp_hi + W_hi / (P - q_max + 1)` with cp_hi = 1000 s.
        assert!((cert.lo - 1000.0).abs() < 1e-6, "{}", cert.lo);
        assert_eq!(cert.hi, cert.graham_hi);
        let slack = 5.0 * 32.0 * 1000.0 / (cert.pool_nodes - 32 + 1) as f64;
        assert!((cert.hi - (1000.0 + slack)).abs() < 1e-6, "{}", cert.hi);
    }

    #[test]
    fn uncapped_contention_stays_bracketed() {
        // Two uncapped 1 TB transfers on cori's 5 GB/s ext channel:
        // alone 200 s each, fair-shared 400 s each; the floor rate is
        // C/2 so hi covers the contended schedule.
        let machine = machines::cori_haswell();
        let wf = WorkflowSpec::new("pair")
            .task(TaskSpec::new("a", 1).phase(Phase::system_data(wrm_core::ids::EXTERNAL, 1e12)))
            .task(TaskSpec::new("b", 1).phase(Phase::system_data(wrm_core::ids::EXTERNAL, 1e12)));
        let cert = certify(&machine, &wf, &SimOptions::default()).unwrap();
        let makespan = simulate(&Scenario::new(machine, wf)).unwrap().makespan;
        // Aggregate floor: 2 TB / 5 GB/s = 400 s = the actual makespan.
        assert!((cert.lo - 400.0).abs() < 1e-6, "{}", cert.lo);
        assert!(cert.lo * (1.0 - 1e-6) <= makespan && makespan <= cert.hi);
    }

    #[test]
    fn certification_matches_simulate_validation() {
        let machine = machines::cori_haswell();
        let wf = WorkflowSpec::new("bad")
            .task(TaskSpec::new("x", 1).phase(Phase::system_data("nope", 1e9)));
        let cert_err = certify(&machine, &wf, &SimOptions::default()).unwrap_err();
        let sim_err = simulate(&Scenario::new(machine, wf)).unwrap_err();
        assert_eq!(cert_err, sim_err);
    }

    #[test]
    fn zero_channel_bound_ignores_flows() {
        let machine = machines::cori_haswell();
        let wf = WorkflowSpec::new("mixed")
            .task(
                TaskSpec::new("fetch", 1).phase(Phase::system_data(wrm_core::ids::EXTERNAL, 1e12)),
            )
            .task(
                TaskSpec::new("crunch", 1)
                    .after("fetch")
                    .phase(Phase::overhead("think", 50.0)),
            );
        let cert = certify(&machine, &wf, &SimOptions::default()).unwrap();
        assert!(cert.lo >= 200.0, "flow dominates lo: {}", cert.lo);
        assert!((cert.lo_zero_channel - 50.0).abs() < 1e-9);
    }

    #[test]
    fn certificate_is_deterministic() {
        let machine = machines::cori_haswell();
        let wf = lcls_like(3);
        let a = certify(&machine, &wf, &SimOptions::default()).unwrap();
        let b = certify(&machine, &wf, &SimOptions::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn makespan_only_entry_point_matches_full_simulation() {
        let machine = machines::cori_haswell();
        let wf = lcls_like(4);
        let scenario = Scenario::new(machine, wf);
        let full = simulate(&scenario).unwrap().makespan;
        let fast = simulate_makespan(&scenario).unwrap();
        assert_eq!(full.to_bits(), fast.to_bits());
    }

    #[test]
    fn jitter_widens_fixed_phases_only() {
        let machine = machines::perlmutter_cpu();
        let wf = WorkflowSpec::new("j").task(
            TaskSpec::new("a", 1)
                .phase(Phase::overhead("o", 100.0))
                .phase(Phase::system_data(wrm_core::ids::FILE_SYSTEM, 1e9)),
        );
        let opts = SimOptions {
            jitter: Some(crate::engine::Jitter {
                seed: 7,
                amplitude: 0.2,
            }),
            ..SimOptions::default()
        };
        let cert = certify(&machine, &wf, &opts).unwrap();
        let t = &cert.tasks[0];
        let overhead = t.terms.iter().find(|x| x.class == "overhead").unwrap();
        assert!((overhead.lo - 80.0).abs() < 1e-9 && (overhead.hi - 120.0).abs() < 1e-9);
        let flow = t
            .terms
            .iter()
            .find(|x| x.class == "system-channel")
            .unwrap();
        assert!((flow.lo - flow.hi).abs() < 1e-12, "flows are not jittered");
    }
}
