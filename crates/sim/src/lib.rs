//! # wrm-sim — a discrete-event HPC system simulator
//!
//! The measurement substrate of this reproduction: where the paper runs
//! LCLS, BerkeleyGW, CosmoFlow and GPTune on Perlmutter and Cori, we
//! execute phase-structured workflow specifications ([`WorkflowSpec`])
//! against a machine model (`wrm_core::Machine`) and obtain traces with
//! the same bottleneck structure:
//!
//! * node-local phases (compute, HBM/DRAM/PCIe traffic) run at
//!   efficiency-scaled peak rates of the task's node allocation;
//! * shared-system phases (file system, external links, interconnect)
//!   are fluid flows on shared channels with **max–min fair sharing**
//!   ([`channel`]) — contention emerges, and can also be injected
//!   ([`SimOptions::contention`], the LCLS "bad days");
//! * a Slurm-like FIFO/backfill scheduler allocates nodes
//!   ([`SchedulerPolicy`]);
//! * fixed overhead phases model control flow (bash, python, srun) —
//!   the GPTune pattern.
//!
//! Results come back as `wrm_trace::Trace`s, so simulated runs feed the
//! Workflow Roofline Model exactly like real measurements would.
//!
//! ```
//! use wrm_sim::{simulate, Phase, Scenario, TaskSpec, WorkflowSpec};
//! use wrm_core::{ids, machines};
//!
//! // Five LCLS-like analyses, each pulling 1 TB over a 1 GB/s stream.
//! let mut wf = WorkflowSpec::new("lcls-lite");
//! for i in 0..5 {
//!     wf = wf.task(TaskSpec::new(format!("analyze[{i}]"), 32).phase(
//!         Phase::SystemData {
//!             resource: ids::EXTERNAL.into(),
//!             bytes: 1e12,
//!             stream_cap: Some(1e9),
//!         },
//!     ));
//! }
//! let result = simulate(&Scenario::new(machines::cori_haswell(), wf)).unwrap();
//! assert!((result.makespan - 1000.0).abs() < 1.0); // 1 TB @ 1 GB/s each
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
mod calendar;
pub mod channel;
pub mod engine;
mod fastpath;
pub mod incremental;
mod index;
pub mod mc;
mod overlay;
#[cfg(any(test, feature = "reference-engine"))]
pub mod reference;
pub mod spec;
pub mod sweep;

pub use bounds::{
    certify, certify_scenario, certify_with_base, simulate_makespan, Certificate, ChannelFloor,
    TaskBound, TermBound,
};
pub use calendar::CalendarKind;
pub use channel::{
    equal_split_rates, equal_split_rates_into, max_min_rates, max_min_rates_into, FlowDemand,
    FlowRate, RateScratch, Sharing,
};
pub use engine::{
    simulate, simulate_in, simulate_summary, simulate_summary_in, simulate_summary_with_base,
    simulate_with_base, simulate_with_calendar, BackgroundFlow, ChannelSummary, Jitter, RunMode,
    Scenario, SchedulerPolicy, SimArena, SimError, SimOptions, SimResult, SimSummary,
};
pub use incremental::{
    sweep_column, sweep_grid, sweep_grid_with_base, IndexedResult, SweepGrid, SweepOutcome,
    SweepStats,
};
pub use index::BaseIndex;
pub use mc::{mc_run, mc_run_with_base, McOptions, McResult, Percentile, RepClaim};
pub use spec::{Phase, PhaseDist, SpecError, TaskSpec, WorkflowSpec};
pub use sweep::{effective_workers, run_all, run_all_chunked, sweep, ChunkClaim};
