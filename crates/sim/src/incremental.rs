//! The incremental sweep engine: shared-index overlays, the analytic
//! fast path, and delta re-simulation over a parameter grid.
//!
//! `wrm sweep` evaluates a full cross product of contention factors,
//! node limits and scheduler policies over one workflow. Running each
//! grid point through [`crate::simulate`] repeats almost all of the
//! work: the topology/duration index is identical everywhere, and
//! adjacent points differ in a single knob. [`sweep_grid`] exploits that
//! structure three ways, strongest first:
//!
//! 1. **One base index per sweep.** [`BaseIndex`] (topology, the
//!    dependents CSR, durations) is built once; each point only builds
//!    a tiny [`IndexOverlay`] (channel capacities/factors, pool size,
//!    background demands) on top of it — bit-identical to a cold build,
//!    which `overlay::tests` proves.
//! 2. **Analytic fast path.** Points whose overlay yields no channel
//!    contention and no node queueing skip the DES entirely
//!    ([`crate::fastpath`]): the makespan is a longest-path over the
//!    base CSR, exact to the bit.
//! 3. **Delta re-simulation.** Points are evaluated in *column* order —
//!    one column per `(node_limit, policy)` pair, contention factor
//!    varying innermost — so consecutive DES points differ only in the
//!    swept resource's factor. The first DES run in a column watches the
//!    swept channel and reports the event-loop iteration of its first
//!    member join; until that iteration the channel has no members, so
//!    its capacity and factor are never read and the engine state is
//!    provably factor-independent. The column then checkpoints one
//!    engine at that iteration ([`Engine::pause_at`]) and replays only
//!    the suffix per factor ([`Engine::resume_with`]). When the watched
//!    channel never joins at all, the factor provably never matters and
//!    the first result is reused outright.
//!
//! Changing the *node limit* re-runs the DES cold (one run per column at
//! most): a pool change can matter from the very first allocation, so
//! there is no comparable prefix to share, and in practice the fast path
//! already absorbs the uncontended majority of the node-limit axis.
//!
//! Every path is exact — [`SweepOutcome::results`] is bit-identical to
//! running [`crate::simulate`] per point (and, transitively, to
//! `wrm_sim::reference`), which the oracle proptest below enforces. Only
//! trace span *order* within one completion instant may differ between
//! paths; the `Trace` contract leaves that order unspecified.

use crate::engine::{
    run_point_in, Engine, Scenario, SchedulerPolicy, SimArena, SimError, SimResult,
};
use crate::fastpath::try_fastpath;
use crate::index::BaseIndex;
use crate::overlay::IndexOverlay;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The cross product a sweep evaluates: `factors x node_limits x
/// policies`, applied to a base scenario.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// The shared resource the contention factors apply to (`None`
    /// leaves the base options' contention untouched, making the factor
    /// axis degenerate).
    pub resource: Option<String>,
    /// Contention factors for `resource`.
    pub factors: Vec<f64>,
    /// Node-limit values (`None` = the machine's full pool).
    pub node_limits: Vec<Option<u64>>,
    /// Scheduler policies.
    pub policies: Vec<SchedulerPolicy>,
}

impl SweepGrid {
    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factors.len() * self.node_limits.len() * self.policies.len()
    }

    /// True when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical result index of grid point `(fi, ni, pi)`: factor
    /// major, policy minor — the order a nested
    /// `factors / node_limits / policies` loop visits cells.
    #[must_use]
    pub fn index_of(&self, fi: usize, ni: usize, pi: usize) -> usize {
        (fi * self.node_limits.len() + ni) * self.policies.len() + pi
    }

    /// The per-point options: the base options with this point's factor,
    /// node limit and policy applied.
    #[must_use]
    pub fn point_options(
        &self,
        base: &crate::engine::SimOptions,
        fi: usize,
        ni: usize,
        pi: usize,
    ) -> crate::engine::SimOptions {
        let mut opts = base.clone();
        if let Some(res) = &self.resource {
            opts = opts.with_contention(res.clone(), self.factors[fi]);
        }
        opts.node_limit = self.node_limits[ni];
        opts.scheduler = self.policies[pi];
        opts
    }
}

/// How the points of a sweep were evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Points answered analytically (no DES run).
    pub fastpath: usize,
    /// Points answered by replaying a checkpointed engine's suffix.
    pub replayed: usize,
    /// Points answered by a full cold DES run.
    pub cold: usize,
    /// Points that reused a cold result verbatim (the swept channel
    /// never acquired a member, so the factor provably had no effect).
    pub reused: usize,
    /// Points that failed validation (per-point error in `results`).
    pub errors: usize,
}

impl SweepStats {
    fn absorb(&mut self, other: SweepStats) {
        self.fastpath += other.fastpath;
        self.replayed += other.replayed;
        self.cold += other.cold;
        self.reused += other.reused;
        self.errors += other.errors;
    }
}

/// A completed sweep: per-point results in [`SweepGrid::index_of`]
/// order, plus evaluation-path statistics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per grid point, bit-identical to
    /// [`crate::simulate`] on that point's scenario.
    pub results: Vec<Result<SimResult, SimError>>,
    /// How the points were evaluated.
    pub stats: SweepStats,
}

/// How a column answers DES-requiring points after its first one.
enum DesState<'e> {
    /// No DES point evaluated yet.
    NotRun,
    /// The watched channel never joined: the factor cannot matter, reuse
    /// the first result.
    Reuse(Box<Result<SimResult, SimError>>),
    /// Engine checkpointed just before the swept channel's first join;
    /// replay the suffix per overlay.
    Paused(Box<Engine<'e>>),
    /// Checkpointing failed (defensive); run every point cold.
    Cold,
}

/// Evaluates the full grid over `scenario`, using up to `threads` worker
/// threads (one column — a `(node_limit, policy)` pair — per work unit).
///
/// `threads == 0` means auto: one worker per available CPU, capped at
/// the column count; explicit values are also capped at the host's
/// available parallelism (see [`crate::sweep::effective_workers`]).
///
/// Results are returned in [`SweepGrid::index_of`] order regardless of
/// `threads`, and every result is bit-identical to calling
/// [`crate::simulate`] with that point's options.
#[must_use]
pub fn sweep_grid(scenario: &Scenario, grid: &SweepGrid, threads: usize) -> SweepOutcome {
    let n = grid.len();
    if n == 0 {
        return SweepOutcome {
            results: Vec::new(),
            stats: SweepStats::default(),
        };
    }

    let base = match BaseIndex::build(&scenario.machine, &scenario.workflow) {
        Ok(b) => b,
        Err(e) => {
            // The spec itself is invalid: every point fails identically,
            // exactly as per-point simulate() calls would.
            return SweepOutcome {
                results: (0..n).map(|_| Err(e.clone())).collect(),
                stats: SweepStats {
                    errors: n,
                    ..SweepStats::default()
                },
            };
        }
    };
    sweep_grid_with_base(scenario, grid, threads, &base)
}

/// [`sweep_grid`] against a prebuilt [`BaseIndex`] — the resident
/// server's sweep path, where the base comes out of the index cache
/// instead of being compiled per request. `base` must have been built
/// from this scenario's `(machine, workflow)` pair.
#[must_use]
pub fn sweep_grid_with_base(
    scenario: &Scenario,
    grid: &SweepGrid,
    threads: usize,
    base: &BaseIndex,
) -> SweepOutcome {
    let n = grid.len();
    if n == 0 {
        return SweepOutcome {
            results: Vec::new(),
            stats: SweepStats::default(),
        };
    }

    let columns: Vec<(usize, usize)> = (0..grid.node_limits.len())
        .flat_map(|ni| (0..grid.policies.len()).map(move |pi| (ni, pi)))
        .collect();

    let workers = crate::sweep::effective_workers(threads, columns.len());
    let mut results: Vec<Option<Result<SimResult, SimError>>> = (0..n).map(|_| None).collect();
    let mut stats = SweepStats::default();

    if workers == 1 {
        let mut arena = SimArena::new();
        for &(ni, pi) in &columns {
            let (out, col_stats) = sweep_column(scenario, grid, base, ni, pi, &mut arena);
            stats.absorb(col_stats);
            for (i, r) in out {
                results[i] = Some(r);
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let worker_outputs = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut out = Vec::new();
                        let mut local = SweepStats::default();
                        // One arena per worker: cold DES runs across all
                        // of this worker's columns share warmed buffers.
                        let mut arena = SimArena::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= columns.len() {
                                break;
                            }
                            let (ni, pi) = columns[c];
                            let (col, col_stats) =
                                sweep_column(scenario, grid, base, ni, pi, &mut arena);
                            local.absorb(col_stats);
                            out.extend(col);
                        }
                        (out, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(std::thread::ScopedJoinHandle::join)
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        for joined in worker_outputs {
            let (out, local) = joined.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            stats.absorb(local);
            for (i, r) in out {
                results[i] = Some(r);
            }
        }
    }

    SweepOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every grid point was evaluated"))
            .collect(),
        stats,
    }
}

/// One evaluated grid point: its `SweepGrid::index_of` slot and result.
pub type IndexedResult = (usize, Result<SimResult, SimError>);

/// Evaluates one `(node_limit, policy)` column across all factors:
/// fastpath-first, then cold / checkpoint-replay / reuse as the column's
/// structure allows. Returns `(SweepGrid::index_of slot, result)` pairs
/// plus path statistics.
///
/// Public so external schedulers (the `wrm serve` worker pool) can
/// dispatch one column per job against a shared cached [`BaseIndex`]
/// and stream results as columns complete; `base` must have been built
/// from this scenario's `(machine, workflow)` pair.
pub fn sweep_column(
    scenario: &Scenario,
    grid: &SweepGrid,
    base: &BaseIndex,
    ni: usize,
    pi: usize,
    arena: &mut SimArena,
) -> (Vec<IndexedResult>, SweepStats) {
    // Prebuilt per-point options and overlays, so the engines (and the
    // checkpoint) can borrow them for the whole column.
    let points: Vec<(crate::engine::SimOptions, Result<IndexOverlay, SimError>)> =
        (0..grid.factors.len())
            .map(|fi| {
                let opts = grid.point_options(&scenario.options, fi, ni, pi);
                let overlay = IndexOverlay::build(base, &scenario.workflow, &opts);
                (opts, overlay)
            })
            .collect();

    let watch = grid
        .resource
        .as_ref()
        .and_then(|r| base.channel_idx.get(r.as_str()).copied());

    let mut out = Vec::with_capacity(points.len());
    let mut stats = SweepStats::default();
    let mut des = DesState::NotRun;

    for (fi, (opts, overlay)) in points.iter().enumerate() {
        let ix = grid.index_of(fi, ni, pi);
        let r = match overlay {
            Err(e) => {
                stats.errors += 1;
                Err(e.clone())
            }
            Ok(ov) => {
                if let Some(fast) =
                    try_fastpath(&scenario.workflow, &scenario.machine.name, opts, base, ov)
                {
                    stats.fastpath += 1;
                    Ok(fast)
                } else {
                    let cold =
                        || Engine::new(&scenario.workflow, &scenario.machine.name, opts, base, ov);
                    match &des {
                        DesState::NotRun => {
                            let mut eng = cold();
                            if let Some(ch) = watch {
                                eng = eng.with_watch(ch);
                            }
                            let (res, hit) = eng.run_watched();
                            stats.cold += 1;
                            des = match hit {
                                None => DesState::Reuse(Box::new(res.clone())),
                                Some(k) => match cold().pause_at(k) {
                                    Ok(p) => DesState::Paused(Box::new(p)),
                                    Err(_) => DesState::Cold,
                                },
                            };
                            res
                        }
                        DesState::Reuse(saved) => {
                            stats.reused += 1;
                            saved.as_ref().clone()
                        }
                        DesState::Paused(p) => {
                            stats.replayed += 1;
                            p.resume_with(ov).run()
                        }
                        DesState::Cold => {
                            stats.cold += 1;
                            run_point_in(
                                &scenario.workflow,
                                &scenario.machine.name,
                                opts,
                                base,
                                ov,
                                arena,
                            )
                        }
                    }
                }
            }
        };
        out.push((ix, r));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::{sweep_grid, SweepGrid};
    use crate::engine::{simulate, Scenario, SchedulerPolicy, SimOptions, SimResult};
    use crate::reference::simulate_reference;
    use crate::spec::{Phase, TaskSpec, WorkflowSpec};
    use proptest::prelude::*;
    use wrm_core::machines;

    /// Sorts spans (the one representation detail the evaluation paths
    /// may legitimately order differently within a completion instant)
    /// and leaves every scalar under exact equality.
    fn canonicalize(mut r: SimResult) -> SimResult {
        r.trace.spans.sort_by(|a, b| {
            a.task
                .cmp(&b.task)
                .then(a.start.total_cmp(&b.start))
                .then(a.end.total_cmp(&b.end))
        });
        r
    }

    /// Asserts the incremental sweep is bit-identical to per-point
    /// `simulate` and to the reference engine on every grid point.
    fn assert_oracle(scenario: &Scenario, grid: &SweepGrid, threads: usize) {
        let outcome = sweep_grid(scenario, grid, threads);
        assert_eq!(outcome.results.len(), grid.len());
        let n_paths = outcome.stats.fastpath
            + outcome.stats.replayed
            + outcome.stats.cold
            + outcome.stats.reused
            + outcome.stats.errors;
        assert_eq!(n_paths, grid.len(), "stats cover every point");
        for fi in 0..grid.factors.len() {
            for ni in 0..grid.node_limits.len() {
                for pi in 0..grid.policies.len() {
                    let ix = grid.index_of(fi, ni, pi);
                    let opts = grid.point_options(&scenario.options, fi, ni, pi);
                    let point = Scenario {
                        machine: scenario.machine.clone(),
                        workflow: scenario.workflow.clone(),
                        options: opts,
                    };
                    let expect = simulate(&point);
                    let refr = simulate_reference(&point);
                    match (&outcome.results[ix], expect, refr) {
                        (Ok(got), Ok(want), Ok(want_ref)) => {
                            assert_eq!(
                                canonicalize(got.clone()),
                                canonicalize(want),
                                "point {ix} (fi={fi} ni={ni} pi={pi}) vs simulate"
                            );
                            assert_eq!(
                                canonicalize(got.clone()),
                                canonicalize(want_ref),
                                "point {ix} vs reference"
                            );
                        }
                        (Err(got), Err(want), Err(want_ref)) => {
                            assert_eq!(got, &want, "point {ix} error vs simulate");
                            assert_eq!(got, &want_ref, "point {ix} error vs reference");
                        }
                        (got, want, want_ref) => {
                            panic!("point {ix} disagreement: {got:?} vs {want:?} / {want_ref:?}")
                        }
                    }
                }
            }
        }
    }

    /// A workflow with both contended and uncontended regions, so a
    /// factor sweep exercises the fast path, the replay path and the
    /// reuse path.
    fn mixed_workflow() -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("mixed");
        for i in 0..6 {
            wf = wf.task(
                TaskSpec::new(format!("sim{i}"), 16)
                    .phase(Phase::overhead("setup", 5.0 + f64::from(i)))
                    .phase(Phase::Compute {
                        flops: 2e13,
                        efficiency: 0.4,
                    }),
            );
        }
        // A contended egress stage at the end: five unbounded flows on
        // the external link, fed by the compute stage.
        for i in 0..5 {
            wf = wf.task(
                TaskSpec::new(format!("push{i}"), 4)
                    .after(format!("sim{i}"))
                    .phase(Phase::SystemData {
                        resource: wrm_core::ids::EXTERNAL.into(),
                        bytes: 2e11,
                        stream_cap: None,
                    }),
            );
        }
        wf
    }

    #[test]
    fn grid_matches_per_point_simulate_and_reference() {
        let scenario = Scenario::new(machines::cori_haswell(), mixed_workflow());
        let grid = SweepGrid {
            resource: Some(wrm_core::ids::EXTERNAL.into()),
            factors: vec![0.2, 0.5, 1.0, 2.0],
            node_limits: vec![None, Some(64), Some(24)],
            policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
        };
        assert_oracle(&scenario, &grid, 1);
    }

    #[test]
    fn replay_path_engages_on_contended_columns() {
        let scenario = Scenario::new(machines::cori_haswell(), mixed_workflow());
        let grid = SweepGrid {
            resource: Some(wrm_core::ids::EXTERNAL.into()),
            factors: vec![0.25, 0.5, 0.75, 1.0, 1.5],
            node_limits: vec![None],
            policies: vec![SchedulerPolicy::Fifo],
        };
        let outcome = sweep_grid(&scenario, &grid, 1);
        assert!(
            outcome.stats.replayed > 0,
            "expected checkpoint replays, got {:?}",
            outcome.stats
        );
        assert_eq!(outcome.stats.cold, 1, "one cold run per column");
        assert_oracle(&scenario, &grid, 1);
    }

    #[test]
    fn reuse_path_engages_when_factor_cannot_matter() {
        // No task touches the external link, so the watched channel
        // never joins and one cold run serves the whole factor axis.
        let mut wf = WorkflowSpec::new("no-ext");
        for i in 0..4 {
            wf = wf.task(TaskSpec::new(format!("t{i}"), 512).phase(Phase::overhead("work", 10.0)));
        }
        let scenario = Scenario::new(machines::cori_haswell(), wf);
        let grid = SweepGrid {
            resource: Some(wrm_core::ids::EXTERNAL.into()),
            factors: vec![0.1, 0.5, 1.0, 5.0],
            // A tight pool forces queueing, so the fast path stays out
            // of the way and the reuse path must carry the column.
            node_limits: vec![Some(1024)],
            policies: vec![SchedulerPolicy::Fifo],
        };
        let outcome = sweep_grid(&scenario, &grid, 1);
        assert_eq!(outcome.stats.cold, 1);
        assert_eq!(outcome.stats.reused, 3);
        assert_oracle(&scenario, &grid, 1);
    }

    #[test]
    fn threads_do_not_change_results_or_stats() {
        let scenario = Scenario::new(machines::perlmutter_cpu(), mixed_workflow());
        let grid = SweepGrid {
            resource: Some(wrm_core::ids::EXTERNAL.into()),
            factors: vec![0.3, 1.0, 1.3],
            node_limits: vec![None, Some(40)],
            policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
        };
        let serial = sweep_grid(&scenario, &grid, 1);
        let parallel = sweep_grid(&scenario, &grid, 4);
        assert_eq!(serial.stats, parallel.stats);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (s, p) in serial.results.iter().zip(parallel.results.iter()) {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(canonicalize(a.clone()), canonicalize(b.clone()));
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("thread-count divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn invalid_spec_errors_every_point() {
        let wf = WorkflowSpec::new("dangling").task(
            TaskSpec::new("t", 1)
                .after("missing")
                .phase(Phase::overhead("o", 1.0)),
        );
        let scenario = Scenario::new(machines::cori_haswell(), wf);
        let grid = SweepGrid {
            resource: None,
            factors: vec![1.0, 2.0],
            node_limits: vec![None],
            policies: vec![SchedulerPolicy::Fifo],
        };
        let outcome = sweep_grid(&scenario, &grid, 1);
        assert_eq!(outcome.results.len(), 2);
        assert_eq!(outcome.stats.errors, 2);
        for (r, want) in outcome.results.iter().zip([
            simulate(&Scenario {
                machine: scenario.machine.clone(),
                workflow: scenario.workflow.clone(),
                options: grid.point_options(&scenario.options, 0, 0, 0),
            }),
            simulate(&Scenario {
                machine: scenario.machine.clone(),
                workflow: scenario.workflow.clone(),
                options: grid.point_options(&scenario.options, 1, 0, 0),
            }),
        ]) {
            assert_eq!(r.as_ref().err(), want.err().as_ref());
        }
    }

    /// Random-workflow generator mixing overheads, compute, capped and
    /// uncapped external flows, and dependencies — enough variety to hit
    /// the fast path, replay, reuse, errors and both schedulers.
    fn random_workflow(seed: u64, n_tasks: usize) -> WorkflowSpec {
        let mut s = seed;
        let mut split = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut wf = WorkflowSpec::new(format!("rand[{seed}]"));
        for i in 0..n_tasks {
            let nodes = 1 + split() % 48;
            let mut t = TaskSpec::new(format!("t{i}"), nodes);
            for _ in 0..(split() % 3) {
                t = match split() % 4 {
                    0 => t.phase(Phase::overhead("o", (1 + split() % 300) as f64 / 10.0)),
                    1 => t.phase(Phase::Compute {
                        flops: (1 + split() % 500) as f64 * 1e12,
                        efficiency: 0.2 + (split() % 100) as f64 / 150.0,
                    }),
                    2 => t.phase(Phase::SystemData {
                        resource: wrm_core::ids::EXTERNAL.into(),
                        bytes: (1 + split() % 300) as f64 * 1e9,
                        stream_cap: Some((1 + split() % 20) as f64 * 1e8),
                    }),
                    _ => t.phase(Phase::SystemData {
                        resource: wrm_core::ids::EXTERNAL.into(),
                        bytes: (1 + split() % 300) as f64 * 1e9,
                        stream_cap: None,
                    }),
                };
            }
            if i > 0 {
                for _ in 0..(split() % 3).min(i as u64) {
                    let d = (split() as usize) % i;
                    t = t.after(format!("t{d}"));
                }
            }
            wf = wf.task(t);
        }
        wf
    }

    proptest! {
        /// The tentpole oracle: on random workflows and random small
        /// grids, the incremental sweep (serial and threaded) matches
        /// per-point `simulate` and `simulate_reference` bit for bit.
        #[test]
        fn incremental_sweep_matches_oracles(
            seed in any::<u64>(),
            n_tasks in 1usize..8,
            machine_ix in 0usize..2,
            threads in 1usize..4,
            tight_pool in any::<bool>(),
        ) {
            let machine = if machine_ix == 0 {
                machines::cori_haswell()
            } else {
                machines::perlmutter_cpu()
            };
            let wf = random_workflow(seed, n_tasks);
            let scenario = Scenario::new(machine, wf).with_options(SimOptions::default());
            let node_limit = if tight_pool { Some(64) } else { None };
            let grid = SweepGrid {
                resource: Some(wrm_core::ids::EXTERNAL.into()),
                factors: vec![0.5, 1.0, 1.7],
                node_limits: vec![None, node_limit],
                policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
            };
            assert_oracle(&scenario, &grid, threads);
        }
    }
}
