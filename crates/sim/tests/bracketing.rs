//! The simulator-bracketing oracle.
//!
//! The certificate's whole value is the two-sided guarantee
//! `lo <= makespan <= hi` for the *same* scenario the discrete-event
//! engine runs. These tests enforce that bracket against the DES on
//! randomly generated layered DAGs (arbitrary widths, node counts,
//! mixed phase types, caps, jitter, background traffic, both sharing
//! disciplines and both scheduler policies) and across a full 8x8
//! contention x node-limit sweep grid, so a regression in either the
//! bounds or the engine breaks the build rather than a paper claim.
//!
//! Tolerances: the engine finishes flows up to 1e-9 *relative* early
//! (event-horizon rounding), so the lower check allows `lo * (1-1e-6)`;
//! the upper check allows the same hair above `hi`.

use proptest::prelude::*;
use wrm_core::{ids, BytesPerSec, FlopsPerSec, Machine, Rate};
use wrm_dag::generate::random_layered_tasks;
use wrm_sim::{
    certify_scenario, simulate_makespan, simulate_summary, Jitter, Phase, Scenario,
    SchedulerPolicy, Sharing, SimOptions, SweepGrid, TaskSpec, WorkflowSpec,
};

fn machine(pool: u64, fs_gbps: f64) -> Machine {
    Machine::builder("oracle", pool)
        .node(
            ids::COMPUTE,
            "CPU",
            Rate::FlopsPerSec(FlopsPerSec::tflops(1.0)),
        )
        .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(fs_gbps))
        .build()
        .unwrap()
}

/// A generated layered workload with a mix of overhead, compute, and
/// (possibly capped) flow phases hung off the DAG skeleton.
fn workload(seed: u64, n_tasks: usize, max_width: usize, bytes_per_task: f64) -> WorkflowSpec {
    let tasks = random_layered_tasks(seed, n_tasks, max_width, 8, 30.0);
    let mut wf = WorkflowSpec::new(format!("gen[{seed}]"));
    for (i, t) in tasks.iter().enumerate() {
        let mut spec = TaskSpec::new(&t.name, t.nodes);
        spec = match i % 4 {
            0 => spec
                .phase(Phase::overhead("setup", t.duration))
                .phase(Phase::system_data(ids::FILE_SYSTEM, bytes_per_task)),
            1 => spec.phase(Phase::SystemData {
                resource: ids::FILE_SYSTEM.into(),
                bytes: bytes_per_task,
                stream_cap: Some(1e9 * (1.0 + (i % 3) as f64)),
            }),
            2 => spec
                .phase(Phase::compute(t.duration * 1e12))
                .phase(Phase::overhead("teardown", 1.0)),
            _ => spec.phase(Phase::overhead("work", t.duration)),
        };
        for &d in &t.deps {
            spec = spec.after(tasks[d].name.clone());
        }
        wf = wf.task(spec);
    }
    wf
}

fn assert_bracketed(scenario: &Scenario, what: &str) {
    let cert = match certify_scenario(scenario) {
        Ok(c) => c,
        Err(cert_err) => {
            // The certificate must reject exactly what the engine
            // rejects — never certify an unrunnable spec.
            let sim_err = simulate_makespan(scenario).unwrap_err();
            assert_eq!(cert_err, sim_err, "{what}: error parity");
            return;
        }
    };
    let makespan = simulate_makespan(scenario).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(
        cert.hi.is_finite(),
        "{what}: hi must be finite, got {}",
        cert.hi
    );
    assert!(
        cert.lo * (1.0 - 1e-6) <= makespan,
        "{what}: lo {} > makespan {makespan}",
        cert.lo
    );
    assert!(
        makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
        "{what}: makespan {makespan} > hi {}",
        cert.hi
    );
}

proptest! {
    #[test]
    fn random_layered_dags_stay_bracketed(
        seed in any::<u64>(),
        n_tasks in 1usize..20,
        max_width in 1usize..6,
        pool in 8u64..64,
        fs_gbps in 0.5f64..50.0,
        bytes_exp in 8.0f64..12.0,
    ) {
        let wf = workload(seed, n_tasks, max_width, 10f64.powf(bytes_exp));
        let scenario = Scenario::new(machine(pool, fs_gbps), wf);
        assert_bracketed(&scenario, "plain");
    }

    #[test]
    fn option_knobs_never_escape_the_bracket(
        seed in any::<u64>(),
        n_tasks in 1usize..14,
        pool in 8u64..40,
        factor in 0.05f64..1.0,
        jitter_amp in 0.0f64..0.4,
        bg_gbps in 0.0f64..5.0,
        equal_split in any::<bool>(),
        backfill in any::<bool>(),
        limit in any::<bool>(),
    ) {
        let wf = workload(seed, n_tasks, 4, 1e10);
        let mut opts = SimOptions {
            sharing: if equal_split { Sharing::EqualSplit } else { Sharing::MaxMin },
            scheduler: if backfill { SchedulerPolicy::Backfill } else { SchedulerPolicy::Fifo },
            jitter: Some(Jitter { seed, amplitude: jitter_amp }),
            node_limit: limit.then_some(8),
            ..SimOptions::default()
        };
        opts = opts.with_contention(ids::FILE_SYSTEM, factor);
        if bg_gbps > 0.0 {
            opts = opts.with_background(ids::FILE_SYSTEM, bg_gbps * 1e9);
        }
        let scenario = Scenario::new(machine(pool, 10.0), wf).with_options(opts);
        assert_bracketed(&scenario, "knobs");
    }
}

/// Certification at scale: a generated 100k-task workload stays inside
/// the bracket, and the streaming summary mode reproduces the full
/// engine's makespan bit for bit at that size. Debug builds skip it
/// (the DES alone would take minutes unoptimized); CI runs the oracle
/// suite with `--release`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "100k-task workload; run with --release (CI's bracketing step does)"
)]
fn hundred_k_task_workload_stays_bracketed() {
    let wf = workload(7, 100_000, 64, 1e10);
    let scenario = Scenario::new(machine(4096, 50.0), wf);
    let cert = certify_scenario(&scenario).expect("certifies");
    let makespan = simulate_makespan(&scenario).expect("simulates");
    assert!(cert.hi.is_finite(), "hi must be finite, got {}", cert.hi);
    assert!(
        cert.lo * (1.0 - 1e-6) <= makespan && makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
        "100k: {} <= {makespan} <= {} violated",
        cert.lo,
        cert.hi
    );
    let sum = simulate_summary(&scenario).expect("summary mode simulates");
    assert_eq!(sum.makespan, makespan, "summary diverges from the engine");
    assert_eq!(sum.n_tasks, 100_000);
    assert!(
        cert.lo * (1.0 - 1e-6) <= sum.makespan && sum.makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
        "100k summary escapes the bracket"
    );
}

/// The certificate holds at every point of an 8x8 sweep grid
/// (contention factor x node limit), for both scheduler policies —
/// the same grid shape the incremental sweep engine serves.
#[test]
fn sweep_grid_8x8_stays_bracketed() {
    let wf = workload(42, 16, 4, 2e10);
    let base = Scenario::new(machine(32, 10.0), wf);
    let grid = SweepGrid {
        resource: Some(ids::FILE_SYSTEM.into()),
        factors: vec![0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0],
        node_limits: vec![
            Some(8),
            Some(12),
            Some(16),
            Some(20),
            Some(24),
            Some(28),
            Some(30),
            None,
        ],
        policies: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Backfill],
    };
    let outcome = wrm_sim::sweep_grid(&base, &grid, 4);
    assert_eq!(outcome.results.len(), 8 * 8 * 2);
    for fi in 0..grid.factors.len() {
        for ni in 0..grid.node_limits.len() {
            for pi in 0..grid.policies.len() {
                let opts = grid.point_options(&base.options, fi, ni, pi);
                let point = base.clone().with_options(opts);
                let cert = certify_scenario(&point).expect("grid point certifies");
                let r = outcome.results[grid.index_of(fi, ni, pi)]
                    .as_ref()
                    .expect("grid point simulates");
                assert!(cert.hi.is_finite(), "[{fi},{ni},{pi}] infinite hi");
                assert!(
                    cert.lo * (1.0 - 1e-6) <= r.makespan
                        && r.makespan <= cert.hi * (1.0 + 1e-9) + 1e-9,
                    "[{fi},{ni},{pi}]: {} <= {} <= {} violated",
                    cert.lo,
                    r.makespan,
                    cert.hi
                );
            }
        }
    }
}
