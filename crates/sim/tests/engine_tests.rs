//! Integration tests: the simulator reproduces the paper's measured
//! behaviours from first principles.

use wrm_core::{ids, machines};
use wrm_sim::{
    simulate, Jitter, Phase, Scenario, SchedulerPolicy, Sharing, SimError, SimOptions, TaskSpec,
    WorkflowSpec,
};

/// The LCLS workflow: five 32-node analyses (1 TB external in, 32 GB/node
/// DRAM, a little compute), then a 5 GB merge.
fn lcls() -> WorkflowSpec {
    let mut wf = WorkflowSpec::new("LCLS");
    for i in 0..5 {
        wf = wf.task(
            TaskSpec::new(format!("analyze[{i}]"), 32)
                .phase(Phase::SystemData {
                    resource: ids::EXTERNAL.into(),
                    bytes: 1e12,
                    stream_cap: Some(1e9),
                })
                .phase(Phase::node_data(ids::DRAM, 32e9 * 32.0)),
        );
    }
    let mut merge = TaskSpec::new("merge", 1).phase(Phase::system_data(ids::BURST_BUFFER, 5e9));
    for i in 0..5 {
        merge = merge.after(format!("analyze[{i}]"));
    }
    wf.task(merge)
}

#[test]
fn lcls_good_day_is_about_17_minutes() {
    // 1 TB / 1 GB/s per stream = 1000 s, plus small tails: the paper's
    // good day is 17 min = 1020 s.
    let result = simulate(&Scenario::new(machines::cori_haswell(), lcls())).unwrap();
    assert!(
        (result.makespan - 1000.0).abs() < 10.0,
        "makespan {}",
        result.makespan
    );
    // All five streams ran concurrently at their caps: external busy
    // time per task is ~1000 s.
    let t0 = result.trace.task_time("analyze[0]").unwrap();
    assert!((t0 - 1000.2).abs() < 1.0, "task time {t0}");
}

#[test]
fn lcls_bad_day_is_5x_slower() {
    let opts = SimOptions::default().with_contention(ids::EXTERNAL, 0.2);
    let scenario = Scenario::new(machines::cori_haswell(), lcls()).with_options(opts);
    let result = simulate(&scenario).unwrap();
    assert!(
        (result.makespan - 5000.0).abs() < 10.0,
        "makespan {}",
        result.makespan
    );
}

#[test]
fn shared_channel_contention_emerges() {
    // Two tasks each pull 1 TB from a 1 GB/s-capacity channel with no
    // stream caps: fair sharing gives each 0.5 GB/s -> 2000 s total.
    let m = wrm_core::Machine::builder("tiny", 8)
        .system(ids::EXTERNAL, "ext", wrm_core::BytesPerSec::gbps(1.0))
        .build()
        .unwrap();
    let wf = WorkflowSpec::new("pair")
        .task(TaskSpec::new("a", 1).phase(Phase::system_data(ids::EXTERNAL, 1e12)))
        .task(TaskSpec::new("b", 1).phase(Phase::system_data(ids::EXTERNAL, 1e12)));
    let r = simulate(&Scenario::new(m, wf)).unwrap();
    assert!((r.makespan - 2000.0).abs() < 1.0, "makespan {}", r.makespan);
}

#[test]
fn staggered_flows_get_leftover_bandwidth() {
    // Task a moves 10 GB, task b moves 30 GB on a 2 GB/s channel.
    // Phase 1: both at 1 GB/s for 10 s (a finishes). Phase 2: b alone at
    // 2 GB/s for the remaining 20 GB -> ends at t=20.
    let m = wrm_core::Machine::builder("tiny", 8)
        .system(ids::FILE_SYSTEM, "fs", wrm_core::BytesPerSec::gbps(2.0))
        .build()
        .unwrap();
    let wf = WorkflowSpec::new("stagger")
        .task(TaskSpec::new("a", 1).phase(Phase::system_data(ids::FILE_SYSTEM, 10e9)))
        .task(TaskSpec::new("b", 1).phase(Phase::system_data(ids::FILE_SYSTEM, 30e9)));
    let r = simulate(&Scenario::new(m, wf)).unwrap();
    assert!(
        (r.task_times["a"] - 10.0).abs() < 1e-6,
        "a {}",
        r.task_times["a"]
    );
    assert!(
        (r.task_times["b"] - 20.0).abs() < 1e-6,
        "b {}",
        r.task_times["b"]
    );
}

/// BGW: Epsilon then Sigma on the same allocation, with the measured
/// efficiencies that land the makespan at the paper's 4184.86 s.
fn bgw(nodes: u64, eff_e: f64, eff_s: f64) -> WorkflowSpec {
    WorkflowSpec::new("BerkeleyGW")
        .task(
            TaskSpec::new("Epsilon", nodes)
                .phase(Phase::system_data(ids::FILE_SYSTEM, 20e9))
                .phase(Phase::Compute {
                    flops: 1164e15,
                    efficiency: eff_e,
                })
                .phase(Phase::system_data(ids::NETWORK, 2676e9 * 64.0 * 0.265)),
        )
        .task(
            TaskSpec::new("Sigma", nodes)
                .phase(Phase::system_data(ids::FILE_SYSTEM, 50e9))
                .phase(Phase::Compute {
                    flops: 3226e15,
                    efficiency: eff_s,
                })
                .phase(Phase::system_data(ids::NETWORK, 2676e9 * 64.0 * 0.735))
                .after("Epsilon"),
        )
}

#[test]
fn bgw_64_nodes_lands_near_the_paper_makespan() {
    let r = simulate(&Scenario::new(
        machines::perlmutter_gpu(),
        bgw(64, 0.39, 0.4395),
    ))
    .unwrap();
    // Compute times: 1164 PF/(64*38.8 TF*0.39) = 1202 s;
    // 3226 PF/(64*38.8 TF*0.4395) = 2956 s; plus ~27 s of NIC/FS tails.
    assert!(
        (r.makespan - 4184.86).abs() < 120.0,
        "makespan {}",
        r.makespan
    );
    // Sigma dominates.
    assert!(r.task_times["Sigma"] > r.task_times["Epsilon"]);
}

#[test]
fn bgw_strong_scaling_shortens_makespan() {
    let m64 = simulate(&Scenario::new(
        machines::perlmutter_gpu(),
        bgw(64, 0.39, 0.4395),
    ))
    .unwrap()
    .makespan;
    let m1024 = simulate(&Scenario::new(
        machines::perlmutter_gpu(),
        bgw(1024, 0.16, 0.36),
    ))
    .unwrap()
    .makespan;
    assert!(m1024 < m64 / 8.0, "64: {m64}, 1024: {m1024}");
}

#[test]
fn fifo_head_blocks_but_backfill_proceeds() {
    // Pool of 4: a 3-node long task runs; a 2-node task is queued ahead
    // of a 1-node task. FIFO blocks both; backfill starts the 1-node.
    let m = wrm_core::Machine::builder("tiny", 4).build().unwrap();
    let wf = WorkflowSpec::new("queue")
        .task(TaskSpec::new("wide", 3).phase(Phase::overhead("w", 100.0)))
        .task(TaskSpec::new("blocked", 2).phase(Phase::overhead("w", 10.0)))
        .task(TaskSpec::new("small", 1).phase(Phase::overhead("w", 10.0)));

    let fifo = simulate(
        &Scenario::new(m.clone(), wf.clone()).with_options(SimOptions {
            scheduler: SchedulerPolicy::Fifo,
            ..SimOptions::default()
        }),
    )
    .unwrap();
    let backfill = simulate(&Scenario::new(m, wf).with_options(SimOptions {
        scheduler: SchedulerPolicy::Backfill,
        ..SimOptions::default()
    }))
    .unwrap();

    assert!((fifo.task_starts["small"] - 100.0).abs() < 1e-6);
    assert!((backfill.task_starts["small"] - 0.0).abs() < 1e-12);
    assert!(backfill.makespan <= fifo.makespan);
}

#[test]
fn node_limit_serializes_parallel_tasks() {
    // Ten 1-node tasks, pool capped at 2: five waves of 10 s.
    let wf = {
        let mut wf = WorkflowSpec::new("bag");
        for i in 0..10 {
            wf = wf.task(TaskSpec::new(format!("t{i}"), 1).phase(Phase::overhead("w", 10.0)));
        }
        wf
    };
    let r = simulate(
        &Scenario::new(machines::perlmutter_cpu(), wf).with_options(SimOptions {
            node_limit: Some(2),
            ..SimOptions::default()
        }),
    )
    .unwrap();
    assert!((r.makespan - 50.0).abs() < 1e-6, "makespan {}", r.makespan);
}

#[test]
fn jitter_is_deterministic_per_seed_and_bounded() {
    let wf = WorkflowSpec::new("j").task(TaskSpec::new("a", 1).phase(Phase::overhead("w", 100.0)));
    let opts = |seed| SimOptions {
        jitter: Some(Jitter {
            seed,
            amplitude: 0.1,
        }),
        ..SimOptions::default()
    };
    let r1 = simulate(&Scenario::new(machines::perlmutter_cpu(), wf.clone()).with_options(opts(7)))
        .unwrap();
    let r2 = simulate(&Scenario::new(machines::perlmutter_cpu(), wf.clone()).with_options(opts(7)))
        .unwrap();
    let r3 =
        simulate(&Scenario::new(machines::perlmutter_cpu(), wf).with_options(opts(8))).unwrap();
    assert_eq!(r1.makespan, r2.makespan);
    assert!(r1.makespan >= 90.0 - 1e-9 && r1.makespan <= 110.0 + 1e-9);
    // Different seed, almost surely different draw.
    assert_ne!(r1.makespan, r3.makespan);
}

#[test]
fn equal_split_underutilizes_vs_max_min() {
    // One capped flow + one open flow: equal split wastes bandwidth.
    let m = wrm_core::Machine::builder("tiny", 8)
        .system(ids::FILE_SYSTEM, "fs", wrm_core::BytesPerSec::gbps(2.0))
        .build()
        .unwrap();
    let wf = WorkflowSpec::new("ab")
        .task(TaskSpec::new("capped", 1).phase(Phase::SystemData {
            resource: ids::FILE_SYSTEM.into(),
            bytes: 10e9,
            stream_cap: Some(0.5e9),
        }))
        .task(TaskSpec::new("open", 1).phase(Phase::system_data(ids::FILE_SYSTEM, 30e9)));
    let mm = simulate(
        &Scenario::new(m.clone(), wf.clone()).with_options(SimOptions {
            sharing: Sharing::MaxMin,
            ..SimOptions::default()
        }),
    )
    .unwrap();
    let eq = simulate(&Scenario::new(m, wf).with_options(SimOptions {
        sharing: Sharing::EqualSplit,
        ..SimOptions::default()
    }))
    .unwrap();
    assert!(
        mm.makespan < eq.makespan,
        "mm {} eq {}",
        mm.makespan,
        eq.makespan
    );
}

#[test]
fn error_paths() {
    // Too large.
    let wf = WorkflowSpec::new("big").task(TaskSpec::new("t", 10_000));
    assert!(matches!(
        simulate(&Scenario::new(machines::perlmutter_gpu(), wf)),
        Err(SimError::TaskTooLarge { .. })
    ));
    // Unknown resource.
    let wf = WorkflowSpec::new("u")
        .task(TaskSpec::new("t", 1).phase(Phase::system_data("warp-drive", 1.0)));
    assert!(matches!(
        simulate(&Scenario::new(machines::perlmutter_gpu(), wf)),
        Err(SimError::UnknownResource { .. })
    ));
    // Bad contention factor.
    let wf = WorkflowSpec::new("c").task(TaskSpec::new("t", 1));
    let bad = SimOptions::default().with_contention(ids::FILE_SYSTEM, 0.0);
    assert!(matches!(
        simulate(&Scenario::new(machines::perlmutter_gpu(), wf).with_options(bad)),
        Err(SimError::InvalidOption(_))
    ));
    // Bad jitter.
    let wf = WorkflowSpec::new("j").task(TaskSpec::new("t", 1));
    let bad = SimOptions {
        jitter: Some(Jitter {
            seed: 0,
            amplitude: 1.5,
        }),
        ..SimOptions::default()
    };
    assert!(matches!(
        simulate(&Scenario::new(machines::perlmutter_gpu(), wf).with_options(bad)),
        Err(SimError::InvalidOption(_))
    ));
}

#[test]
fn zero_phase_tasks_and_empty_workflows_complete() {
    let wf = WorkflowSpec::new("noop")
        .task(TaskSpec::new("a", 1))
        .task(TaskSpec::new("b", 1).after("a"));
    let r = simulate(&Scenario::new(machines::perlmutter_cpu(), wf)).unwrap();
    assert_eq!(r.makespan, 0.0);
    assert_eq!(r.task_times.len(), 2);

    let empty = WorkflowSpec::new("empty");
    let r = simulate(&Scenario::new(machines::perlmutter_cpu(), empty)).unwrap();
    assert_eq!(r.makespan, 0.0);
}

#[test]
fn trace_has_one_span_per_phase() {
    let wf = lcls();
    let total_phases: usize = wf.tasks.iter().map(|t| t.phases.len()).sum();
    let r = simulate(&Scenario::new(machines::cori_haswell(), wf)).unwrap();
    assert_eq!(r.trace.spans.len(), total_phases);
}

#[test]
fn gptune_rci_vs_spawn_modes() {
    // 40 serialized iterations. Both modes pay the Python library /
    // modelling overhead per iteration (~5.2 s); RCI additionally pays
    // bash+srun (~7.4 s) and metadata file I/O (~0.75 s) per iteration.
    // The SuperLU_DIST run itself is short (small 4960x4960 matrix).
    // Totals land at the paper's 553 s (RCI) vs 228 s (Spawn), and
    // removing Python leaves ~19 s = the paper's extra 12x projection.
    let (python, app, model, bash) = (5.225, 0.35, 0.125, 7.375);
    let rci = {
        let mut wf = WorkflowSpec::new("gptune-rci");
        let mut prev: Option<String> = None;
        for i in 0..40 {
            let mut t = TaskSpec::new(format!("iter[{i}]"), 1)
                .phase(Phase::overhead("bash", bash))
                .phase(Phase::overhead("python", python))
                .phase(Phase::SystemData {
                    resource: ids::FILE_SYSTEM.into(),
                    bytes: 45e6 / 40.0,
                    stream_cap: Some(1.5e6),
                })
                .phase(Phase::overhead("application", app))
                .phase(Phase::overhead("model_search", model));
            if let Some(p) = &prev {
                t = t.after(p.clone());
            }
            prev = Some(t.name.clone());
            wf = wf.task(t);
        }
        wf
    };
    let spawn = {
        let mut wf = WorkflowSpec::new("gptune-spawn");
        let mut prev: Option<String> = None;
        for i in 0..40 {
            let mut t = TaskSpec::new(format!("iter[{i}]"), 1)
                .phase(Phase::overhead("python", python))
                .phase(Phase::system_data(ids::FILE_SYSTEM, 40e6 / 40.0))
                .phase(Phase::overhead("application", app))
                .phase(Phase::overhead("model_search", model));
            if let Some(p) = &prev {
                t = t.after(p.clone());
            }
            prev = Some(t.name.clone());
            wf = wf.task(t);
        }
        wf
    };
    let m = machines::perlmutter_cpu();
    let r_rci = simulate(&Scenario::new(m.clone(), rci)).unwrap();
    let r_spawn = simulate(&Scenario::new(m, spawn)).unwrap();
    assert!(
        (r_rci.makespan - 553.0).abs() < 15.0,
        "rci {}",
        r_rci.makespan
    );
    assert!(
        (r_spawn.makespan - 228.0).abs() < 15.0,
        "spawn {}",
        r_spawn.makespan
    );
    let speedup = r_rci.makespan / r_spawn.makespan;
    assert!((speedup - 2.4).abs() < 0.2, "speedup {speedup}");
}

#[test]
fn background_flows_steal_fair_share() {
    // One task pulls 10 GB from a 2 GB/s channel while a greedy
    // background flow competes: fair share 1 GB/s each -> 10 s.
    let m = wrm_core::Machine::builder("tiny", 4)
        .system(ids::FILE_SYSTEM, "fs", wrm_core::BytesPerSec::gbps(2.0))
        .build()
        .unwrap();
    let wf = WorkflowSpec::new("bg")
        .task(TaskSpec::new("t", 1).phase(Phase::system_data(ids::FILE_SYSTEM, 10e9)));
    let opts = SimOptions::default().with_background(ids::FILE_SYSTEM, f64::INFINITY);
    let r = simulate(&Scenario::new(m.clone(), wf.clone()).with_options(opts)).unwrap();
    assert!((r.makespan - 10.0).abs() < 1e-6, "makespan {}", r.makespan);

    // A rate-limited background (0.5 GB/s) leaves 1.5 GB/s -> ~6.67 s.
    let opts = SimOptions::default().with_background(ids::FILE_SYSTEM, 0.5e9);
    let r = simulate(&Scenario::new(m.clone(), wf.clone()).with_options(opts)).unwrap();
    assert!(
        (r.makespan - 10.0 / 1.5).abs() < 1e-6,
        "makespan {}",
        r.makespan
    );

    // No background: full 2 GB/s -> 5 s.
    let r = simulate(&Scenario::new(m, wf)).unwrap();
    assert!((r.makespan - 5.0).abs() < 1e-6);
}

#[test]
fn two_backgrounds_and_validation() {
    let m = wrm_core::Machine::builder("tiny", 4)
        .system(ids::FILE_SYSTEM, "fs", wrm_core::BytesPerSec::gbps(3.0))
        .build()
        .unwrap();
    let wf = WorkflowSpec::new("bg")
        .task(TaskSpec::new("t", 1).phase(Phase::system_data(ids::FILE_SYSTEM, 10e9)));
    // Two greedy backgrounds: the task gets a third of 3 GB/s.
    let opts = SimOptions::default()
        .with_background(ids::FILE_SYSTEM, f64::INFINITY)
        .with_background(ids::FILE_SYSTEM, f64::INFINITY);
    let r = simulate(&Scenario::new(m.clone(), wf.clone()).with_options(opts)).unwrap();
    assert!((r.makespan - 10.0).abs() < 1e-6, "makespan {}", r.makespan);

    // Invalid rate / unknown resource are rejected.
    let bad = SimOptions::default().with_background(ids::FILE_SYSTEM, 0.0);
    assert!(matches!(
        simulate(&Scenario::new(m.clone(), wf.clone()).with_options(bad)),
        Err(SimError::InvalidOption(_))
    ));
    let unknown = SimOptions::default().with_background("warp", 1.0);
    assert!(matches!(
        simulate(&Scenario::new(m, wf).with_options(unknown)),
        Err(SimError::UnknownResource { .. })
    ));
}

#[test]
fn accounting_metrics() {
    // Two 2-node 10 s tasks on a 4-node pool, fully parallel:
    // 40 node-seconds over 4 x 10 = 100% utilization.
    let m = wrm_core::Machine::builder("acct", 4).build().unwrap();
    let wf = WorkflowSpec::new("acct")
        .task(TaskSpec::new("a", 2).phase(Phase::overhead("w", 10.0)))
        .task(TaskSpec::new("b", 2).phase(Phase::overhead("w", 10.0)));
    let r = simulate(&Scenario::new(m.clone(), wf.clone())).unwrap();
    assert!((r.node_seconds() - 40.0).abs() < 1e-9);
    assert!((r.utilization() - 1.0).abs() < 1e-9);
    assert_eq!(r.pool_nodes, 4);
    assert_eq!(r.task_nodes["a"], 2);

    // Capped to 2 nodes: serialized, 40 node-seconds over 2 x 20 = 100%.
    let r = simulate(
        &Scenario::new(m.clone(), wf.clone()).with_options(SimOptions {
            node_limit: Some(2),
            ..SimOptions::default()
        }),
    )
    .unwrap();
    assert!((r.makespan - 20.0).abs() < 1e-9);
    assert!((r.utilization() - 1.0).abs() < 1e-9);

    // A 1-node straggler drops utilization below 1.
    let wf = wf.task(TaskSpec::new("c", 1).phase(Phase::overhead("w", 5.0)));
    let r = simulate(&Scenario::new(m, wf)).unwrap();
    assert!(r.utilization() < 1.0);
    assert!((r.node_seconds() - 45.0).abs() < 1e-9);
}
