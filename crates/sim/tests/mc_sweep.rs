//! Model-check suite 5: the sweep's column-claiming protocol.
//!
//! Exhaustively explores (under `RUSTFLAGS="--cfg wrm_mc"`) workers
//! racing [`ChunkClaim`]: every index must be claimed exactly once —
//! no loss, no double-claim — for chunk sizes that divide the total
//! evenly and ones that leave a ragged tail.
#![cfg(wrm_mc)]

use std::sync::Arc;
use wrm_mc::{model, thread};
use wrm_sim::ChunkClaim;

fn claimed_indices(total: usize, chunk: usize) -> Vec<usize> {
    let claim = Arc::new(ChunkClaim::new(total, chunk));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let claim = Arc::clone(&claim);
            thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(range) = claim.next_range() {
                    mine.extend(range);
                }
                mine
            })
        })
        .collect();
    let mut all = Vec::new();
    for w in workers {
        all.extend(w.join().unwrap());
    }
    all.sort_unstable();
    all
}

#[test]
fn every_index_claimed_exactly_once() {
    model(|| {
        let all = claimed_indices(4, 2);
        assert_eq!(all, vec![0, 1, 2, 3], "each column claimed exactly once");
    });
}

#[test]
fn ragged_tail_is_not_overclaimed() {
    model(|| {
        // Chunk does not divide the total: the last claim truncates.
        let all = claimed_indices(3, 2);
        assert_eq!(all, vec![0, 1, 2], "tail chunk truncates at the total");
    });
}

#[test]
fn exhausted_cursor_stays_exhausted() {
    model(|| {
        let claim = ChunkClaim::new(1, 1);
        assert_eq!(claim.next_range(), Some(0..1));
        let claim = Arc::new(claim);
        let racer = {
            let claim = Arc::clone(&claim);
            thread::spawn(move || claim.next_range())
        };
        assert_eq!(racer.join().unwrap(), None);
        assert_eq!(claim.next_range(), None);
    });
}
