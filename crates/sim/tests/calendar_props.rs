//! Equivalence oracles for the bucketed calendar queue and the
//! streaming summary mode.
//!
//! The calendar queue is a drop-in replacement for the binary-heap
//! completion calendar, and the contract is the usual one for this
//! repo's engine work: *bit-identical* results — same makespan, same
//! trace spans in the same order, same task times, same errors — across
//! `CalendarKind::Buckets`, `CalendarKind::Heap`, and the string-keyed
//! reference engine, on randomly generated layered and fork–join DAGs
//! under contention, node limits and both schedulers.
//!
//! Summary mode ([`wrm_sim::simulate_summary`]) is checked against
//! aggregates recomputed from the full result: makespan, span count and
//! node-seconds must match bit for bit (the streaming folds replicate
//! the full engine's expressions in the same order); per-channel busy
//! time and bytes are recomputed from the trace's flow spans by
//! interval merging, which may legitimately differ in the last ulp at
//! touching interval boundaries, so those two carry a 1e-9 relative
//! tolerance.

use proptest::prelude::*;
use wrm_core::{ids, BytesPerSec, FlopsPerSec, Machine, Rate};
use wrm_dag::generate::{fork_join_tasks, random_layered_tasks};
use wrm_sim::reference::simulate_reference;
use wrm_sim::{
    simulate, simulate_summary, simulate_with_calendar, CalendarKind, Phase, Scenario,
    SchedulerPolicy, SimOptions, SimResult, TaskSpec, WorkflowSpec,
};
use wrm_trace::SpanKind;

fn machine(pool: u64, fs_gbps: f64) -> Machine {
    Machine::builder("cal-oracle", pool)
        .node(
            ids::COMPUTE,
            "CPU",
            Rate::FlopsPerSec(FlopsPerSec::tflops(1.0)),
        )
        .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(fs_gbps))
        .system(ids::EXTERNAL, "ext", BytesPerSec::gbps(5.0))
        .build()
        .unwrap()
}

/// A generated workload (layered or fork–join skeleton) with a mix of
/// overhead, compute, and capped/uncapped flows on two channels.
fn workload(seed: u64, n_tasks: usize, max_width: usize, fork_join: bool) -> WorkflowSpec {
    let tasks = if fork_join {
        fork_join_tasks(seed, n_tasks, max_width, 8, 30.0)
    } else {
        random_layered_tasks(seed, n_tasks, max_width, 8, 30.0)
    };
    let mut wf = WorkflowSpec::new(format!("cal[{seed}]"));
    for (i, t) in tasks.iter().enumerate() {
        let mut spec = TaskSpec::new(&t.name, t.nodes);
        spec = match i % 5 {
            0 => spec
                .phase(Phase::overhead("setup", t.duration))
                .phase(Phase::system_data(ids::FILE_SYSTEM, 1e10)),
            1 => spec.phase(Phase::SystemData {
                resource: ids::EXTERNAL.into(),
                bytes: 5e9,
                stream_cap: Some(1e9 * (1.0 + (i % 3) as f64)),
            }),
            2 => spec
                .phase(Phase::compute(t.duration * 1e12))
                .phase(Phase::overhead("teardown", 1.0)),
            3 => spec
                .phase(Phase::system_data(ids::FILE_SYSTEM, 2e9))
                .phase(Phase::system_data(ids::EXTERNAL, 1e9)),
            _ => spec.phase(Phase::overhead("work", t.duration)),
        };
        for &d in &t.deps {
            spec = spec.after(tasks[d].name.clone());
        }
        wf = wf.task(spec);
    }
    wf
}

/// Asserts `simulate_summary` agrees with aggregates of the full result.
fn assert_summary_matches(scenario: &Scenario, full: &SimResult) {
    let sum = simulate_summary(scenario).expect("summary mode runs where the full engine runs");
    assert_eq!(
        sum.makespan, full.makespan,
        "makespan must match bit for bit"
    );
    assert_eq!(sum.n_spans as usize, full.trace.spans.len(), "span count");
    assert_eq!(sum.n_tasks, scenario.workflow.tasks.len());
    assert_eq!(sum.pool_nodes, full.pool_nodes);

    // Node-seconds: the summary folds nodes * (end - start) in task
    // index order; replicate the same sequence of operations.
    let mut want_ns = 0.0;
    for t in &scenario.workflow.tasks {
        want_ns += t.nodes as f64 * full.task_times[&t.name];
    }
    assert_eq!(sum.node_seconds, want_ns, "node-seconds fold");

    // Per-channel flow aggregates from the trace's flow spans.
    for ch in &sum.channels {
        let spans: Vec<(f64, f64, f64)> = full
            .trace
            .spans
            .iter()
            .filter_map(|s| match &s.kind {
                SpanKind::SystemData { resource, bytes } if *resource == ch.resource => {
                    Some((s.start, s.end, *bytes))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            ch.flows,
            spans.len() as u64,
            "flow count on {}",
            ch.resource
        );
        let want_bytes: f64 = spans.iter().map(|&(_, _, b)| b).sum();
        assert!(
            (ch.bytes - want_bytes).abs() <= 1e-9 * want_bytes.max(1.0),
            "bytes on {}: {} vs {}",
            ch.resource,
            ch.bytes,
            want_bytes
        );
        // Busy time = measure of the union of flow-presence intervals.
        let mut iv: Vec<(f64, f64)> = spans.iter().map(|&(s, e, _)| (s, e)).collect();
        iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut want_busy = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (s, e) in iv {
            match &mut cur {
                Some((_, ce)) if s <= *ce => *ce = ce.max(e),
                _ => {
                    if let Some((cs, ce)) = cur.take() {
                        want_busy += ce - cs;
                    }
                    cur = Some((s, e));
                }
            }
        }
        if let Some((cs, ce)) = cur {
            want_busy += ce - cs;
        }
        assert!(
            (ch.busy - want_busy).abs() <= 1e-9 * want_busy.max(1.0),
            "busy on {}: {} vs {}",
            ch.resource,
            ch.busy,
            want_busy
        );
        assert!(
            ch.busy <= sum.makespan * (1.0 + 1e-9) + 1e-9,
            "busy cannot exceed the makespan"
        );
    }

    // Critical tail: valid task names, consistent lengths, and the walk
    // starts (tail's last element) at a task attaining the final end.
    if sum.n_tasks == 0 {
        assert_eq!(sum.critical_tail_len, 0);
        assert!(sum.critical_tail.is_empty());
    } else {
        assert!(sum.critical_tail_len >= 1);
        assert!(sum.critical_tail.len() <= 32);
        if sum.critical_tail_len <= 32 {
            assert_eq!(sum.critical_tail.len(), sum.critical_tail_len);
        }
        for name in &sum.critical_tail {
            assert!(
                full.task_times.contains_key(name),
                "tail names a real task: {name}"
            );
        }
    }
}

/// Runs one scenario through all three engines plus summary mode and
/// asserts full equivalence.
fn assert_equivalent(scenario: &Scenario, what: &str) {
    let buckets = simulate_with_calendar(scenario, CalendarKind::Buckets);
    let heap = simulate_with_calendar(scenario, CalendarKind::Heap);
    let default = simulate(scenario);
    let reference = simulate_reference(scenario);
    match (buckets, heap, default, reference) {
        (Ok(b), Ok(h), Ok(d), Ok(r)) => {
            assert_eq!(b, h, "{what}: calendar queue vs heap");
            assert_eq!(b, d, "{what}: explicit buckets vs default simulate");
            assert_eq!(b, r, "{what}: calendar queue vs reference");
            assert_summary_matches(scenario, &b);
        }
        (Err(b), Err(h), Err(d), Err(r)) => {
            assert_eq!(b, h, "{what}: error parity buckets vs heap");
            assert_eq!(b, d, "{what}: error parity vs default");
            assert_eq!(b, r, "{what}: error parity vs reference");
            let s = simulate_summary(scenario).expect_err("summary rejects what full rejects");
            assert_eq!(b, s, "{what}: error parity vs summary");
        }
        (b, h, d, r) => {
            panic!("{what}: engines disagree on success: {b:?} / {h:?} / {d:?} / {r:?}")
        }
    }
}

proptest! {
    /// Random layered and fork–join DAGs under contention, node limits
    /// and both schedulers: calendar queue == heap == reference, and
    /// summary == full-result aggregates.
    #[test]
    fn calendars_and_summary_agree_on_random_dags(
        seed in any::<u64>(),
        n_tasks in 1usize..40,
        max_width in 1usize..8,
        fork_join in any::<bool>(),
        pool in 8u64..64,
        factor in 0.05f64..2.0,
        backfill in any::<bool>(),
        limit in any::<bool>(),
    ) {
        let wf = workload(seed, n_tasks, max_width, fork_join);
        let mut opts = SimOptions {
            scheduler: if backfill { SchedulerPolicy::Backfill } else { SchedulerPolicy::Fifo },
            node_limit: limit.then_some(8),
            ..SimOptions::default()
        };
        opts = opts.with_contention(ids::FILE_SYSTEM, factor);
        let scenario = Scenario::new(machine(pool, 10.0), wf).with_options(opts);
        assert_equivalent(&scenario, "random");
    }
}

/// Deterministic larger workloads, sized to force the calendar queue
/// through several grow/shrink resizes and wide same-instant barrier
/// drains.
#[test]
fn large_generated_dags_agree_across_calendars() {
    for fork_join in [false, true] {
        let wf = workload(42, 2_000, 64, fork_join);
        let scenario = Scenario::new(machine(512, 40.0), wf);
        assert_equivalent(
            &scenario,
            if fork_join { "fj-2000" } else { "layered-2000" },
        );
    }
}

/// Error scenarios hit the same first error in every engine and mode.
#[test]
fn error_parity_across_calendars() {
    // Unknown resource.
    let wf = WorkflowSpec::new("bad-res")
        .task(TaskSpec::new("t", 1).phase(Phase::system_data("no-such-channel", 1e9)));
    assert_equivalent(&Scenario::new(machine(8, 1.0), wf), "unknown-resource");
    // Task larger than the pool.
    let wf = WorkflowSpec::new("too-big")
        .task(TaskSpec::new("t", 1_000_000).phase(Phase::overhead("o", 1.0)));
    assert_equivalent(&Scenario::new(machine(8, 1.0), wf), "too-large");
    // Dependency cycle.
    let wf = WorkflowSpec::new("cycle")
        .task(
            TaskSpec::new("a", 1)
                .after("b")
                .phase(Phase::overhead("o", 1.0)),
        )
        .task(
            TaskSpec::new("b", 1)
                .after("a")
                .phase(Phase::overhead("o", 1.0)),
        );
    assert_equivalent(&Scenario::new(machine(8, 1.0), wf), "cycle");
}

/// The empty workflow: zero tasks, zero makespan, empty tail.
#[test]
fn empty_workflow_summary() {
    let scenario = Scenario::new(machine(8, 1.0), WorkflowSpec::new("empty"));
    let full = simulate(&scenario).unwrap();
    assert_eq!(full.makespan, 0.0);
    assert_summary_matches(&scenario, &full);
}
