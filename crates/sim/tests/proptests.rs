//! Property-based tests for the simulator's conservation laws and the
//! Monte-Carlo replication engine's invariants.

use proptest::prelude::*;
use wrm_core::{ids, BytesPerSec, Dist, Machine};
use wrm_sim::{
    max_min_rates, mc_run, simulate, FlowDemand, McOptions, Phase, Scenario, SimOptions, TaskSpec,
    WorkflowSpec,
};

/// A random layered DAG with distributional phase quantities: every
/// task in layer `l > 0` depends on all of layer `l - 1`.
fn layered_mc_scenario(layers: usize, width: usize, bytes: f64, spread: f64) -> Scenario {
    let machine = Machine::builder("mc-pool", 64)
        .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(10.0))
        .build()
        .unwrap();
    let mut wf = WorkflowSpec::new("mc");
    for l in 0..layers {
        for i in 0..width {
            let mut t = TaskSpec::new(format!("l{l}t{i}"), 1)
                .phase(Phase::overhead("setup", 5.0))
                .dist(
                    0,
                    Dist::Triangular {
                        lo: 2.0,
                        mode: 5.0,
                        hi: 9.0,
                    },
                )
                .phase(Phase::system_data(ids::FILE_SYSTEM, bytes))
                .dist(
                    1,
                    Dist::Uniform {
                        lo: bytes * (1.0 - spread),
                        hi: bytes * (1.0 + spread),
                    },
                );
            if l > 0 {
                for j in 0..width {
                    t = t.after(format!("l{}t{j}", l - 1));
                }
            }
            wf = wf.task(t);
        }
    }
    Scenario::new(machine, wf)
}

/// Bit-exact fingerprint of an [`wrm_sim::McResult`]'s user-visible
/// numbers: every sampled makespan plus the percentile table.
fn mc_bits(mc: &wrm_sim::McResult) -> Vec<u64> {
    let mut bits: Vec<u64> = mc.makespans.iter().map(|m| m.to_bits()).collect();
    for p in &mc.percentiles {
        bits.extend([
            p.q.to_bits(),
            p.value.to_bits(),
            p.ci_lo.to_bits(),
            p.ci_hi.to_bits(),
        ]);
    }
    bits
}

prop_compose! {
    fn flows()(caps in prop::collection::vec(
        prop_oneof![
            0.1f64..1e12,
            Just(f64::INFINITY),
        ],
        1..20,
    )) -> Vec<FlowDemand> {
        caps.into_iter()
            .enumerate()
            .map(|(id, cap)| FlowDemand { id, cap })
            .collect()
    }
}

proptest! {
    #[test]
    fn max_min_is_feasible_and_work_conserving(
        capacity in 0.0f64..1e13,
        flows in flows(),
    ) {
        let rates = max_min_rates(capacity, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        let mut total = 0.0;
        for (r, f) in rates.iter().zip(flows.iter()) {
            // Feasibility: no flow exceeds its cap; no negative rates.
            prop_assert!(r.rate >= 0.0);
            prop_assert!(r.rate <= f.cap * (1.0 + 1e-12) || r.rate <= f.cap + 1e-9);
            total += r.rate;
        }
        // Link feasibility.
        prop_assert!(total <= capacity * (1.0 + 1e-9) + 1e-9);
        // Work conservation: the link saturates unless every flow is at
        // its cap.
        let all_capped = rates
            .iter()
            .zip(flows.iter())
            .all(|(r, f)| f.cap.is_finite() && (r.rate - f.cap).abs() <= 1e-9 * f.cap.max(1.0));
        if !all_capped {
            prop_assert!(
                total >= capacity * (1.0 - 1e-9) - 1e-9,
                "total {} < capacity {}", total, capacity
            );
        }
        // Fairness: uncapped flows all get the same rate.
        let uncapped: Vec<f64> = rates
            .iter()
            .zip(flows.iter())
            .filter(|(_, f)| f.cap.is_infinite())
            .map(|(r, _)| r.rate)
            .collect();
        for w in uncapped.windows(2) {
            prop_assert!((w[0] - w[1]).abs() <= 1e-9 * w[0].max(1.0));
        }
    }

    #[test]
    fn makespan_respects_lower_bounds(
        n_tasks in 1usize..12,
        bytes in 1e6f64..1e13,
        overhead in 0.0f64..100.0,
        capacity_gbps in 0.5f64..1000.0,
    ) {
        let machine = Machine::builder("pool", 64)
            .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(capacity_gbps))
            .build()
            .unwrap();
        let mut wf = WorkflowSpec::new("w");
        for i in 0..n_tasks {
            wf = wf.task(
                TaskSpec::new(format!("t{i}"), 1)
                    .phase(Phase::overhead("setup", overhead))
                    .phase(Phase::system_data(ids::FILE_SYSTEM, bytes)),
            );
        }
        let r = simulate(&Scenario::new(machine, wf)).unwrap();
        // Aggregate-bandwidth bound: all bytes through the channel.
        let channel_bound = n_tasks as f64 * bytes / (capacity_gbps * 1e9);
        // Critical-path bound: one task's serial work at full channel.
        let task_bound = overhead + bytes / (capacity_gbps * 1e9);
        let lower = channel_bound.max(task_bound);
        prop_assert!(
            r.makespan >= lower * (1.0 - 1e-6),
            "makespan {} < bound {}", r.makespan, lower
        );
        // And the fluid model is tight here: overhead phases overlap
        // while flows share the channel fairly, so the makespan cannot
        // exceed overhead + channel time.
        prop_assert!(r.makespan <= (overhead + channel_bound) * (1.0 + 1e-6) + 1e-6);
    }

    #[test]
    fn more_bandwidth_never_hurts(
        n_tasks in 1usize..8,
        bytes in 1e6f64..1e12,
        cap1 in 1.0f64..100.0,
        cap2 in 1.0f64..100.0,
    ) {
        let build = |gbps: f64| {
            let machine = Machine::builder("pool", 64)
                .system(ids::EXTERNAL, "ext", BytesPerSec::gbps(gbps))
                .build()
                .unwrap();
            let mut wf = WorkflowSpec::new("w");
            for i in 0..n_tasks {
                wf = wf.task(
                    TaskSpec::new(format!("t{i}"), 1)
                        .phase(Phase::system_data(ids::EXTERNAL, bytes)),
                );
            }
            simulate(&Scenario::new(machine, wf)).unwrap().makespan
        };
        let slow = build(cap1.min(cap2));
        let fast = build(cap1.max(cap2));
        prop_assert!(fast <= slow * (1.0 + 1e-9));
    }

    #[test]
    fn contention_factor_scales_flow_time(
        bytes in 1e6f64..1e12,
        factor in 0.05f64..1.0,
    ) {
        let machine = Machine::builder("m", 4)
            .system(ids::EXTERNAL, "ext", BytesPerSec::gbps(10.0))
            .build()
            .unwrap();
        let wf = WorkflowSpec::new("w")
            .task(TaskSpec::new("t", 1).phase(Phase::system_data(ids::EXTERNAL, bytes)));
        let base = simulate(&Scenario::new(machine.clone(), wf.clone()))
            .unwrap()
            .makespan;
        let contended = simulate(
            &Scenario::new(machine, wf)
                .with_options(SimOptions::default().with_contention(ids::EXTERNAL, factor)),
        )
        .unwrap()
        .makespan;
        // A single flow slows by exactly 1/factor.
        prop_assert!(
            (contended - base / factor).abs() <= 1e-6 * contended.max(1.0),
            "base {}, contended {}, factor {}", base, contended, factor
        );
    }

    #[test]
    fn simulation_is_deterministic(
        n_tasks in 1usize..8,
        bytes in 1e6f64..1e11,
        seed in any::<u64>(),
    ) {
        let machine = Machine::builder("m", 16)
            .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(5.0))
            .build()
            .unwrap();
        let mut wf = WorkflowSpec::new("w");
        for i in 0..n_tasks {
            wf = wf.task(
                TaskSpec::new(format!("t{i}"), 2)
                    .phase(Phase::overhead("o", (i as f64) + 1.0))
                    .phase(Phase::system_data(ids::FILE_SYSTEM, bytes)),
            );
        }
        let opts = SimOptions {
            jitter: Some(wrm_sim::Jitter { seed, amplitude: 0.2 }),
            ..SimOptions::default()
        };
        let a = simulate(&Scenario::new(machine.clone(), wf.clone()).with_options(opts.clone()))
            .unwrap();
        let b = simulate(&Scenario::new(machine, wf).with_options(opts)).unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn every_phase_produces_exactly_one_span(
        n_tasks in 1usize..10,
        n_phases in 1usize..6,
    ) {
        let machine = Machine::builder("m", 32)
            .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(50.0))
            .build()
            .unwrap();
        let mut wf = WorkflowSpec::new("w");
        for i in 0..n_tasks {
            let mut t = TaskSpec::new(format!("t{i}"), 1);
            for p in 0..n_phases {
                t = if p % 2 == 0 {
                    t.phase(Phase::overhead("o", 1.0))
                } else {
                    t.phase(Phase::system_data(ids::FILE_SYSTEM, 1e9))
                };
            }
            wf = wf.task(t);
        }
        let r = simulate(&Scenario::new(machine, wf)).unwrap();
        prop_assert_eq!(r.trace.spans.len(), n_tasks * n_phases);
        // Span times are well-formed and within the makespan.
        for s in &r.trace.spans {
            prop_assert!(s.start >= 0.0);
            prop_assert!(s.end >= s.start);
            prop_assert!(s.end <= r.makespan * (1.0 + 1e-9) + 1e-9);
        }
    }

    #[test]
    fn mc_percentiles_are_ordered_and_bracketed(
        layers in 1usize..4,
        width in 1usize..4,
        bytes in 1e8f64..1e11,
        spread in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let scenario = layered_mc_scenario(layers, width, bytes, spread);
        let mc = mc_run(&scenario, &McOptions { reps: 24, seed, threads: 1 }).unwrap();
        prop_assert_eq!(mc.makespans.len(), 24);
        // Percentiles are monotone in q: p50 <= p90 <= p99, each inside
        // its own confidence interval and the sampled range.
        for w in mc.percentiles.windows(2) {
            prop_assert!(w[0].q < w[1].q);
            prop_assert!(w[0].value <= w[1].value);
        }
        for p in &mc.percentiles {
            prop_assert!(p.ci_lo <= p.value && p.value <= p.ci_hi);
            prop_assert!(mc.min <= p.value && p.value <= mc.max);
        }
        // The analytic certificate on the [lo, hi] envelope scenarios
        // brackets every sampled makespan.
        for &m in &mc.makespans {
            prop_assert!(
                mc.bracket_lo <= m * (1.0 + 1e-9) && m <= mc.bracket_hi * (1.0 + 1e-9),
                "makespan {} outside bracket [{}, {}]", m, mc.bracket_lo, mc.bracket_hi
            );
        }
    }

    #[test]
    fn mc_point_mass_collapses_to_the_deterministic_run(
        n_tasks in 1usize..8,
        bytes in 1e8f64..1e12,
        seed in any::<u64>(),
    ) {
        let machine = Machine::builder("m", 16)
            .system(ids::FILE_SYSTEM, "fs", BytesPerSec::gbps(5.0))
            .build()
            .unwrap();
        let mut wf = WorkflowSpec::new("w");
        for i in 0..n_tasks {
            wf = wf.task(
                TaskSpec::new(format!("t{i}"), 2)
                    .phase(Phase::system_data(ids::FILE_SYSTEM, bytes))
                    .dist(0, Dist::Point { value: bytes }),
            );
        }
        let scenario = Scenario::new(machine, wf);
        let det = simulate(&scenario).unwrap().makespan;
        let mc = mc_run(&scenario, &McOptions { reps: 32, seed, threads: 2 }).unwrap();
        // All-point-mass: one replication, bit-equal to `simulate`,
        // whatever the seed.
        prop_assert!(mc.degenerate);
        prop_assert_eq!(mc.makespans.len(), 1);
        prop_assert_eq!(mc.makespans[0].to_bits(), det.to_bits());
        prop_assert_eq!(mc.mean.to_bits(), det.to_bits());
    }

    #[test]
    fn mc_results_are_bit_identical_across_thread_counts(
        layers in 1usize..3,
        width in 1usize..4,
        bytes in 1e8f64..1e11,
        seed in any::<u64>(),
    ) {
        let scenario = layered_mc_scenario(layers, width, bytes, 0.3);
        let runs: Vec<Vec<u64>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let mc = mc_run(&scenario, &McOptions { reps: 16, seed, threads }).unwrap();
                mc_bits(&mc)
            })
            .collect();
        prop_assert!(runs[0] == runs[1], "1 vs 2 threads diverged");
        prop_assert!(runs[0] == runs[2], "1 vs 4 threads diverged");
    }
}
