//! Model-check suite 6: the Monte-Carlo runner's replication claiming.
//!
//! Exhaustively explores (under `RUSTFLAGS="--cfg wrm_mc"`) workers
//! racing [`RepClaim`]: every replication id must be claimed exactly
//! once — no loss, no double-claim — so the rep-id-ordered merge is
//! deterministic regardless of which worker ran which replication.
#![cfg(wrm_mc)]

use std::sync::Arc;
use wrm_mc::{model, thread};
use wrm_sim::RepClaim;

fn claimed_reps(total: usize, chunk: usize) -> (Vec<usize>, Vec<Vec<usize>>) {
    let claim = Arc::new(RepClaim::new(total, chunk));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let claim = Arc::clone(&claim);
            thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(range) = claim.next_range() {
                    mine.extend(range);
                }
                mine
            })
        })
        .collect();
    let mut per_worker = Vec::new();
    let mut all = Vec::new();
    for w in workers {
        let mine = w.join().unwrap();
        all.extend(mine.iter().copied());
        per_worker.push(mine);
    }
    all.sort_unstable();
    (all, per_worker)
}

#[test]
fn every_replication_claimed_exactly_once() {
    model(|| {
        let (all, _) = claimed_reps(4, 2);
        assert_eq!(all, vec![0, 1, 2, 3], "each rep claimed exactly once");
    });
}

#[test]
fn ragged_tail_is_not_overclaimed() {
    model(|| {
        // Chunk does not divide the total: the last claim truncates.
        let (all, _) = claimed_reps(5, 2);
        assert_eq!(all, vec![0, 1, 2, 3, 4], "tail chunk truncates");
    });
}

#[test]
fn merge_order_is_schedule_independent() {
    model(|| {
        // However the workers interleave, sorting the merged (rep_id,
        // payload) pairs by rep id reconstructs the same sequence —
        // the property the mc runner's deterministic merge relies on.
        let (_, per_worker) = claimed_reps(3, 1);
        let mut merged: Vec<Option<usize>> = vec![None; 3];
        for (w, mine) in per_worker.iter().enumerate() {
            for &rep in mine {
                assert!(merged[rep].is_none(), "rep {rep} claimed twice");
                merged[rep] = Some(w);
            }
        }
        assert!(merged.iter().all(Option::is_some), "rep lost: {merged:?}");
    });
}

#[test]
fn exhausted_cursor_stays_exhausted() {
    model(|| {
        let claim = RepClaim::new(1, 1);
        assert_eq!(claim.next_range(), Some(0..1));
        let claim = Arc::new(claim);
        let racer = {
            let claim = Arc::clone(&claim);
            thread::spawn(move || claim.next_range())
        };
        assert_eq!(racer.join().unwrap(), None);
        assert_eq!(claim.next_range(), None);
    });
}
