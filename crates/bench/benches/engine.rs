//! Simulator performance benchmarks: event throughput scaling with task
//! count and dependency depth, the fair-share solver, and the scheduler
//! ablation (FIFO vs. backfill).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wrm_bench::{bag_scenario, layered_scenario};
use wrm_sim::{max_min_rates, simulate, FlowDemand, SchedulerPolicy, SimOptions};

fn sim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/bag_scaling");
    for n in [16usize, 64, 256, 1024] {
        let scenario = bag_scenario(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn sim_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/layered");
    for (depth, width) in [(8usize, 8usize), (32, 8), (8, 32)] {
        let scenario = layered_scenario(depth, width);
        group.throughput(Throughput::Elements((depth * width) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{depth}x{width}")),
            &scenario,
            |b, s| b.iter(|| black_box(simulate(s).unwrap().makespan)),
        );
    }
    group.finish();
}

fn fair_share_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/max_min_solver");
    for n in [8usize, 64, 512, 4096] {
        let flows: Vec<FlowDemand> = (0..n)
            .map(|id| FlowDemand {
                id,
                cap: if id % 3 == 0 {
                    (id + 1) as f64
                } else {
                    f64::INFINITY
                },
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, f| {
            b.iter(|| black_box(max_min_rates(1e12, f)));
        });
    }
    group.finish();
}

fn scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scheduler_ablation");
    let base = bag_scenario(512);
    for (name, policy) in [
        ("fifo", SchedulerPolicy::Fifo),
        ("backfill", SchedulerPolicy::Backfill),
    ] {
        let mut scenario = base.clone();
        scenario.options = SimOptions {
            scheduler: policy,
            node_limit: Some(64),
            ..SimOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = sim_scaling, sim_layers, fair_share_solver, scheduler_ablation
}
criterion_main!(engine);
