//! Simulator performance benchmarks: event throughput scaling with task
//! count and dependency depth, the fair-share solver, and the scheduler
//! ablation (FIFO vs. backfill).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wrm_bench::{
    bag_scenario, generated_fork_join_scenario, generated_scenario, layered_scenario, mc_scenario,
    sweep_scenario,
};
use wrm_core::Dist;
use wrm_sim::reference::simulate_reference;
use wrm_sim::{
    max_min_rates, mc_run, run_all, simulate, simulate_in, simulate_summary_in, sweep_grid,
    FlowDemand, McOptions, McResult, Phase, Scenario, SchedulerPolicy, SimArena, SimOptions,
    SimResult, SweepGrid,
};

fn sim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/bag_scaling");
    for n in [16usize, 64, 256, 1024] {
        let scenario = bag_scenario(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn sim_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/layered");
    for (depth, width) in [(8usize, 8usize), (32, 8), (8, 32)] {
        let scenario = layered_scenario(depth, width);
        group.throughput(Throughput::Elements((depth * width) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{depth}x{width}")),
            &scenario,
            |b, s| b.iter(|| black_box(simulate(s).unwrap().makespan)),
        );
    }
    group.finish();
}

fn fair_share_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/max_min_solver");
    for n in [8usize, 64, 512, 4096] {
        let flows: Vec<FlowDemand> = (0..n)
            .map(|id| FlowDemand {
                id,
                cap: if id % 3 == 0 {
                    (id + 1) as f64
                } else {
                    f64::INFINITY
                },
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, f| {
            b.iter(|| black_box(max_min_rates(1e12, f)));
        });
    }
    group.finish();
}

fn scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scheduler_ablation");
    let base = bag_scenario(512);
    for (name, policy) in [
        ("fifo", SchedulerPolicy::Fifo),
        ("backfill", SchedulerPolicy::Backfill),
    ] {
        let mut scenario = base.clone();
        scenario.options = SimOptions {
            scheduler: policy,
            node_limit: Some(64),
            ..SimOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn generated_dags(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/generated");
    for n in [1_000usize, 10_000] {
        let scenario = generated_scenario(n, 32, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("optimized", n), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &scenario, |b, s| {
            b.iter(|| black_box(simulate_reference(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn sweep_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/sweep_threads");
    let scenarios: Vec<Scenario> = (0..32).map(|i| generated_scenario(500, 8, i)).collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &scenarios, |b, s| {
            b.iter(|| {
                for r in run_all(black_box(s), threads) {
                    black_box(r.unwrap().makespan);
                }
            });
        });
    }
    group.finish();
}

/// The contention x node-limit grid the incremental sweep engine is
/// benchmarked on: `side` values per axis, single policy. The node axis
/// (256, 316, ...) brackets the workloads' natural parallelism — the
/// smallest limits queue (exercising checkpoint replay), the rest run
/// unqueued (exercising the analytic fast path) — and stays inside the
/// machine's 4096-node pool at the full 64-value size.
fn incremental_grid(side: usize) -> SweepGrid {
    SweepGrid {
        resource: Some(wrm_core::ids::EXTERNAL.into()),
        factors: (0..side).map(|i| 0.25 + i as f64 * 0.05).collect(),
        node_limits: (0..side).map(|i| Some(256 + 60 * i as u64)).collect(),
        policies: vec![SchedulerPolicy::Fifo],
    }
}

/// The grid expanded to per-point scenarios, in `SweepGrid::index_of`
/// order — the cold path the incremental engine is measured against.
fn grid_scenarios(base: &Scenario, grid: &SweepGrid) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(grid.len());
    for fi in 0..grid.factors.len() {
        for ni in 0..grid.node_limits.len() {
            for pi in 0..grid.policies.len() {
                out.push(
                    base.clone()
                        .with_options(grid.point_options(&base.options, fi, ni, pi)),
                );
            }
        }
    }
    out
}

/// Span order within one completion instant is the single
/// representation detail the evaluation paths may legitimately differ
/// in; sort it away and compare everything else exactly.
fn canonical(mut r: SimResult) -> SimResult {
    r.trace.spans.sort_by(|a, b| {
        a.task
            .cmp(&b.task)
            .then(a.start.total_cmp(&b.start))
            .then(a.end.total_cmp(&b.end))
    });
    r
}

/// Asserts the incremental sweep matches cold per-point simulation on
/// every grid point, bit for bit.
fn assert_incremental_matches_cold(base: &Scenario, grid: &SweepGrid) -> wrm_sim::SweepStats {
    let outcome = sweep_grid(base, grid, 1);
    let cold = run_all(&grid_scenarios(base, grid), 1);
    assert_eq!(outcome.results.len(), cold.len());
    for (i, (a, b)) in outcome.results.iter().zip(&cold).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(
                canonical(x.clone()),
                canonical(y.clone()),
                "incremental diverges from cold at grid point {i}"
            ),
            (Err(x), Err(y)) => assert_eq!(x, y, "error mismatch at grid point {i}"),
            (x, y) => panic!("grid point {i}: {x:?} vs {y:?}"),
        }
    }
    outcome.stats
}

/// Small-grid incremental sweep: correctness gate first (divergence
/// panics, failing the bench — CI runs this with `--test`), then the
/// timed body.
fn sweep_incremental_smoke(c: &mut Criterion) {
    let base = sweep_scenario(200);
    let grid = incremental_grid(8);
    let stats = assert_incremental_matches_cold(&base, &grid);
    assert!(stats.fastpath > 0, "fast path unused: {stats:?}");
    assert!(stats.replayed > 0, "replay unused: {stats:?}");
    let mut group = c.benchmark_group("engine/sweep_incremental");
    group.bench_function("8x8", |b| {
        b.iter(|| black_box(sweep_grid(&base, &grid, 1).results.len()));
    });
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = sim_scaling, sim_layers, fair_share_solver, scheduler_ablation,
        generated_dags, sweep_threads, sweep_incremental_smoke
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One row of the scaling curve: shape, size, per-mode wall times.
struct ScalingRow {
    shape: &'static str,
    n: usize,
    full_ms: Option<f64>,
    summary_ms: f64,
    makespan: f64,
}

/// Builds one scaling workload by shape name.
fn scaling_scenario(shape: &str, n: usize) -> Scenario {
    match shape {
        "layered" => generated_scenario(n, 32, 42),
        "forkjoin" => generated_fork_join_scenario(n, 32, 42),
        other => panic!("unknown scaling shape {other}"),
    }
}

/// Measures one scaling row. Summary mode always runs; full-result mode
/// runs when `full` is set, and its makespan must equal the summary's
/// bit for bit (the streaming aggregates replicate the trace folds).
fn scaling_row(shape: &'static str, n: usize, full: bool, reps: usize) -> ScalingRow {
    let scenario = scaling_scenario(shape, n);
    let mut arena = SimArena::new();
    let sum = simulate_summary_in(&scenario, &mut arena).unwrap();
    assert_eq!(sum.n_tasks, n);
    let summary_ms = time_ms(reps, || {
        black_box(simulate_summary_in(&scenario, &mut arena).unwrap().makespan);
    });
    let full_ms = full.then(|| {
        let r = simulate_in(&scenario, &mut arena).unwrap();
        assert_eq!(
            r.makespan, sum.makespan,
            "summary-mode makespan must match the full engine ({shape}/{n})"
        );
        time_ms(reps, || {
            black_box(simulate_in(&scenario, &mut arena).unwrap().makespan);
        })
    });
    ScalingRow {
        shape,
        n,
        full_ms,
        summary_ms,
        makespan: sum.makespan,
    }
}

fn scaling_rows_json(rows: &[ScalingRow]) -> String {
    rows.iter()
        .map(|r| {
            let full = r
                .full_ms
                .map_or("null".to_owned(), |ms| format!("{ms:.2}"));
            format!(
                "      {{ \"shape\": \"{}\", \"n_tasks\": {}, \"full_ms\": {full}, \"summary_ms\": {:.2}, \"makespan_s\": {:.6} }}",
                r.shape, r.n, r.summary_ms, r.makespan
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// The naive Monte-Carlo loop the batched runner is measured against:
/// one single-replication engine call per replication, so every rep
/// pays index compilation and the two envelope certificates that
/// `mc_run` amortizes across the whole batch. Seeding each call with
/// `seed ^ rep` reproduces the batched runner's per-replication
/// generator, so the two paths must agree bit for bit.
fn naive_mc(scenario: &Scenario, reps: usize, seed: u64) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            mc_run(
                scenario,
                &McOptions {
                    reps: 1,
                    seed: seed ^ rep as u64,
                    threads: 1,
                },
            )
            .unwrap()
            .makespans[0]
        })
        .collect()
}

/// `scenario` with every phase distribution collapsed to a point mass
/// at the phase's nominal quantity.
fn point_mass(scenario: &Scenario) -> Scenario {
    let mut s = scenario.clone();
    for t in &mut s.workflow.tasks {
        for pd in &mut t.dists {
            let value = match &t.phases[pd.phase as usize] {
                Phase::Compute { flops, .. } => *flops,
                Phase::NodeData { bytes, .. } | Phase::SystemData { bytes, .. } => *bytes,
                Phase::Overhead { seconds, .. } => *seconds,
            };
            pd.dist = Dist::Point { value };
        }
    }
    s
}

/// Correctness gates for the Monte-Carlo engine, asserted before any
/// timing: thread fan-out and the naive loop reproduce the batched
/// makespans bit for bit, the analytic envelope brackets every sample,
/// and the all-point-mass variant collapses to one replication equal to
/// the deterministic run. Returns the batched result for reporting.
fn assert_mc_correct(scenario: &Scenario, reps: usize, seed: u64) -> McResult {
    let batched = mc_run(
        scenario,
        &McOptions {
            reps,
            seed,
            threads: 1,
        },
    )
    .unwrap();
    assert_eq!(batched.makespans.len(), reps);

    let threaded = mc_run(
        scenario,
        &McOptions {
            reps,
            seed,
            threads: 2,
        },
    )
    .unwrap();
    for (i, (a, b)) in batched
        .makespans
        .iter()
        .zip(&threaded.makespans)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "thread divergence at rep {i}");
    }

    let naive = naive_mc(scenario, reps.min(8), seed);
    for (i, (a, b)) in batched.makespans.iter().zip(&naive).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "naive divergence at rep {i}");
    }

    for (i, &m) in batched.makespans.iter().enumerate() {
        assert!(
            batched.bracket_lo <= m && m <= batched.bracket_hi,
            "rep {i} makespan {m} outside bracket [{}, {}]",
            batched.bracket_lo,
            batched.bracket_hi
        );
    }

    let pm = point_mass(scenario);
    let det = simulate_summary_in(scenario, &mut SimArena::new())
        .unwrap()
        .makespan;
    let collapsed = mc_run(
        &pm,
        &McOptions {
            reps: 16,
            seed,
            threads: 1,
        },
    )
    .unwrap();
    assert!(collapsed.degenerate, "point-mass batch did not collapse");
    assert_eq!(collapsed.makespans.len(), 1);
    assert_eq!(
        collapsed.makespans[0].to_bits(),
        det.to_bits(),
        "degenerate replication diverges from the deterministic run"
    );

    batched
}

/// CI smoke (runs under `--test`): the 100k-task layered workload in
/// summary mode must reproduce the full-result engine's makespan bit
/// for bit and finish inside a generous single-CPU wall-clock budget.
/// Writes the small scaling table to `target/scaling_smoke.json` for
/// artifact upload.
fn scaling_smoke() {
    let row = scaling_row("layered", 100_000, true, 1);
    assert!(
        row.summary_ms < 60_000.0,
        "100k-task summary run blew the smoke budget: {:.0} ms",
        row.summary_ms
    );
    let json = format!(
        "{{\n  \"bench\": \"engine/scaling_smoke\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        scaling_rows_json(&[row])
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/scaling_smoke.json"
    );
    std::fs::write(path, &json).expect("write scaling_smoke.json");
    println!("scaling smoke: wrote {path}");
}

/// Headline numbers for the PR acceptance criteria, written to
/// `BENCH_engine.json` at the workspace root: optimized-vs-reference
/// speedup on the 10k-task / 32-channel DAG, and `run_all` thread
/// scaling. Skipped in smoke mode (`--test`), where criterion already
/// exercised every bench body once.
fn write_baseline() {
    let scenario = generated_scenario(10_000, 32, 42);
    let opt = simulate(&scenario).unwrap();
    let reference = simulate_reference(&scenario).unwrap();
    assert_eq!(opt, reference, "engines must agree before we time them");

    let opt_ms = time_ms(5, || {
        black_box(simulate(&scenario).unwrap().makespan);
    });
    let ref_ms = time_ms(5, || {
        black_box(simulate_reference(&scenario).unwrap().makespan);
    });
    let speedup = ref_ms / opt_ms;

    let scenarios: Vec<Scenario> = (0..64).map(|i| generated_scenario(1_000, 8, i)).collect();
    let mut sweep_ms = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let ms = time_ms(3, || {
            for r in run_all(black_box(&scenarios), threads) {
                black_box(r.unwrap().makespan);
            }
        });
        sweep_ms.push((threads, ms));
    }
    let serial_ms = sweep_ms[0].1;

    let sweep_json: Vec<String> = sweep_ms
        .iter()
        .map(|(t, ms)| {
            format!(
                "      {{ \"threads\": {t}, \"ms\": {ms:.2}, \"speedup_vs_serial\": {:.2} }}",
                serial_ms / ms
            )
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Thread scaling is meaningless without cores to scale onto; say so
    // in the data rather than leaving a mystery 1.0x table.
    let sweep_note = if cpus == 1 {
        "\n    \"note\": \"host has 1 CPU: thread scaling cannot show a speedup here\",".to_owned()
    } else {
        String::new()
    };

    // The incremental sweep engine vs cold per-point simulation on a
    // 64x64 contention x node-limit grid, single-threaded so the win is
    // purely algorithmic. Equality is asserted before anything is timed.
    let grid_base = sweep_scenario(1_000);
    let grid = incremental_grid(64);
    let grid_stats = assert_incremental_matches_cold(&grid_base, &grid);
    let cold_scenarios = grid_scenarios(&grid_base, &grid);
    let cold_ms = time_ms(2, || {
        for r in run_all(black_box(&cold_scenarios), 1) {
            black_box(r.unwrap().makespan);
        }
    });
    let inc_ms = time_ms(3, || {
        for r in sweep_grid(black_box(&grid_base), black_box(&grid), 1).results {
            black_box(r.unwrap().makespan);
        }
    });
    let grid_speedup = cold_ms / inc_ms;

    // The Monte-Carlo replication engine vs the naive loop that pays
    // index compilation and envelope certification once per
    // replication. Correctness gates run first; the naive baseline is
    // timed before the batched runner.
    let mc_scn = mc_scenario(10_000, 42);
    let mc_reps = 1_000;
    let mc_gold = assert_mc_correct(&mc_scn, mc_reps, 42);
    let naive_ms = time_ms(1, || {
        black_box(naive_mc(&mc_scn, mc_reps, 42).len());
    });
    let batched_ms = time_ms(3, || {
        black_box(
            mc_run(
                &mc_scn,
                &McOptions {
                    reps: mc_reps,
                    seed: 42,
                    threads: 1,
                },
            )
            .unwrap()
            .mean,
        );
    });
    let mc_speedup = naive_ms / batched_ms;
    assert!(
        mc_speedup >= 5.0,
        "batched Monte-Carlo must be >= 5x the naive loop, got {mc_speedup:.2}x \
         ({naive_ms:.0} ms vs {batched_ms:.0} ms)"
    );
    let (mc_p50, mc_p90, mc_p99) = (
        mc_gold.percentiles[0].value,
        mc_gold.percentiles[1].value,
        mc_gold.percentiles[2].value,
    );
    let (mc_lo, mc_hi) = (mc_gold.bracket_lo, mc_gold.bracket_hi);
    let mc_mean = mc_gold.mean;

    // Scaling curve: 10k -> 100k (full + summary, makespans asserted
    // bit-equal) -> 1M (summary only; the full-result maps are exactly
    // what summary mode exists to avoid at that size).
    let scaling = [
        scaling_row("layered", 10_000, true, 3),
        scaling_row("layered", 100_000, true, 2),
        scaling_row("forkjoin", 100_000, true, 2),
        scaling_row("layered", 1_000_000, false, 1),
    ];

    let json = format!(
        "{{\n  \"bench\": \"engine/generated\",\n  \"workload\": \"10000 tasks, 32 shared channels, seed 42 (wrm_bench::generated_scenario)\",\n  \"host_cpus\": {cpus},\n  \"makespan_s\": {:.6},\n  \"reference_ms\": {ref_ms:.2},\n  \"optimized_ms\": {opt_ms:.2},\n  \"speedup\": {speedup:.2},\n  \"sweep\": {{\n    \"workload\": \"64 scenarios x 1000 tasks, 8 channels (wrm_sim::run_all)\",\n    \"host_cpus\": {cpus},{sweep_note}\n    \"threads\": [\n{}\n    ]\n  }},\n  \"sweep_incremental\": {{\n    \"workload\": \"1000-task layered pipeline + 16-task chained archive stage (wrm_bench::sweep_scenario)\",\n    \"grid\": \"64 contention factors (0.25..3.40 on ext) x 64 node limits (256..4036), fifo\",\n    \"host_cpus\": {cpus},\n    \"threads\": 1,\n    \"cold_ms\": {cold_ms:.2},\n    \"incremental_ms\": {inc_ms:.2},\n    \"speedup\": {grid_speedup:.2},\n    \"points\": {{ \"fastpath\": {}, \"replayed\": {}, \"cold\": {}, \"reused\": {}, \"errors\": {} }},\n    \"note\": \"single-threaded by construction (algorithmic win); incremental results asserted bit-identical to cold per-point simulation before timing\"\n  }},\n  \"mc\": {{\n    \"workload\": \"10000-task layered DAG, distributional durations, seed 42 (wrm_bench::mc_scenario)\",\n    \"reps\": {mc_reps},\n    \"seed\": 42,\n    \"host_cpus\": {cpus},\n    \"threads\": 1,\n    \"naive_ms\": {naive_ms:.2},\n    \"batched_ms\": {batched_ms:.2},\n    \"speedup\": {mc_speedup:.2},\n    \"makespan_mean_s\": {mc_mean:.6},\n    \"p50_s\": {mc_p50:.6},\n    \"p90_s\": {mc_p90:.6},\n    \"p99_s\": {mc_p99:.6},\n    \"bracket_s\": [{mc_lo:.6}, {mc_hi:.6}],\n    \"note\": \"naive = one single-replication engine call per rep (fresh index + envelope certificates each time); batched makespans asserted bit-identical to the naive loop and across thread counts, bracket containment and degenerate collapse asserted before timing\"\n  }},\n  \"scaling\": {{\n    \"workload\": \"generated layered / fork-join DAGs, 32 shared channels, seed 42 (wrm_bench::generated_scenario / generated_fork_join_scenario)\",\n    \"host_cpus\": {cpus},\n    \"rows\": [\n{}\n    ],\n    \"note\": \"summary-mode makespans asserted bit-equal to the full engine wherever both run; 1M-task row is summary-only (O(channels) result memory)\"\n  }},\n  \"methodology\": \"cargo bench -p wrm-bench --bench engine; headline: best of 5 runs; sweep: best of 3 (cold grid: best of 2; 100k rows: best of 2; 1M row: single run); mc: naive best of 1 (1000 replications amortize per-rep noise), batched best of 3; see docs/PERF.md\"\n}}\n",
        opt.makespan,
        sweep_json.join(",\n"),
        grid_stats.fastpath,
        grid_stats.replayed,
        grid_stats.cold,
        grid_stats.reused,
        grid_stats.errors,
        scaling_rows_json(&scaling)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("engine baseline: {speedup:.1}x vs reference ({ref_ms:.1} ms -> {opt_ms:.1} ms); wrote {path}");
    println!(
        "incremental sweep: {grid_speedup:.1}x vs cold on the 64x64 grid \
         ({cold_ms:.0} ms -> {inc_ms:.0} ms; {} fastpath / {} replayed / {} cold / {} reused)",
        grid_stats.fastpath, grid_stats.replayed, grid_stats.cold, grid_stats.reused
    );
    println!(
        "monte-carlo: {mc_speedup:.1}x vs naive over {mc_reps} replications \
         ({naive_ms:.0} ms -> {batched_ms:.0} ms; p50 {mc_p50:.1} s, p99 {mc_p99:.1} s)"
    );
}

/// CI smoke for the Monte-Carlo engine (runs under `--test`): every
/// correctness gate on a 2000-task workload with 64 replications.
fn mc_smoke() {
    let scenario = mc_scenario(2_000, 42);
    let mc = assert_mc_correct(&scenario, 64, 7);
    println!(
        "mc smoke: {} reps, mean {:.2} s, bracket [{:.2}, {:.2}] s",
        mc.reps, mc.mean, mc.bracket_lo, mc.bracket_hi
    );
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        engine();
        scaling_smoke();
        mc_smoke();
    } else {
        // Headline timings first, in a quiet process: criterion's long
        // churn ahead of them inflates the measurements noticeably on a
        // 1-CPU host.
        write_baseline();
        engine();
    }
}
