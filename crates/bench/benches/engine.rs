//! Simulator performance benchmarks: event throughput scaling with task
//! count and dependency depth, the fair-share solver, and the scheduler
//! ablation (FIFO vs. backfill).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wrm_bench::{bag_scenario, generated_scenario, layered_scenario};
use wrm_sim::reference::simulate_reference;
use wrm_sim::{
    max_min_rates, run_all, simulate, FlowDemand, Scenario, SchedulerPolicy, SimOptions,
};

fn sim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/bag_scaling");
    for n in [16usize, 64, 256, 1024] {
        let scenario = bag_scenario(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn sim_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/layered");
    for (depth, width) in [(8usize, 8usize), (32, 8), (8, 32)] {
        let scenario = layered_scenario(depth, width);
        group.throughput(Throughput::Elements((depth * width) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{depth}x{width}")),
            &scenario,
            |b, s| b.iter(|| black_box(simulate(s).unwrap().makespan)),
        );
    }
    group.finish();
}

fn fair_share_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/max_min_solver");
    for n in [8usize, 64, 512, 4096] {
        let flows: Vec<FlowDemand> = (0..n)
            .map(|id| FlowDemand {
                id,
                cap: if id % 3 == 0 {
                    (id + 1) as f64
                } else {
                    f64::INFINITY
                },
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, f| {
            b.iter(|| black_box(max_min_rates(1e12, f)));
        });
    }
    group.finish();
}

fn scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scheduler_ablation");
    let base = bag_scenario(512);
    for (name, policy) in [
        ("fifo", SchedulerPolicy::Fifo),
        ("backfill", SchedulerPolicy::Backfill),
    ] {
        let mut scenario = base.clone();
        scenario.options = SimOptions {
            scheduler: policy,
            node_limit: Some(64),
            ..SimOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn generated_dags(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/generated");
    for n in [1_000usize, 10_000] {
        let scenario = generated_scenario(n, 32, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("optimized", n), &scenario, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &scenario, |b, s| {
            b.iter(|| black_box(simulate_reference(s).unwrap().makespan));
        });
    }
    group.finish();
}

fn sweep_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/sweep_threads");
    let scenarios: Vec<Scenario> = (0..32).map(|i| generated_scenario(500, 8, i)).collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &scenarios, |b, s| {
            b.iter(|| {
                for r in run_all(black_box(s), threads) {
                    black_box(r.unwrap().makespan);
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = sim_scaling, sim_layers, fair_share_solver, scheduler_ablation,
        generated_dags, sweep_threads
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Headline numbers for the PR acceptance criteria, written to
/// `BENCH_engine.json` at the workspace root: optimized-vs-reference
/// speedup on the 10k-task / 32-channel DAG, and `run_all` thread
/// scaling. Skipped in smoke mode (`--test`), where criterion already
/// exercised every bench body once.
fn write_baseline() {
    let scenario = generated_scenario(10_000, 32, 42);
    let opt = simulate(&scenario).unwrap();
    let reference = simulate_reference(&scenario).unwrap();
    assert_eq!(opt, reference, "engines must agree before we time them");

    let opt_ms = time_ms(3, || {
        black_box(simulate(&scenario).unwrap().makespan);
    });
    let ref_ms = time_ms(3, || {
        black_box(simulate_reference(&scenario).unwrap().makespan);
    });
    let speedup = ref_ms / opt_ms;

    let scenarios: Vec<Scenario> = (0..64).map(|i| generated_scenario(1_000, 8, i)).collect();
    let mut sweep_ms = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let ms = time_ms(3, || {
            for r in run_all(black_box(&scenarios), threads) {
                black_box(r.unwrap().makespan);
            }
        });
        sweep_ms.push((threads, ms));
    }
    let serial_ms = sweep_ms[0].1;

    let sweep_json: Vec<String> = sweep_ms
        .iter()
        .map(|(t, ms)| {
            format!(
                "    {{ \"threads\": {t}, \"ms\": {ms:.2}, \"speedup_vs_serial\": {:.2} }}",
                serial_ms / ms
            )
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"engine/generated\",\n  \"workload\": \"10000 tasks, 32 shared channels, seed 42 (wrm_bench::generated_scenario)\",\n  \"host_cpus\": {cpus},\n  \"makespan_s\": {:.6},\n  \"reference_ms\": {ref_ms:.2},\n  \"optimized_ms\": {opt_ms:.2},\n  \"speedup\": {speedup:.2},\n  \"sweep\": {{\n    \"workload\": \"64 scenarios x 1000 tasks, 8 channels (wrm_sim::run_all)\",\n    \"threads\": [\n{}\n    ]\n  }},\n  \"methodology\": \"cargo bench -p wrm-bench --bench engine; best of 3 runs; see docs/CLI.md\"\n}}\n",
        opt.makespan,
        sweep_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("engine baseline: {speedup:.1}x vs reference ({ref_ms:.1} ms -> {opt_ms:.1} ms); wrote {path}");
}

fn main() {
    engine();
    if !std::env::args().any(|a| a == "--test") {
        write_baseline();
    }
}
