//! `wrm serve` load generator and latency benchmark.
//!
//! Three modes:
//!
//! * default — full benchmark: spawns an in-process server, hammers it
//!   with a mixed open-loop workload from several client threads,
//!   reports p50/p99 latency per endpoint plus the cache/path mix, and
//!   writes `BENCH_serve.json` at the workspace root. The headline is
//!   warm-cache sweep latency over the wire vs the one-shot CLI
//!   (`target/release/wrm sweep …`) doing the same grid from scratch.
//! * `--test` — smoke: a short in-process run asserting responses stay
//!   byte-stable under concurrency; no files written.
//! * `--check --wrm <path>` — CI gate: spawns `<path> serve` as a real
//!   process, diffs server responses against `<path> sweep/simulate`
//!   stdout, then delivers SIGTERM and verifies the graceful drain.
//!
//! Methodology notes live in `docs/SERVE.md`.

use std::io::{BufRead, BufReader, Read};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use wrm_serve::client::{self, Client};
use wrm_serve::{spawn, ServerConfig};

const LCLS_WRM: &str = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;

/// The benchmark grid: 8 contention factors x 2 policies = 16 rows.
const FACTORS: &str = "0.25,0.5,0.75,1.0,1.5,2.0,2.5,3.0";
const FACTORS_JSON: &str = "[0.25,0.5,0.75,1.0,1.5,2.0,2.5,3.0]";

fn source_body(source: &str, extra: &str) -> String {
    let escaped = serde_json::Value::String(source.to_owned()).to_string();
    format!("{{\"workflow\":{escaped}{extra}}}")
}

fn sweep_body() -> String {
    source_body(
        LCLS_WRM,
        &format!(
            ",\"resource\":\"ext\",\"factors\":{FACTORS_JSON},\
             \"policies\":[\"fifo\",\"backfill\"],\"format\":\"csv\""
        ),
    )
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client thread's share of the open-loop workload: requests are
/// issued on a fixed arrival schedule (not back-to-back), so queueing
/// at the server shows up as latency instead of reduced offered load.
fn client_loop(
    addr: &str,
    requests: usize,
    interval: Duration,
    sweep: &str,
    simulate: &str,
    certify: &str,
) -> Vec<(&'static str, u64, bool)> {
    let mut conn = Client::connect(addr).expect("client connects");
    let mut samples = Vec::with_capacity(requests);
    let epoch = Instant::now();
    for i in 0..requests {
        let due = epoch + interval * u32::try_from(i).unwrap_or(u32::MAX);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // Mixed workload: mostly sweeps (the hot path), some simulate /
        // certify, an occasional health probe.
        let (label, path, body) = match i % 10 {
            0..=4 => ("sweep", "/v1/sweep", Some(sweep)),
            5 | 6 => ("simulate", "/v1/simulate", Some(simulate)),
            7 | 8 => ("certify", "/v1/certify", Some(certify)),
            _ => ("healthz", "/healthz", None),
        };
        let method = if body.is_some() { "POST" } else { "GET" };
        let start = Instant::now();
        let ok = match conn.request(method, path, body) {
            Ok(r) => r.status == 200,
            Err(_) => {
                // Reconnect and keep the schedule; the failure is
                // recorded against this slot.
                conn = Client::connect(addr).expect("client reconnects");
                false
            }
        };
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        samples.push((label, us, ok));
    }
    samples
}

struct EndpointReport {
    label: &'static str,
    count: usize,
    errors: usize,
    p50_us: u64,
    p99_us: u64,
    mean_us: u64,
}

fn summarize(samples: &[(&'static str, u64, bool)]) -> Vec<EndpointReport> {
    let mut reports = Vec::new();
    for label in ["sweep", "simulate", "certify", "healthz"] {
        let mut lats: Vec<u64> = samples
            .iter()
            .filter(|(l, _, _)| *l == label)
            .map(|(_, us, _)| *us)
            .collect();
        if lats.is_empty() {
            continue;
        }
        lats.sort_unstable();
        let errors = samples
            .iter()
            .filter(|(l, _, ok)| *l == label && !ok)
            .count();
        let mean = lats.iter().sum::<u64>() / lats.len() as u64;
        reports.push(EndpointReport {
            label,
            count: lats.len(),
            errors,
            p50_us: percentile_us(&lats, 0.50),
            p99_us: percentile_us(&lats, 0.99),
            mean_us: mean,
        });
    }
    reports
}

/// Times one warmed-up run of `f` per round and returns the best.
fn best_ms(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One-shot CLI latency for the same sweep: process start, parse, lint,
/// compile, index build, simulate, render. `None` when the release
/// binary has not been built.
fn cli_one_shot_ms(wf_path: &str) -> Option<f64> {
    let wrm = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/release/wrm");
    if !std::path::Path::new(wrm).exists() {
        return None;
    }
    let run = || {
        let out = Command::new(wrm)
            .args([
                "sweep",
                wf_path,
                "--resource",
                "ext",
                "--factors",
                FACTORS,
                "--policies",
                "fifo,backfill",
                "--format",
                "csv",
                "--quiet",
            ])
            .output()
            .expect("cli sweep runs");
        assert!(out.status.success(), "cli sweep failed");
    };
    run(); // warm the page cache
    Some(best_ms(3, run))
}

fn full_bench() {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        cache_capacity: 32,
        quiet: true,
    })
    .expect("server spawns");
    let addr = server.addr().to_string();

    let sweep = sweep_body();
    let simulate = source_body(LCLS_WRM, "");
    let certify = source_body(LCLS_WRM, "");

    // Cold-cache reference request, then a warm-cache latency baseline
    // on an otherwise idle server.
    let t0 = Instant::now();
    let cold = client::request(&addr, "POST", "/v1/sweep", Some(&sweep)).expect("cold sweep");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.status, 200, "{}", cold.text());
    let mut idle = Client::connect(&addr).expect("connect");
    let warm_idle_ms = best_ms(5, || {
        let r = idle
            .request("POST", "/v1/sweep", Some(&sweep))
            .expect("warm sweep");
        assert_eq!(r.body, cold.body, "warm bytes diverged");
    });

    // Open-loop load: 4 clients x 100 requests at 5 ms arrivals.
    let clients = 4usize;
    let per_client = 100usize;
    let interval = Duration::from_millis(5);
    let load_start = Instant::now();
    let samples: Vec<(&'static str, u64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (addr, sweep, simulate, certify) = (&addr, &sweep, &simulate, &certify);
                scope.spawn(move || {
                    client_loop(addr, per_client, interval, sweep, simulate, certify)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let load_s = load_start.elapsed().as_secs_f64();
    let reports = summarize(&samples);

    let metrics = client::request(&addr, "GET", "/metrics/json", None).expect("metrics");
    let snap: serde_json::Value = serde_json::from_str(&metrics.text()).expect("snapshot");
    let cache = snap
        .get("cache")
        .cloned()
        .unwrap_or(serde_json::Value::Null);
    let paths = snap
        .get("sweep_paths")
        .cloned()
        .unwrap_or(serde_json::Value::Null);
    server.shutdown();

    // The CLI comparison: same grid, cold process each time.
    let dir = std::env::temp_dir().join("wrm_bench_serve");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write workflow");
    let cli_ms = cli_one_shot_ms(wf_path.to_str().expect("utf8"));
    std::fs::remove_dir_all(&dir).ok();

    let endpoint_rows: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{ \"endpoint\": \"{}\", \"requests\": {}, \"errors\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {} }}",
                r.label, r.count, r.errors, r.p50_us, r.p99_us, r.mean_us
            )
        })
        .collect();
    let (cli_json, headline) = match cli_ms {
        Some(ms) => (
            format!("{ms:.2}"),
            format!(
                "warm-cache server sweep {warm_idle_ms:.2} ms vs one-shot CLI {ms:.2} ms \
                 ({:.1}x)",
                ms / warm_idle_ms
            ),
        ),
        None => (
            "null".to_owned(),
            format!(
                "warm-cache server sweep {warm_idle_ms:.2} ms \
                 (build target/release/wrm for the CLI comparison)"
            ),
        ),
    };
    let total = samples.len();
    let json = format!(
        "{{\n  \"bench\": \"serve/loadgen\",\n  \"workload\": \"{clients} clients x {per_client} requests, \
         5 ms open-loop arrivals; mix 50% sweep (8 factors x 2 policies on ext), 20% simulate, \
         20% certify, 10% healthz\",\n  \"host_cpus\": {cpus},\n  \"duration_s\": {load_s:.2},\n  \
         \"offered_rps\": {:.1},\n  \"endpoints\": [\n{}\n  ],\n  \"cache\": {},\n  \
         \"sweep_paths\": {},\n  \"sweep_latency\": {{\n    \"cold_cache_ms\": {cold_ms:.2},\n    \
         \"warm_cache_ms\": {warm_idle_ms:.2},\n    \"cli_one_shot_ms\": {cli_json}\n  }},\n  \
         \"methodology\": \"cargo bench -p wrm-bench --bench serve; in-process server \
         (workers auto, cache 32); warm/CLI latency: best of 5 / best of 3; \
         see docs/SERVE.md\"\n}}\n",
        total as f64 / load_s,
        endpoint_rows.join(",\n"),
        cache,
        paths,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("serve bench: {headline}");
    for r in &reports {
        println!(
            "  {:<9} {:>4} req  p50 {:>7} us  p99 {:>7} us  {} error(s)",
            r.label, r.count, r.p50_us, r.p99_us, r.errors
        );
    }
    println!("wrote {path}");
}

/// Short in-process smoke for `--test`: correctness only, no timing.
fn smoke() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity: 4,
        quiet: true,
    })
    .expect("server spawns");
    let addr = server.addr().to_string();
    let body = sweep_body();
    let first = client::request(&addr, "POST", "/v1/sweep", Some(&body)).expect("sweep");
    assert_eq!(first.status, 200, "{}", first.text());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (addr, body, want) = (&addr, &body, &first.body);
            scope.spawn(move || {
                let r = client::request(addr, "POST", "/v1/sweep", Some(body)).expect("sweep");
                assert_eq!(&r.body, want, "concurrent bytes diverged");
            });
        }
    });
    let report = server.shutdown();
    assert_eq!(report.abandoned, 0);
    println!("serve smoke: ok ({} request(s) served)", report.served);
}

/// Resolves the `--wrm` argument: cargo runs benches with the package
/// directory as cwd, so a path relative to the workspace root (the
/// natural thing to pass in CI) is retried against it.
fn resolve_wrm(arg: &str) -> std::path::PathBuf {
    let direct = std::path::Path::new(arg);
    if direct.exists() {
        return direct.to_owned();
    }
    let from_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(arg);
    if from_root.exists() {
        return from_root;
    }
    direct.to_owned()
}

/// CI gate for `--check --wrm <path>`: real process, real signals.
fn check(wrm: &str) {
    let wrm = resolve_wrm(wrm);
    let dir = std::env::temp_dir().join("wrm_serve_check");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write workflow");
    let wf = wf_path.to_str().expect("utf8");

    let cli = Command::new(&wrm)
        .args([
            "sweep",
            wf,
            "--resource",
            "ext",
            "--factors",
            FACTORS,
            "--policies",
            "fifo,backfill",
            "--format",
            "csv",
            "--quiet",
        ])
        .output()
        .expect("cli sweep runs");
    assert!(
        cli.status.success(),
        "cli sweep: {}",
        String::from_utf8_lossy(&cli.stderr)
    );

    let mut child = Command::new(&wrm)
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("listening line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();

    // Cold + warm responses must equal the CLI bytes.
    let body = sweep_body();
    for pass in ["cold", "warm"] {
        let r = client::request(&addr, "POST", "/v1/sweep", Some(&body)).expect("sweep");
        assert_eq!(r.status, 200, "{pass}: {}", r.text());
        assert_eq!(r.body, cli.stdout, "{pass}-cache sweep != CLI bytes");
    }
    let r = client::request(&addr, "GET", "/metrics", None).expect("metrics");
    assert!(r.text().contains("wrm_cache_hits_total 1"), "{}", r.text());

    // Graceful SIGTERM drain.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "kill -TERM failed");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit after SIGTERM: {status:?}");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain output");
    assert!(rest.contains("drained"), "no drain report in {rest:?}");

    std::fs::remove_dir_all(&dir).ok();
    println!("serve check: ok (responses match CLI; SIGTERM drained cleanly)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--check") {
        let wrm = args
            .iter()
            .position(|a| a == "--wrm")
            .and_then(|i| args.get(i + 1))
            .expect("--check needs --wrm <path-to-wrm-binary>");
        check(wrm);
    } else if args.iter().any(|a| a == "--test") {
        smoke();
    } else {
        full_bench();
    }
}
