//! One criterion group per paper figure/table: each benchmark *is* the
//! regeneration harness. The measured quantity is the time to build the
//! figure's series end-to-end (simulate + characterize + model); the
//! headline numbers are printed once per group so `cargo bench` output
//! doubles as the paper-vs-model comparison record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;
use wrm_core::{ids, machines, RooflineModel, Seconds, TaskView};
use wrm_dag::{list_schedule, GanttChart, Policy};
use wrm_sim::simulate;
use wrm_workflows::{example, table1, Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

static HEADER: Once = Once::new();

fn banner() {
    HEADER.call_once(|| {
        println!("\n== Workflow Roofline reproduction: paper-vs-model headlines ==");
    });
}

fn f1_example(c: &mut Criterion) {
    banner();
    let model = RooflineModel::build(
        &machines::perlmutter_gpu(),
        &example::fig1_characterization(),
    )
    .unwrap();
    println!(
        "[F1] example model: wall {} (paper 28), {} ceilings",
        model.parallelism_wall,
        model.ceilings.len()
    );
    c.bench_function("figures/f1_example", |b| {
        b.iter(|| {
            let wf = example::fig1_characterization();
            black_box(RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap())
        });
    });
}

fn f2_zones(c: &mut Criterion) {
    banner();
    let wf = wrm_core::WorkflowCharacterization::builder("ensemble")
        .total_tasks(8.0)
        .parallel_tasks(8.0)
        .nodes_per_task(64)
        .makespan(Seconds::secs(800.0))
        .node_volume(
            ids::COMPUTE,
            wrm_core::Work::Flops(wrm_core::Flops::pflops(20.0)),
        )
        .target_makespan(Seconds::secs(1000.0))
        .target_throughput(wrm_core::TasksPerSec(0.05))
        .build()
        .unwrap();
    let zone = wrm_core::analysis::classify_zone(&wf).unwrap();
    let shifted = wrm_core::analysis::scale_intra_task_parallelism(&wf, 2.0, 1.0).unwrap();
    let m = machines::perlmutter_gpu();
    let base = RooflineModel::build(&m, &wf).unwrap();
    let moved = RooflineModel::build(&m, &shifted).unwrap();
    println!(
        "[F2] zone {:?}; 2x intra-task: wall {} -> {} (2x), node ceiling {:.3e} -> {:.3e} (2x)",
        zone.zone,
        base.parallelism_wall,
        moved.parallelism_wall,
        base.node_ceilings()[0].tps_at(2.0).get(),
        moved.node_ceilings()[0].tps_at(2.0).get()
    );
    c.bench_function("figures/f2_zones_and_whatif", |b| {
        b.iter(|| {
            let z = wrm_core::analysis::classify_zone(black_box(&wf)).unwrap();
            let s = wrm_core::analysis::scale_intra_task_parallelism(&wf, 2.0, 1.0).unwrap();
            black_box((z, s))
        });
    });
}

fn f5_f6_lcls(c: &mut Criterion) {
    banner();
    let lcls = Lcls::year_2020_on_cori();
    let cori = machines::cori_haswell();
    let good = simulate(&lcls.scenario(cori.clone(), Day::Good)).unwrap();
    let bad = simulate(&lcls.scenario(cori.clone(), Day::Bad)).unwrap();
    println!(
        "[F5] LCLS Cori: good {:.0} s (paper 1020), bad {:.0} s (paper 5100), ratio {:.1}x \
         (paper 5x); loading dominates: {:.0}% of good-day time",
        good.makespan,
        bad.makespan,
        bad.makespan / good.makespan,
        good.trace.breakdown().get("io:ext") / good.trace.breakdown().total() * 100.0
    );
    let pm = Lcls::year_2024_on_pm();
    let wf = pm.characterization(ids::FILE_SYSTEM, None);
    let model = RooflineModel::build(&machines::perlmutter_cpu(), &wf).unwrap();
    let ext = model
        .ceilings
        .iter()
        .find(|x| x.resource.as_str() == ids::EXTERNAL)
        .unwrap();
    println!(
        "[F6] LCLS PM-CPU: wall {} (paper 384), external ceiling {:.3} vs target {:.3} tasks/s",
        model.parallelism_wall,
        ext.tps_at_one.get(),
        wf.targets.throughput.unwrap().get()
    );
    c.bench_function("figures/f5_lcls_good_and_bad_day", |b| {
        b.iter(|| {
            let g = simulate(&lcls.scenario(cori.clone(), Day::Good)).unwrap();
            let w = simulate(&lcls.scenario(cori.clone(), Day::Bad)).unwrap();
            black_box((g.makespan, w.makespan))
        });
    });
    c.bench_function("figures/f6_lcls_pm_model", |b| {
        b.iter(|| {
            let wf = pm.characterization(ids::FILE_SYSTEM, None);
            black_box(RooflineModel::build(&machines::perlmutter_cpu(), &wf).unwrap())
        });
    });
}

fn f7_bgw(c: &mut Criterion) {
    banner();
    for bgw in [Bgw::si998_64(), Bgw::si998_1024()] {
        let run = simulate(&bgw.scenario()).unwrap();
        let model =
            RooflineModel::build(&machines::perlmutter_gpu(), &bgw.characterization(true)).unwrap();
        println!(
            "[F7] BGW {} nodes: wall {}, simulated {:.1} s vs measured {:.1} s, \
             {:.0}% of node peak (paper {}%)",
            bgw.nodes,
            model.parallelism_wall,
            run.makespan,
            bgw.makespan().get(),
            model.efficiency().unwrap() * 100.0,
            if bgw.nodes == 64 { 42 } else { 30 }
        );
    }
    let view = TaskView::build(
        &machines::perlmutter_gpu(),
        &Bgw::si998_1024().task_characterizations(),
    )
    .unwrap();
    println!(
        "[F7c] dominant {}, candidate {}",
        view.dominant_task().unwrap().name,
        view.best_optimization_candidate().unwrap().name
    );
    let dag = Bgw::si998_64().dag();
    let sched = list_schedule(&dag, 1792, Policy::Fifo).unwrap();
    let gantt = GanttChart::build(&dag, &sched).unwrap();
    println!(
        "[F7d] critical-path coverage {:.0}% (paper: CP unchanged across scales)",
        gantt.critical_path_coverage() * 100.0
    );
    let bgw = Bgw::si998_64();
    c.bench_function("figures/f7_bgw_simulate", |b| {
        b.iter(|| black_box(simulate(&bgw.scenario()).unwrap().makespan));
    });
    c.bench_function("figures/f7_bgw_model", |b| {
        b.iter(|| {
            black_box(
                RooflineModel::build(&machines::perlmutter_gpu(), &bgw.characterization(true))
                    .unwrap(),
            )
        });
    });
}

fn f8_cosmoflow(c: &mut Criterion) {
    banner();
    let mut rates = Vec::new();
    for n in [1usize, 6, 12] {
        let mut cf = CosmoFlow::throughput_benchmark(n);
        cf.epochs_per_instance = 3;
        let run = simulate(&cf.scenario()).unwrap();
        rates.push((n, cf.total_epochs() / run.makespan));
    }
    let linearity = rates[2].1 / (12.0 * rates[0].1);
    println!(
        "[F8] CosmoFlow epochs/s at 1/6/12 instances: {:.3}/{:.3}/{:.3}; linearity {:.0}% \
         (paper: linear to the 12-instance wall, HBM binding)",
        rates[0].1,
        rates[1].1,
        rates[2].1,
        linearity * 100.0
    );
    let mut cf = CosmoFlow::throughput_benchmark(4);
    cf.epochs_per_instance = 3;
    c.bench_function("figures/f8_cosmoflow_4x3epochs", |b| {
        b.iter(|| black_box(simulate(&cf.scenario()).unwrap().makespan));
    });
}

fn f10_gptune(c: &mut Criterion) {
    banner();
    let g = GpTune::default();
    let rci = simulate(&g.scenario(Mode::Rci)).unwrap().makespan;
    let spawn = simulate(&g.scenario(Mode::Spawn)).unwrap().makespan;
    let projected = simulate(&g.scenario(Mode::Projected)).unwrap().makespan;
    println!(
        "[F10] GPTune: RCI {rci:.0} s (paper 553), Spawn {spawn:.0} s (paper 228), \
         speedup {:.1}x (paper 2.4x); projected {projected:.0} s = {:.1}x over Spawn \
         (paper ~12x)",
        rci / spawn,
        spawn / projected
    );
    println!("[T1]\n{}", table1::render_table1());
    c.bench_function("figures/f10_gptune_three_modes", |b| {
        b.iter(|| {
            let r = simulate(&g.scenario(Mode::Rci)).unwrap().makespan;
            let s = simulate(&g.scenario(Mode::Spawn)).unwrap().makespan;
            black_box((r, s))
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = f1_example, f2_zones, f5_f6_lcls, f7_bgw, f8_cosmoflow, f10_gptune
}
criterion_main!(figures);
