//! Model-side benchmarks: roofline construction and evaluation
//! throughput, envelope sweeps, and the sharing-discipline ablation
//! (max–min vs. equal split) called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wrm_core::{
    ids, machines, Bytes, Flops, RooflineModel, Seconds, Work, WorkflowCharacterization,
};
use wrm_sim::{simulate, Sharing, SimOptions};

fn characterization(n_resources: usize) -> WorkflowCharacterization {
    let mut b = WorkflowCharacterization::builder("bench")
        .total_tasks(16.0)
        .parallel_tasks(8.0)
        .nodes_per_task(64)
        .makespan(Seconds::secs(1000.0))
        .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(10.0)));
    let all = [ids::HBM, ids::PCIE];
    for r in all.iter().take(n_resources.min(all.len())) {
        b = b.node_volume(*r, Work::Bytes(Bytes::tb(1.0)));
    }
    b = b.system_volume(ids::FILE_SYSTEM, Bytes::tb(10.0));
    b = b.system_volume(ids::NETWORK, Bytes::tb(50.0));
    b.build().expect("valid")
}

fn model_build(c: &mut Criterion) {
    let machine = machines::perlmutter_gpu();
    let mut group = c.benchmark_group("model/build");
    for n in [0usize, 1, 2] {
        let wf = characterization(n);
        group.bench_with_input(BenchmarkId::from_parameter(3 + n), &wf, |b, wf| {
            b.iter(|| black_box(RooflineModel::build(&machine, wf).unwrap()));
        });
    }
    group.finish();
}

fn envelope_sweep(c: &mut Criterion) {
    let machine = machines::perlmutter_gpu();
    let model = RooflineModel::build(&machine, &characterization(2)).unwrap();
    let mut group = c.benchmark_group("model/envelope_sweep");
    for points in [64usize, 1024] {
        group.throughput(Throughput::Elements(points as u64));
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n {
                    let x = 1.0 + (i as f64) * 27.0 / n as f64;
                    if let Some(env) = model.envelope_at(x) {
                        acc += env.get();
                    }
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn advisor(c: &mut Criterion) {
    let machine = machines::perlmutter_gpu();
    let model = RooflineModel::build(&machine, &characterization(2)).unwrap();
    c.bench_function("model/advise", |b| {
        b.iter(|| black_box(wrm_core::analysis::advise(&model)));
    });
}

/// Ablation: the work-conserving max–min solver vs. naive equal split.
/// With a mix of rate-capped background-ish flows and uncapped bulk
/// flows, equal split strands the bandwidth the capped flows cannot use:
/// the bulk transfers crawl at the arithmetic share instead of absorbing
/// the slack. The printed comparison records the modelling error the
/// naive discipline would introduce into every contention figure.
fn sharing_ablation(c: &mut Criterion) {
    use wrm_core::{ids, BytesPerSec, Machine};
    use wrm_sim::{Phase, Scenario, TaskSpec, WorkflowSpec};

    let machine = Machine::builder("ablation", 256)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(100.0))
        .build()
        .expect("valid machine");
    // 56 slow, capped metadata-style flows (10 GB at 50 MB/s = 200 s)
    // and 8 uncapped 200 GB bulk transfers.
    let mut wf = WorkflowSpec::new("mixed");
    for i in 0..56 {
        wf = wf.task(
            TaskSpec::new(format!("capped{i}"), 1).phase(Phase::SystemData {
                resource: ids::FILE_SYSTEM.into(),
                bytes: 10e9,
                stream_cap: Some(0.05e9),
            }),
        );
    }
    for i in 0..8 {
        wf = wf.task(
            TaskSpec::new(format!("bulk{i}"), 1).phase(Phase::system_data(ids::FILE_SYSTEM, 200e9)),
        );
    }
    let scenario = Scenario::new(machine, wf);

    let bulk_mean = |sharing: Sharing| -> f64 {
        let mut sc = scenario.clone();
        sc.options = SimOptions {
            sharing,
            ..SimOptions::default()
        };
        let r = simulate(&sc).expect("simulates");
        let (sum, n) = r
            .task_times
            .iter()
            .filter(|(name, _)| name.starts_with("bulk"))
            .fold((0.0, 0usize), |(s, n), (_, t)| (s + t, n + 1));
        sum / n as f64
    };
    let mm = bulk_mean(Sharing::MaxMin);
    let eq = bulk_mean(Sharing::EqualSplit);
    println!(
        "[ablation] bulk transfers next to capped flows: max-min {mm:.1} s vs \
         equal-split {eq:.1} s mean completion ({:.1}x slower under the naive \
         discipline)",
        eq / mm
    );

    let mut group = c.benchmark_group("model/sharing_ablation");
    for (name, sharing) in [
        ("max_min", Sharing::MaxMin),
        ("equal_split", Sharing::EqualSplit),
    ] {
        let mut sc = scenario.clone();
        sc.options = SimOptions {
            sharing,
            ..SimOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, s| {
            b.iter(|| black_box(simulate(s).unwrap().makespan));
        });
    }
    group.finish();
}

criterion_group! {
    name = model;
    config = Criterion::default().sample_size(10);
    targets = model_build, envelope_sweep, advisor, sharing_ablation
}
criterion_main!(model);
