//! # wrm-bench — benchmark harnesses for the paper's tables and figures
//!
//! The criterion benches in `benches/` regenerate every evaluation
//! element of the paper:
//!
//! * `figures` — one group per figure (F1–F10) and Table I: builds the
//!   same series the paper reports and prints the headline comparisons.
//! * `engine` — simulator performance: event throughput vs. task count,
//!   fair-share solver scaling, scheduler ablation (FIFO vs. backfill).
//! * `model` — roofline construction/evaluation throughput and the
//!   max–min vs. equal-split sharing ablation.
//!
//! This library crate hosts the shared workload builders so the three
//! bench binaries stay small and consistent.

use wrm_core::{ids, BytesPerSec, Dist, Machine};
use wrm_sim::{Phase, Scenario, TaskSpec, WorkflowSpec};

/// A synthetic bag of `n` tasks, each with an overhead phase and a
/// shared-file-system read, on a 256-node machine with a 100 GB/s FS.
pub fn bag_scenario(n: usize) -> Scenario {
    let machine = Machine::builder("bench", 256)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(100.0))
        .build()
        .expect("valid machine");
    let mut wf = WorkflowSpec::new(format!("bag[{n}]"));
    for i in 0..n {
        wf = wf.task(
            TaskSpec::new(format!("t{i}"), 1)
                .phase(Phase::overhead("setup", 1.0))
                .phase(Phase::system_data(ids::FILE_SYSTEM, 10e9)),
        );
    }
    Scenario::new(machine, wf)
}

/// A chain of `depth` stages, each a `width`-wide layer gated on the
/// previous layer (layered pipeline), stressing dependency handling.
pub fn layered_scenario(depth: usize, width: usize) -> Scenario {
    let machine = Machine::builder("bench", 512)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(100.0))
        .build()
        .expect("valid machine");
    let mut wf = WorkflowSpec::new(format!("layers[{depth}x{width}]"));
    for d in 0..depth {
        for w in 0..width {
            let mut t = TaskSpec::new(format!("t{d}.{w}"), 1)
                .phase(Phase::system_data(ids::FILE_SYSTEM, 1e9));
            if d > 0 {
                for p in 0..width {
                    t = t.after(format!("t{}.{p}", d - 1));
                }
            }
            wf = wf.task(t);
        }
    }
    Scenario::new(machine, wf)
}

/// A generated large-scale layered workload: `n_tasks` tasks (from
/// [`wrm_dag::generate::random_layered_tasks`]) on an 8192-node machine
/// with `n_channels` shared 50 GB/s channels. Every task has a fixed
/// overhead phase; every fourth task also moves data over one of the
/// channels (round-robin, some with stream caps), so the event loop
/// exercises both the fixed-phase calendar and the incremental
/// fair-share path. Deterministic per `(n_tasks, n_channels, seed)`.
pub fn generated_scenario(n_tasks: usize, n_channels: usize, seed: u64) -> Scenario {
    assert!(n_channels >= 1, "need at least one channel");
    let mut builder = Machine::builder("bench-gen", 8192);
    for c in 0..n_channels {
        builder = builder.system(
            format!("ch{c}"),
            format!("Channel {c}"),
            BytesPerSec::gbps(50.0),
        );
    }
    let machine = builder.build().expect("valid machine");
    let tasks = wrm_dag::generate::random_layered_tasks(seed, n_tasks, 4096, 2, 20.0);
    let mut wf = WorkflowSpec::new(format!("gen[{n_tasks}x{n_channels}]"));
    for (i, gt) in tasks.iter().enumerate() {
        let mut t = TaskSpec::new(&gt.name, gt.nodes).phase(Phase::overhead("work", gt.duration));
        if i % 4 == 0 {
            let ch = i % n_channels;
            t = t.phase(Phase::SystemData {
                resource: format!("ch{ch}"),
                bytes: (1.0 + gt.duration) * 2e9,
                stream_cap: if i % 8 == 0 { Some(5e9) } else { None },
            });
        }
        for &d in &gt.deps {
            t = t.after(&tasks[d].name);
        }
        wf = wf.task(t);
    }
    Scenario::new(machine, wf)
}

/// The fork–join counterpart of [`generated_scenario`]: `n_tasks` tasks
/// from [`wrm_dag::generate::fork_join_tasks`] (rounds of up-to-4096-wide
/// barriers, each gated on the previous round) on the same 8192-node /
/// `n_channels`-channel machine with the same phase-attachment policy.
/// Wide barriers drain hundreds of completions into a single instant —
/// the completion calendar's worst case. Deterministic per
/// `(n_tasks, n_channels, seed)`.
pub fn generated_fork_join_scenario(n_tasks: usize, n_channels: usize, seed: u64) -> Scenario {
    assert!(n_channels >= 1, "need at least one channel");
    let mut builder = Machine::builder("bench-fj", 8192);
    for c in 0..n_channels {
        builder = builder.system(
            format!("ch{c}"),
            format!("Channel {c}"),
            BytesPerSec::gbps(50.0),
        );
    }
    let machine = builder.build().expect("valid machine");
    let tasks = wrm_dag::generate::fork_join_tasks(seed, n_tasks, 4096, 2, 20.0);
    let mut wf = WorkflowSpec::new(format!("fj[{n_tasks}x{n_channels}]"));
    for (i, gt) in tasks.iter().enumerate() {
        let mut t = TaskSpec::new(&gt.name, gt.nodes).phase(Phase::overhead("work", gt.duration));
        if i % 4 == 0 {
            let ch = i % n_channels;
            t = t.phase(Phase::SystemData {
                resource: format!("ch{ch}"),
                bytes: (1.0 + gt.duration) * 2e9,
                stream_cap: if i % 8 == 0 { Some(5e9) } else { None },
            });
        }
        for &d in &gt.deps {
            t = t.after(&tasks[d].name);
        }
        wf = wf.task(t);
    }
    Scenario::new(machine, wf)
}

/// The Monte-Carlo benchmark workload: `n_tasks` tasks from
/// [`wrm_dag::generate::random_layered_tasks`] on a 8192-node machine
/// with one shared 50 GB/s channel, every task's duration drawn from a
/// distribution (uniform / lognormal / triangular / empirical,
/// round-robin by task index) and every 64th task streaming a
/// uniformly-distributed volume over the channel under a stream cap.
/// The shape is deliberately calendar-dominated: per-replication work
/// is a cheap summary-mode DES pass, so the amortized costs — index
/// compilation and the two envelope certificates — are a meaningful
/// fraction of a naive single-replication engine call, which is exactly
/// what the batched runner amortizes. Deterministic per
/// `(n_tasks, seed)`.
pub fn mc_scenario(n_tasks: usize, seed: u64) -> Scenario {
    let machine = Machine::builder("bench-mc", 8192)
        .system("ch0", "Channel 0", BytesPerSec::gbps(50.0))
        .build()
        .expect("valid machine");
    let tasks = wrm_dag::generate::random_layered_tasks(seed, n_tasks, 4096, 2, 20.0);
    let mut wf = WorkflowSpec::new(format!("mc[{n_tasks}]"));
    for (i, gt) in tasks.iter().enumerate() {
        let d = gt.duration;
        let dist = match i % 4 {
            0 => Dist::Uniform {
                lo: 0.8 * d,
                hi: 1.2 * d,
            },
            1 => Dist::LogNormal {
                median: d,
                sigma: 0.25,
            },
            2 => Dist::Triangular {
                lo: 0.7 * d,
                mode: d,
                hi: 1.6 * d,
            },
            _ => Dist::Empirical {
                samples: vec![(0.9 * d, 1.0), (d, 2.0), (1.3 * d, 1.0)],
            },
        };
        let mut t = TaskSpec::new(&gt.name, gt.nodes)
            .phase(Phase::overhead("work", d))
            .dist(0, dist);
        if i % 64 == 0 {
            let bytes = (1.0 + d) * 2e9;
            t = t
                .phase(Phase::SystemData {
                    resource: "ch0".into(),
                    bytes,
                    stream_cap: Some(5e9),
                })
                .dist(
                    1,
                    Dist::Uniform {
                        lo: 0.8 * bytes,
                        hi: 1.2 * bytes,
                    },
                );
        }
        for &dep in &gt.deps {
            t = t.after(&tasks[dep].name);
        }
        wf = wf.task(t);
    }
    Scenario::new(machine, wf)
}

/// The incremental-sweep benchmark workload: a layered main pipeline
/// where *every* task streams over a shared 1 TB/s file system under a
/// 0.5 GB/s cap, feeding a 16-task *chained* archive stage that pushes
/// 20 GB per task over a 10 GB/s external link at 0.5 GB/s.
///
/// The shape is deliberate. The external link — the resource a
/// contention sweep scans — is only touched by the final chain, so the
/// DES prefix before its first flow join covers the whole main pipeline
/// and delta re-simulation replays only the short archive suffix per
/// factor. The chain also keeps the link uncontended (at most one flow
/// at a time), and the capped file-system flows can never contend even
/// if all of them overlap (`n` × 0.5 GB/s stays below 1 TB/s for
/// `n ≤ 2000`), so grid points without node-limit queueing take the
/// analytic fast path outright. Layers run up to 1024 wide, so the DES
/// fair-share recompute scans hundreds of channel members on every
/// flow join/leave — work the analytic path answers in closed form.
/// Deterministic per `n_tasks`.
pub fn sweep_scenario(n_tasks: usize) -> Scenario {
    assert!(
        n_tasks <= 2000,
        "cap budget: n x 0.5 GB/s must stay < 1 TB/s"
    );
    let machine = Machine::builder("bench-sweep", 4096)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(1000.0))
        .system(ids::EXTERNAL, "External", BytesPerSec::gbps(10.0))
        .build()
        .expect("valid machine");
    let tasks = wrm_dag::generate::random_layered_tasks(11, n_tasks, 1024, 2, 20.0);
    let mut wf = WorkflowSpec::new(format!("sweep[{n_tasks}]"));
    for gt in &tasks {
        let mut t = TaskSpec::new(&gt.name, gt.nodes).phase(Phase::overhead("work", gt.duration));
        // Four sequential capped reads per task: a task holds at most
        // one flow at a time, so concurrent FS members never exceed the
        // running-task count and the cap budget above still holds.
        for j in 0..4u32 {
            t = t.phase(Phase::SystemData {
                resource: ids::FILE_SYSTEM.into(),
                bytes: (1.0 + gt.duration) * 5e8 / f64::from(j + 1),
                stream_cap: Some(5e8),
            });
        }
        for &d in &gt.deps {
            t = t.after(&tasks[d].name);
        }
        wf = wf.task(t);
    }
    for i in 0..16usize {
        let mut t = TaskSpec::new(format!("archive{i}"), 1)
            .phase(Phase::overhead("stage", 2.0))
            .phase(Phase::SystemData {
                resource: ids::EXTERNAL.into(),
                bytes: 20e9,
                stream_cap: Some(5e8),
            });
        t = if i == 0 {
            t.after(&tasks[tasks.len() - 1].name)
        } else {
            t.after(format!("archive{}", i - 1))
        };
        wf = wf.task(t);
    }
    Scenario::new(machine, wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_sim::simulate;

    #[test]
    fn bag_scenario_simulates() {
        let r = simulate(&bag_scenario(32)).unwrap();
        assert_eq!(r.task_times.len(), 32);
        // 32 x 10 GB through 100 GB/s (all fit in the 256-node pool):
        // 3.2 s of I/O after the 1 s overhead.
        assert!((r.makespan - 4.2).abs() < 0.1, "makespan {}", r.makespan);
    }

    #[test]
    fn generated_scenario_simulates_and_matches_reference() {
        let s = generated_scenario(400, 8, 7);
        let r = simulate(&s).unwrap();
        assert_eq!(r.task_times.len(), 400);
        assert!(r.makespan > 0.0);
        let reference = wrm_sim::reference::simulate_reference(&s).unwrap();
        assert_eq!(r, reference);
    }

    #[test]
    fn fork_join_scenario_simulates_and_matches_reference() {
        let s = generated_fork_join_scenario(400, 8, 7);
        let r = simulate(&s).unwrap();
        assert_eq!(r.task_times.len(), 400);
        assert!(r.makespan > 0.0);
        let reference = wrm_sim::reference::simulate_reference(&s).unwrap();
        assert_eq!(r, reference);
        // Summary mode reproduces the full engine's makespan exactly.
        let sum = wrm_sim::simulate_summary(&s).unwrap();
        assert_eq!(sum.makespan, r.makespan);
        assert_eq!(sum.n_tasks, 400);
    }

    #[test]
    fn sweep_scenario_incremental_matches_cold() {
        let scenario = sweep_scenario(150);
        let grid = wrm_sim::SweepGrid {
            resource: Some(wrm_core::ids::EXTERNAL.into()),
            factors: vec![0.5, 1.0, 2.0],
            node_limits: vec![Some(24), None],
            policies: vec![wrm_sim::SchedulerPolicy::Fifo],
        };
        let outcome = wrm_sim::sweep_grid(&scenario, &grid, 1);
        assert_eq!(outcome.results.len(), 6);
        for fi in 0..grid.factors.len() {
            for ni in 0..grid.node_limits.len() {
                let opts = grid.point_options(&scenario.options, fi, ni, 0);
                let want = simulate(&scenario.clone().with_options(opts)).unwrap();
                let mut got = outcome.results[grid.index_of(fi, ni, 0)]
                    .as_ref()
                    .unwrap()
                    .clone();
                let key = |s: &wrm_trace::TraceSpan| (s.task.clone(), s.start.to_bits());
                got.trace.spans.sort_by_key(key);
                let mut want = want;
                want.trace.spans.sort_by_key(key);
                assert_eq!(got, want);
            }
        }
        // The workload exercises all three mechanisms.
        assert!(outcome.stats.fastpath > 0, "{:?}", outcome.stats);
        assert!(outcome.stats.replayed > 0, "{:?}", outcome.stats);
    }

    #[test]
    fn layered_scenario_simulates() {
        let r = simulate(&layered_scenario(4, 8)).unwrap();
        assert_eq!(r.task_times.len(), 32);
        // Each layer drains 8 GB at 100 GB/s = 0.08 s; four layers.
        assert!((r.makespan - 0.32).abs() < 0.01, "makespan {}", r.makespan);
    }
}
