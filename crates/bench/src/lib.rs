//! # wrm-bench — benchmark harnesses for the paper's tables and figures
//!
//! The criterion benches in `benches/` regenerate every evaluation
//! element of the paper:
//!
//! * `figures` — one group per figure (F1–F10) and Table I: builds the
//!   same series the paper reports and prints the headline comparisons.
//! * `engine` — simulator performance: event throughput vs. task count,
//!   fair-share solver scaling, scheduler ablation (FIFO vs. backfill).
//! * `model` — roofline construction/evaluation throughput and the
//!   max–min vs. equal-split sharing ablation.
//!
//! This library crate hosts the shared workload builders so the three
//! bench binaries stay small and consistent.

use wrm_core::{ids, BytesPerSec, Machine};
use wrm_sim::{Phase, Scenario, TaskSpec, WorkflowSpec};

/// A synthetic bag of `n` tasks, each with an overhead phase and a
/// shared-file-system read, on a 256-node machine with a 100 GB/s FS.
pub fn bag_scenario(n: usize) -> Scenario {
    let machine = Machine::builder("bench", 256)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(100.0))
        .build()
        .expect("valid machine");
    let mut wf = WorkflowSpec::new(format!("bag[{n}]"));
    for i in 0..n {
        wf = wf.task(
            TaskSpec::new(format!("t{i}"), 1)
                .phase(Phase::overhead("setup", 1.0))
                .phase(Phase::system_data(ids::FILE_SYSTEM, 10e9)),
        );
    }
    Scenario::new(machine, wf)
}

/// A chain of `depth` stages, each a `width`-wide layer gated on the
/// previous layer (layered pipeline), stressing dependency handling.
pub fn layered_scenario(depth: usize, width: usize) -> Scenario {
    let machine = Machine::builder("bench", 512)
        .system(ids::FILE_SYSTEM, "FS", BytesPerSec::gbps(100.0))
        .build()
        .expect("valid machine");
    let mut wf = WorkflowSpec::new(format!("layers[{depth}x{width}]"));
    for d in 0..depth {
        for w in 0..width {
            let mut t = TaskSpec::new(format!("t{d}.{w}"), 1)
                .phase(Phase::system_data(ids::FILE_SYSTEM, 1e9));
            if d > 0 {
                for p in 0..width {
                    t = t.after(format!("t{}.{p}", d - 1));
                }
            }
            wf = wf.task(t);
        }
    }
    Scenario::new(machine, wf)
}

/// A generated large-scale layered workload: `n_tasks` tasks (from
/// [`wrm_dag::generate::random_layered_tasks`]) on an 8192-node machine
/// with `n_channels` shared 50 GB/s channels. Every task has a fixed
/// overhead phase; every fourth task also moves data over one of the
/// channels (round-robin, some with stream caps), so the event loop
/// exercises both the fixed-phase calendar and the incremental
/// fair-share path. Deterministic per `(n_tasks, n_channels, seed)`.
pub fn generated_scenario(n_tasks: usize, n_channels: usize, seed: u64) -> Scenario {
    assert!(n_channels >= 1, "need at least one channel");
    let mut builder = Machine::builder("bench-gen", 8192);
    for c in 0..n_channels {
        builder = builder.system(
            format!("ch{c}"),
            format!("Channel {c}"),
            BytesPerSec::gbps(50.0),
        );
    }
    let machine = builder.build().expect("valid machine");
    let tasks = wrm_dag::generate::random_layered_tasks(seed, n_tasks, 4096, 2, 20.0);
    let mut wf = WorkflowSpec::new(format!("gen[{n_tasks}x{n_channels}]"));
    for (i, gt) in tasks.iter().enumerate() {
        let mut t = TaskSpec::new(&gt.name, gt.nodes).phase(Phase::overhead("work", gt.duration));
        if i % 4 == 0 {
            let ch = i % n_channels;
            t = t.phase(Phase::SystemData {
                resource: format!("ch{ch}"),
                bytes: (1.0 + gt.duration) * 2e9,
                stream_cap: if i % 8 == 0 { Some(5e9) } else { None },
            });
        }
        for &d in &gt.deps {
            t = t.after(&tasks[d].name);
        }
        wf = wf.task(t);
    }
    Scenario::new(machine, wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_sim::simulate;

    #[test]
    fn bag_scenario_simulates() {
        let r = simulate(&bag_scenario(32)).unwrap();
        assert_eq!(r.task_times.len(), 32);
        // 32 x 10 GB through 100 GB/s (all fit in the 256-node pool):
        // 3.2 s of I/O after the 1 s overhead.
        assert!((r.makespan - 4.2).abs() < 0.1, "makespan {}", r.makespan);
    }

    #[test]
    fn generated_scenario_simulates_and_matches_reference() {
        let s = generated_scenario(400, 8, 7);
        let r = simulate(&s).unwrap();
        assert_eq!(r.task_times.len(), 400);
        assert!(r.makespan > 0.0);
        let reference = wrm_sim::reference::simulate_reference(&s).unwrap();
        assert_eq!(r, reference);
    }

    #[test]
    fn layered_scenario_simulates() {
        let r = simulate(&layered_scenario(4, 8)).unwrap();
        assert_eq!(r.task_times.len(), 32);
        // Each layer drains 8 GB at 100 GB/s = 0.08 s; four layers.
        assert!((r.makespan - 0.32).abs() < 0.01, "makespan {}", r.makespan);
    }
}
